//! Quickstart: search a hardware-efficient GNN for an edge device.
//!
//! Runs the full HGNAS pipeline at reduced scale — dataset generation,
//! latency-predictor training, two-stage evolutionary search — then compares
//! the found architecture against the DGCNN baseline on the target device.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hgnas::core::{Hgnas, SearchConfig, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::ops::merge_adjacent_samples;

fn main() {
    let device = DeviceKind::JetsonTx2;
    let task = TaskConfig::small(42);
    let config = SearchConfig::fast(device);

    println!("== HGNAS quickstart ==");
    println!(
        "task: {} classes x {} points, {} supernet positions, target {}",
        task.classes(),
        task.points(),
        task.positions,
        device
    );

    let framework = Hgnas::new(task.clone(), config);
    let outcome = framework.run();

    println!(
        "\nDGCNN reference latency on {}: {:.1} ms (constraint {:.1} ms)",
        device, outcome.reference_ms, outcome.constraint_ms
    );
    if let Some(stats) = &outcome.predictor_stats {
        println!(
            "latency predictor: val MAPE {:.1}%, {:.0}% within the 10% bound",
            stats.val_mape * 100.0,
            stats.val_within_10pct * 100.0
        );
    }

    let best = &outcome.best;
    println!(
        "\nbest architecture (objective {:.3}, one-shot accuracy {:.1}%, {:.1} ms on {}):",
        best.score,
        best.supernet_accuracy * 100.0,
        best.latency_ms,
        device
    );
    println!("{}", merge_adjacent_samples(&best.architecture));
    println!(
        "\nspeedup over DGCNN: {:.1}x  |  simulated search cost: {:.2} GPU hours",
        outcome.reference_ms / best.latency_ms.max(1e-9),
        outcome.search_hours
    );
}
