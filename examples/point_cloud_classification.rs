//! Point-cloud classification on SynthNet40: DGCNN vs the manually
//! simplified baselines (the workloads the paper's introduction motivates).
//!
//! Trains three models on the same synthetic dataset and reports overall /
//! balanced accuracy together with simulated edge latency, showing the
//! accuracy-efficiency trade-off the paper's Tab. II quantifies.
//!
//! ```sh
//! cargo run --release --example point_cloud_classification
//! ```

use hgnas::device::DeviceKind;
use hgnas::nn::Module;
use hgnas::ops::train::{evaluate, fit, FitConfig};
use hgnas::ops::{
    dgcnn, knn_reuse_baseline, lower_edgeconv, tailor_baseline, DgcnnConfig, GnnModel,
};
use hgnas::pointcloud::{DatasetConfig, SynthNet40};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = SynthNet40::generate(&DatasetConfig::small(7));
    println!(
        "SynthNet40: {} train / {} test clouds, {} classes, {} points",
        ds.train.len(),
        ds.test.len(),
        ds.classes,
        ds.points
    );
    let fit_cfg = FitConfig::quick().with_epochs(12);
    let device = DeviceKind::RaspberryPi3B.profile();
    let mut rng = StdRng::seed_from_u64(1);

    println!(
        "\n{:22} {:>7} {:>7} {:>9} {:>10}",
        "model", "OA%", "mAcc%", "size MB", "Pi ms"
    );

    // DGCNN [5].
    let mut model = dgcnn(&mut rng, DgcnnConfig::small(ds.classes));
    fit(&mut model, &ds.train, &fit_cfg);
    let eval = evaluate(&model, &ds.test, ds.classes, 3);
    let lat = device
        .execute(&lower_edgeconv(model.config(), ds.points))
        .latency_ms;
    print_row(
        "DGCNN [5]",
        eval.overall,
        eval.balanced,
        model.size_mb(),
        lat,
    );

    // KNN-reuse [6].
    let mut model = knn_reuse_baseline(&mut rng, DgcnnConfig::small(ds.classes));
    fit(&mut model, &ds.train, &fit_cfg);
    let eval = evaluate(&model, &ds.test, ds.classes, 3);
    let lat = device
        .execute(&lower_edgeconv(model.config(), ds.points))
        .latency_ms;
    print_row(
        "KNN-reuse [6]",
        eval.overall,
        eval.balanced,
        model.size_mb(),
        lat,
    );

    // Architectural simplification [7], expressed in the fine-grained IR.
    let arch = tailor_baseline(false, 10, ds.classes);
    let mut model = GnnModel::new(&mut rng, arch, &[48]);
    fit(&mut model, &ds.train, &fit_cfg);
    let eval = evaluate(&model, &ds.test, ds.classes, 3);
    let lat = device
        .execute(&model.architecture().lower(ds.points, &[48]))
        .latency_ms;
    print_row(
        "simplified [7]",
        eval.overall,
        eval.balanced,
        model.size_mb(),
        lat,
    );

    println!("\n(reduced scale: absolute accuracies are below the paper's 1024-point runs,");
    println!(" but the ordering — similar accuracy, decreasing latency — is the point)");
}

fn print_row(name: &str, oa: f64, macc: f64, mb: f64, ms: f64) {
    println!(
        "{:22} {:>7.1} {:>7.1} {:>9.2} {:>10.1}",
        name,
        oa * 100.0,
        macc * 100.0,
        mb,
        ms
    );
}
