//! Edge-device profiling of DGCNN (the paper's Observation ③ / Fig. 3).
//!
//! Lowers paper-scale DGCNN to the device simulator and prints, per device,
//! the execution-time breakdown by operation class plus the Fig. 1 memory
//! scaling sweep with the Raspberry Pi's OOM cliff.
//!
//! ```sh
//! cargo run --release --example device_profiling
//! ```

use hgnas::device::{DeviceKind, OpClass, PersonaRegistry};
use hgnas::ops::{lower_edgeconv, DgcnnConfig};

fn main() {
    let cfg = DgcnnConfig::paper(40);
    let w = lower_edgeconv(&cfg, 1024);
    println!(
        "DGCNN @1024 points: {} lowered ops, {:.2} GFLOP, {:.0} MB moved",
        w.len(),
        w.total_flops() / 1e9,
        w.total_bytes() / 1e6
    );

    println!(
        "\n{:14} {:>10} {:>8} {:>10} {:>9} {:>7} {:>9}",
        "device", "latency", "sample", "aggregate", "combine", "other", "peak MB"
    );
    for persona in PersonaRegistry::builtin().edge_targets() {
        let r = persona.profile.execute(&w);
        let f = r.breakdown_fractions();
        println!(
            "{:14} {:>8.1}ms {:>7.1}% {:>9.1}% {:>8.1}% {:>6.1}% {:>9.1}",
            persona.base_kind().name(),
            r.latency_ms,
            f[OpClass::Sample.index()] * 100.0,
            f[OpClass::Aggregate.index()] * 100.0,
            f[OpClass::Combine.index()] * 100.0,
            f[OpClass::Other.index()] * 100.0,
            r.peak_mem_mb
        );
    }

    println!("\nRaspberry Pi scaling sweep (Fig. 1):");
    println!("{:>8} {:>12} {:>10}", "points", "latency", "peak mem");
    let pi = DeviceKind::RaspberryPi3B.profile();
    for n in [128usize, 256, 512, 1024, 1536, 2048] {
        let r = pi.execute(&lower_edgeconv(&cfg, n));
        if r.oom {
            println!("{n:>8} {:>10.2}s        OOM", r.latency_ms / 1e3);
        } else {
            println!(
                "{n:>8} {:>10.2}s {:>8.0} MB",
                r.latency_ms / 1e3,
                r.peak_mem_mb
            );
        }
    }
    println!(
        "\n(the Pi profile has {:.0} MB available; DGCNN stops fitting past 1536 points,\n reproducing the paper's OOM observation)",
        pi.avail_mem_mb
    );
}
