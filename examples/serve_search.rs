//! Search-as-a-service: start the daemon in-process, submit searches as
//! two tenants with different priorities, stream events over the wire
//! protocol, and demonstrate a TCP client against the same daemon.
//!
//! ```sh
//! cargo run --release --example serve_search
//! ```
//!
//! Run it twice: the daemon persists artifacts under
//! `target/serve-artifacts/`, so the second invocation warm-starts every
//! shard (watch the `warm predictor` markers in the event stream).

use hgnas::core::{SearchConfig, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::fleet::{ArtifactStore, FleetEvent};
use hgnas::predictor::PredictorConfig;
use hgnas::serve::{SearchClient, ServeConfig, Server};
use std::time::Duration;

const TICK: Duration = Duration::from_secs(10);
const SEARCH: Duration = Duration::from_secs(3600);

fn main() {
    let task = TaskConfig::tiny(42);
    let mut base = SearchConfig::fast(DeviceKind::Rtx3080);
    // Reduced predictor so a cold start stays in example territory.
    base.predictor = PredictorConfig {
        train_samples: 150,
        val_samples: 50,
        epochs: 10,
        lr: 3e-3,
        gcn_dims: vec![24, 24],
        mlp_hidden: vec![16],
        seed: 1,
        global_node: true,
        batch: 4,
    };
    base.ea_stage2.iterations = 4;

    let store = ArtifactStore::open("target/serve-artifacts").expect("artifact store");
    println!("== hgnas-serve daemon over {} ==", store.root().display());
    let server = Server::start(
        store,
        ServeConfig {
            threads: 2,
            preemption_stride: 1,
            slices_per_round: 2,
            ..ServeConfig::default()
        },
    );

    // Two tenants contend for the daemon: alice (priority 3) shards over
    // two devices, bob (priority 1) over one. The fair-share admission
    // controller interleaves their scheduling rounds 3:1.
    let mut alice = server.connect();
    alice.hello("alice", 3, TICK).expect("hello");
    let (alice_req, alice_shards) = alice
        .submit(
            &task,
            &base,
            &[DeviceKind::Rtx3080, DeviceKind::JetsonTx2],
            TICK,
        )
        .expect("submit");
    println!("alice: request {alice_req} accepted ({alice_shards} shards, priority 3)");

    let mut bob = server.connect();
    bob.hello("bob", 1, TICK).expect("hello");
    let (bob_req, bob_shards) = bob
        .submit(&task, &base, &[DeviceKind::RaspberryPi3B], TICK)
        .expect("submit");
    println!("bob:   request {bob_req} accepted ({bob_shards} shard, priority 1)\n");

    let narrate = |tenant: &str, _seq: u64, ev: &FleetEvent| match ev {
        FleetEvent::ShardStarted {
            device,
            warm_predictor,
            resumed_from,
            ..
        } => {
            let warm = if *warm_predictor { "warm" } else { "cold" };
            match resumed_from {
                Some(g) => println!(
                    "[{tenant}] {:<14} started ({warm} predictor), resumed at generation {g}",
                    device.name()
                ),
                None => println!(
                    "[{tenant}] {:<14} started ({warm} predictor)",
                    device.name()
                ),
            }
        }
        FleetEvent::ShardPreempted {
            device, generation, ..
        } => println!(
            "[{tenant}] {:<14} parked at generation {generation} (fair-share round over)",
            device.name()
        ),
        FleetEvent::ShardFinished {
            device, latency_ms, ..
        } => println!(
            "[{tenant}] {:<14} finished: {latency_ms:.2} ms model",
            device.name()
        ),
        _ => {}
    };

    let alice_report = alice
        .wait_report(alice_req, SEARCH, |seq, ev| narrate("alice", seq, ev))
        .expect("alice report");
    let bob_report = bob
        .wait_report(bob_req, SEARCH, |seq, ev| narrate("bob", seq, ev))
        .expect("bob report");

    println!("\n== reports ==");
    for (tenant, report) in [("alice", &alice_report), ("bob", &bob_report)] {
        println!(
            "{tenant}: {} rounds, {} slices charged",
            report.rounds, report.slices
        );
        for shard in &report.shards {
            println!(
                "  {:<14} {:>8.2} ms @ score {:.3} ({} slices, Pareto {} candidates)",
                shard.device.name(),
                shard.outcome.best.latency_ms,
                shard.outcome.best.score,
                shard.slices,
                shard.pareto.len()
            );
        }
    }

    // The same daemon serves remote clients over TCP — identical frames,
    // identical results. Carol re-runs bob's configuration and the
    // artifact store answers from checkpoints and caches.
    let addr = server
        .listen("127.0.0.1:0".parse().unwrap())
        .expect("listen");
    println!("\n== TCP client against {addr} ==");
    let mut carol = SearchClient::connect_tcp(addr).expect("connect");
    carol.hello("carol", 1, TICK).expect("hello");
    let (carol_req, _) = carol
        .submit(&task, &base, &[DeviceKind::RaspberryPi3B], TICK)
        .expect("submit");
    let carol_report = carol
        .wait_report(carol_req, SEARCH, |seq, ev| narrate("carol", seq, ev))
        .expect("carol report");
    let (b, c) = (
        &bob_report.shards[0].outcome.best,
        &carol_report.shards[0].outcome.best,
    );
    assert_eq!(b.genome, c.genome, "served results are reproducible");
    println!(
        "carol (TCP) reproduced bob's result: {:.2} ms, score {:.3}",
        c.latency_ms, c.score
    );

    let drain = server.shutdown();
    println!(
        "\ndaemon drained; {} request(s) parked, tenants served: {}",
        drain.parked.len(),
        drain
            .tenants
            .iter()
            .map(|t| format!("{} ({} slices)", t.tenant, t.slices))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("run this example again for the warm start.");
}
