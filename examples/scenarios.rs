//! Scenario fleets: shard one run over the {task × objective × persona}
//! cross product instead of a device list.
//!
//! ```sh
//! cargo run --release --example scenarios
//! ```
//!
//! The example builds two personas — the builtin Jetson TX2 and a
//! "field-tx2" calibrated from (simulated) board measurements of three
//! probe architectures — then crosses them with two tasks
//! (classification and per-point segmentation) and two objectives (the
//! classic accuracy/latency trade-off, and a multi-metric one that also
//! prices per-inference energy and peak memory), and runs the resulting
//! eight scenarios as one fleet. Run it twice: the second invocation
//! warm-starts every scenario from the artifacts the first one persisted.

use hgnas::core::{SearchConfig, TaskConfig};
use hgnas::device::{builtin_slug, calibrate, collect_samples, DeviceKind, PersonaRegistry};
use hgnas::fleet::{cross_scenarios, run_fleet, ArtifactStore, FleetConfig, ObjectiveSpec};
use hgnas::pointcloud::TaskKind;
use hgnas::predictor::PredictorConfig;

fn main() {
    let task = TaskConfig::tiny(42);
    let mut base = SearchConfig::fast(DeviceKind::JetsonTx2);
    // Reduced predictor so a cold start stays in example territory.
    base.predictor = PredictorConfig {
        train_samples: 100,
        val_samples: 30,
        epochs: 8,
        lr: 3e-3,
        gcn_dims: vec![24, 24],
        mlp_hidden: vec![16],
        seed: 1,
        global_node: true,
        batch: 4,
    };
    base.ea_stage2.iterations = 3;

    // Persona 1: the builtin Jetson TX2, straight from the registry.
    let registry = PersonaRegistry::builtin();
    let jetson = registry
        .get(builtin_slug(DeviceKind::JetsonTx2))
        .expect("builtin persona")
        .clone();

    // Persona 2: a bring-your-own-device board. We "deploy" three probe
    // architectures, read back noisy end-to-end latencies (here the board
    // is simulated by a TX2 running ~40% slower — a thermal throttle),
    // and least-squares fit a persona to the measurements.
    let mut board = jetson.profile.clone();
    for r in &mut board.rates {
        r.gflops /= 1.4;
        r.gbps /= 1.4;
    }
    let probes: Vec<_> = [256, 512, 1024]
        .iter()
        .map(|&n| hgnas::ops::lower_edgeconv(&task.reference_dgcnn(), n))
        .collect();
    let samples = collect_samples(&probes, |w| {
        board.measure_seeded(w, 7).map(|r| r.latency_ms)
    })
    .expect("board measurements");
    let field = calibrate("field-tx2", &jetson.profile, &samples).expect("calibration fit");
    println!(
        "calibrated persona {:?}: overhead {:.0} µs (builtin {:.0} µs)",
        field.name, field.profile.overhead_us, jetson.profile.overhead_us
    );

    // The cross product: 2 tasks × 2 objectives × 2 personas = 8 scenarios.
    let scenarios = cross_scenarios(
        &task,
        &base,
        &[TaskKind::Classification, TaskKind::Segmentation],
        &[
            ObjectiveSpec::accuracy_latency("acc-lat", base.alpha, base.beta),
            ObjectiveSpec::accuracy_latency("multi", base.alpha, base.beta)
                .with_energy(0.2, None)
                .with_peak_mem(0.05, None),
        ],
        &[jetson, field],
    );
    println!("\n== {} scenarios ==", scenarios.len());
    for s in &scenarios {
        println!("  {}", s.label);
    }

    let store = ArtifactStore::open("target/scenario-artifacts").expect("artifact store");
    let mut fleet = FleetConfig::over_scenarios(scenarios);
    fleet.threads = 2;
    fleet.preemption_stride = 1;

    let report = run_fleet(&task, &base, &fleet, Some(&store)).expect("scenario fleet");

    for shard in &report.reports {
        let start = if shard.warm_predictor {
            "warm".to_string()
        } else {
            format!("cold, {} predictor epochs", shard.predictor_epochs_run)
        };
        println!(
            "{:<40} {} | Pareto front: {} candidates",
            shard.scenario,
            start,
            shard.pareto.len()
        );
        for p in shard.pareto.iter().take(2) {
            let extras = match (p.energy_mj, p.peak_mem_mb) {
                (Some(e), Some(m)) => format!(", {e:.1} mJ, {m:.0} MB"),
                _ => String::new(),
            };
            println!(
                "    {:>8.2} ms @ {:.1}% one-shot accuracy{extras}",
                p.latency_ms,
                p.accuracy * 100.0
            );
        }
    }

    println!("\n{}", report.summary_table());
    println!("run this example again for the warm start.");
}
