//! Fleet search: one configuration sharded across three edge devices,
//! with predictor weights and search checkpoints persisted to an artifact
//! store so a second invocation warm-starts instantly.
//!
//! ```sh
//! cargo run --release --example fleet_search
//! ```
//!
//! Run it twice: the first run trains one latency predictor per device and
//! persists everything under `target/fleet-artifacts/`; the second run
//! loads the artifacts back, trains **zero** predictor epochs, resumes
//! each shard's checkpoint at its final generation, and reports the
//! bit-identical outcome.

use hgnas::core::{SearchConfig, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::fleet::{run_fleet, ArtifactStore, FleetConfig};
use hgnas::predictor::PredictorConfig;

fn main() {
    let devices = vec![
        DeviceKind::Rtx3080,
        DeviceKind::JetsonTx2,
        DeviceKind::RaspberryPi3B,
    ];
    let task = TaskConfig::tiny(42);
    let mut base = SearchConfig::fast(devices[0]);
    // Reduced predictor so a cold start stays in example territory.
    base.predictor = PredictorConfig {
        train_samples: 150,
        val_samples: 50,
        epochs: 10,
        lr: 3e-3,
        gcn_dims: vec![24, 24],
        mlp_hidden: vec![16],
        seed: 1,
        global_node: true,
        batch: 4,
    };
    base.ea_stage2.iterations = 4;

    let store = ArtifactStore::open("target/fleet-artifacts").expect("artifact store");
    let fleet = FleetConfig::new(devices);

    println!(
        "== HGNAS fleet search over {} devices ==",
        fleet.devices.len()
    );
    println!("artifact store: {}\n", store.root().display());

    let report = run_fleet(&task, &base, &fleet, Some(&store)).expect("fleet run");

    for shard in &report.reports {
        let start = if shard.warm_predictor {
            "warm start (0 predictor epochs)".to_string()
        } else {
            format!(
                "cold start ({} predictor epochs)",
                shard.predictor_epochs_run
            )
        };
        let resumed = match shard.resumed_from_generation {
            Some(g) => format!(", resumed from generation {g}"),
            None => String::new(),
        };
        println!(
            "{:<14} {}{resumed}; Pareto front: {} candidates",
            shard.device.name(),
            start,
            shard.pareto.len()
        );
        for p in shard.pareto.iter().take(3) {
            println!(
                "    {:>8.2} ms @ {:.1}% one-shot accuracy",
                p.latency_ms,
                p.accuracy * 100.0
            );
        }
    }

    println!("\n{}", report.summary_table());
    println!("run this example again for the warm start.");
}
