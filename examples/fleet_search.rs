//! Fleet search: one configuration sharded across three edge devices,
//! scheduled over a bounded thread budget with generation-granular
//! preemption, streaming live progress reports, and persisting artifacts
//! so a second invocation warm-starts instantly.
//!
//! ```sh
//! cargo run --release --example fleet_search
//! ```
//!
//! Run it twice: the first run trains one latency predictor per device and
//! persists everything under `target/fleet-artifacts/`; the second run
//! loads the artifacts back, trains **zero** predictor epochs, resumes
//! each shard's checkpoint at its final generation, and reports the
//! bit-identical outcome.

use hgnas::core::{SearchConfig, TaskConfig};
use hgnas::device::DeviceKind;
use hgnas::fleet::{
    event_channel, run_fleet_with_events, ArtifactStore, FleetConfig, FleetEvent, StreamingReporter,
};
use hgnas::predictor::PredictorConfig;

fn main() {
    let devices = vec![
        DeviceKind::Rtx3080,
        DeviceKind::JetsonTx2,
        DeviceKind::RaspberryPi3B,
    ];
    let task = TaskConfig::tiny(42);
    let mut base = SearchConfig::fast(devices[0]);
    // Reduced predictor so a cold start stays in example territory.
    base.predictor = PredictorConfig {
        train_samples: 150,
        val_samples: 50,
        epochs: 10,
        lr: 3e-3,
        gcn_dims: vec![24, 24],
        mlp_hidden: vec![16],
        seed: 1,
        global_node: true,
        batch: 4,
    };
    base.ea_stage2.iterations = 4;

    let store = ArtifactStore::open("target/fleet-artifacts").expect("artifact store");
    let mut fleet = FleetConfig::new(devices);
    // Scheduler shape: multiplex the three shards over a 2-thread kernel
    // budget, preempting every generation. Bit-identical to any other
    // shape — this just shows the slicing in the event stream.
    fleet.threads = 2;
    fleet.preemption_stride = 1;

    println!(
        "== HGNAS fleet search over {} devices (threads: {}, stride: {}) ==",
        fleet.devices.len(),
        fleet.threads,
        fleet.preemption_stride
    );
    println!("artifact store: {}\n", store.root().display());

    // Stream events into an incremental reporter on a consumer thread
    // while the scheduler runs the fleet.
    let (tx, rx) = event_channel();
    let shard_count = fleet.devices.len();
    let (report, final_snapshot) = std::thread::scope(|s| {
        let consumer = s.spawn(move || {
            let mut reporter = StreamingReporter::new(shard_count);
            for ev in rx.iter() {
                // Fold first so a ShardFinished snapshot includes the row.
                reporter.observe(&ev);
                match &ev {
                    FleetEvent::ShardStarted {
                        device,
                        resumed_from,
                        warm_predictor,
                        ..
                    } => {
                        let warm = if *warm_predictor {
                            "warm predictor"
                        } else {
                            "cold predictor"
                        };
                        match resumed_from {
                            Some(g) => {
                                println!(
                                    "[{:<14}] started ({warm}), resumed at generation {g}",
                                    device.name()
                                );
                            }
                            None => println!("[{:<14}] started ({warm})", device.name()),
                        }
                    }
                    FleetEvent::ShardPreempted {
                        device, generation, ..
                    } => println!(
                        "[{:<14}] preempted at generation {generation}, re-queued",
                        device.name()
                    ),
                    FleetEvent::ParetoUpdated { device, front, .. } => println!(
                        "[{:<14}] Pareto front now {} candidates",
                        device.name(),
                        front.len()
                    ),
                    FleetEvent::ShardFinished { device, .. } => {
                        println!("[{:<14}] finished\n", device.name());
                        println!("{}", reporter.snapshot());
                    }
                    _ => {}
                }
            }
            reporter.snapshot()
        });
        let report = run_fleet_with_events(&task, &base, &fleet, Some(&store), Some(tx));
        (report, consumer.join().expect("reporter thread"))
    });
    let report = report.expect("fleet run");

    println!("== final streaming snapshot ==\n{final_snapshot}");
    for shard in &report.reports {
        let start = if shard.warm_predictor {
            "warm start (0 predictor epochs)".to_string()
        } else {
            format!(
                "cold start ({} predictor epochs)",
                shard.predictor_epochs_run
            )
        };
        let resumed = match shard.resumed_from_generation {
            Some(g) => format!(", resumed from generation {g}"),
            None => String::new(),
        };
        println!(
            "{:<14} {}{resumed}; {} slices; Pareto front: {} candidates",
            shard.device.name(),
            start,
            shard.slices,
            shard.pareto.len()
        );
        for p in shard.pareto.iter().take(3) {
            println!(
                "    {:>8.2} ms @ {:.1}% one-shot accuracy",
                p.latency_ms,
                p.accuracy * 100.0
            );
        }
    }

    println!("\n{}", report.summary_table());
    println!("run this example again for the warm start.");
}
