//! The GNN-based hardware performance predictor in isolation.
//!
//! Trains a per-device latency predictor on randomly sampled architectures
//! (labels from the device simulator), then shows the "perceive a GNN in
//! milliseconds" workflow: query a handful of candidates and compare
//! predictions against ground-truth measurement.
//!
//! ```sh
//! cargo run --release --example latency_predictor
//! ```

use hgnas::device::DeviceKind;
use hgnas::ops::Architecture;
use hgnas::predictor::{LatencyPredictor, PredictorConfig, PredictorContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let ctx = PredictorContext::small();
    let cfg = PredictorConfig::small();

    for device in [DeviceKind::Rtx3080, DeviceKind::RaspberryPi3B] {
        println!("== training predictor for {device} ==");
        let t0 = Instant::now();
        let (predictor, stats) = LatencyPredictor::train(device, &ctx, &cfg);
        println!(
            "trained on {} archs in {:.1}s — val MAPE {:.1}%, {:.0}% within 10% bound",
            stats.train_size,
            t0.elapsed().as_secs_f64(),
            stats.val_mape * 100.0,
            stats.val_within_10pct * 100.0
        );

        let profile = device.profile();
        let mut rng = StdRng::seed_from_u64(99);
        let mut noise_rng = StdRng::seed_from_u64(100);
        println!("{:>12} {:>12} {:>9}", "predicted", "measured", "err%");
        for _ in 0..5 {
            let arch = Architecture::random(&mut rng, ctx.positions, ctx.k, ctx.classes);
            let predicted = predictor.predict_ms(&arch);
            let workload = arch.lower(ctx.points, &ctx.head_hidden);
            match profile.measure(&workload, &mut noise_rng) {
                Ok(r) => println!(
                    "{:>10.2}ms {:>10.2}ms {:>8.1}%",
                    predicted,
                    r.latency_ms,
                    (predicted - r.latency_ms).abs() / r.latency_ms * 100.0
                ),
                Err(e) => println!("{predicted:>10.2}ms   (measurement failed: {e})"),
            }
        }

        // The paper's speed claim: prediction is a single small-GCN forward.
        let arch = Architecture::random(&mut rng, ctx.positions, ctx.k, ctx.classes);
        let t0 = Instant::now();
        const QUERIES: usize = 200;
        for _ in 0..QUERIES {
            predictor.predict_ms(&arch);
        }
        println!(
            "prediction cost: {:.2} ms/query (paper: \"within milliseconds\")\n",
            t0.elapsed().as_secs_f64() * 1e3 / QUERIES as f64
        );
    }
}
