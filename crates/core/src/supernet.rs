//! The single-path one-shot (SPOS) supernet (paper Sec. III-B/C).
//!
//! Every position holds all four operation choices with *shared weights*;
//! a training step samples one operation type per position (a "path"),
//! runs it, and updates only the touched weights. Operations that cannot
//! set their output width (sample, aggregate) get an appended alignment
//! linear so every position produces the same hidden width — the paper's
//! dimension-alignment trick; those transforms are disposed of in finalised
//! architectures.

use hgnas_autograd::{Tape, Var};
use hgnas_graph::{knn_brute, random_neighbors};
use hgnas_nn::{Activation, Linear, Mlp, Module, Optimizer, Param};
use hgnas_ops::{ConnectFn, FunctionSet, MessageType, OpType, SampleFn};
use hgnas_pointcloud::{fresh_cache_source, Batch, PointCloud, TaskKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A weight-sharing supernet over the operation space, with the function
/// space fixed to an (upper, lower) pair of [`FunctionSet`]s.
#[derive(Debug)]
pub struct Supernet {
    positions: usize,
    hidden: usize,
    k: usize,
    classes: usize,
    task: TaskKind,
    upper: FunctionSet,
    lower: FunctionSet,
    stem: Linear,
    aligns: Vec<Linear>,
    combines: Vec<Linear>,
    head: Mlp,
    /// Cache-source token identifying the current weight version (see
    /// [`fresh_cache_source`]). Frozen forwards key per-batch neighbor
    /// caches under it; the token is re-drawn by every code path that
    /// mutates weights ([`Supernet::train_epoch`],
    /// [`Supernet::import_weights`]), which retires all stale entries.
    version: u64,
}

impl Supernet {
    /// Builds a classification supernet with `positions` slots of width
    /// `hidden`. Weight initialisation (and hence every downstream number)
    /// is bit-identical to the pre-task-trait constructor.
    ///
    /// # Panics
    ///
    /// Panics if `positions == 0`.
    // One over clippy's budget; the args are the supernet's geometry and
    // all are mandatory, so a builder would only add ceremony.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        rng: &mut R,
        positions: usize,
        hidden: usize,
        k: usize,
        classes: usize,
        upper: FunctionSet,
        lower: FunctionSet,
        head_hidden: &[usize],
    ) -> Self {
        Self::for_task(
            rng,
            TaskKind::Classification,
            positions,
            hidden,
            k,
            classes,
            upper,
            lower,
            head_hidden,
        )
    }

    /// Builds a supernet for an arbitrary task. Per-cloud tasks get the
    /// classic max‖mean-pooled head (in-width `2·hidden`); per-point tasks
    /// keep per-point features and concatenate the pooled global descriptor
    /// onto every row, so the head reads `3·hidden` and emits one logit row
    /// per point. `classes` is the task's output width
    /// ([`hgnas_pointcloud::Task::out_classes`]), not necessarily the
    /// dataset's class count.
    ///
    /// # Panics
    ///
    /// Panics if `positions == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn for_task<R: Rng>(
        rng: &mut R,
        task: TaskKind,
        positions: usize,
        hidden: usize,
        k: usize,
        classes: usize,
        upper: FunctionSet,
        lower: FunctionSet,
        head_hidden: &[usize],
    ) -> Self {
        assert!(positions > 0, "need at least one position");
        let per_point = task.task().per_point();
        let stem = Linear::new(rng, 3, hidden);
        let half = positions / 2;
        let mut aligns = Vec::with_capacity(positions);
        let mut combines = Vec::with_capacity(positions);
        for p in 0..positions {
            let fs = if p < half { upper } else { lower };
            aligns.push(Linear::new(rng, fs.message.width(hidden), hidden));
            combines.push(Linear::new(rng, hidden, hidden));
        }
        let mut head_dims = vec![if per_point { 3 * hidden } else { 2 * hidden }];
        head_dims.extend_from_slice(head_hidden);
        head_dims.push(classes);
        let head = Mlp::new(rng, &head_dims, Activation::Relu);
        Supernet {
            positions,
            hidden,
            k,
            classes,
            task,
            upper,
            lower,
            stem,
            aligns,
            combines,
            head,
            version: fresh_cache_source(),
        }
    }

    /// The task this supernet's head was built for.
    pub fn task_kind(&self) -> TaskKind {
        self.task
    }

    /// Number of positions.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// The function set governing position `p`.
    pub fn function_set(&self, p: usize) -> FunctionSet {
        if p < self.positions / 2 {
            self.upper
        } else {
            self.lower
        }
    }

    /// Samples a uniformly random path (one op type per position).
    pub fn random_genome<R: Rng>(&self, rng: &mut R) -> Vec<OpType> {
        (0..self.positions)
            .map(|_| OpType::ALL[rng.gen_range(0..OpType::ALL.len())])
            .collect()
    }

    /// Per-cloud brute-force KNN over the stacked `c`-dim features, offset
    /// into the batch row space. Deterministic, hence cacheable whenever its
    /// input features are stable.
    fn build_knn_neighbors(data: &[f32], segments: &[usize], c: usize, k: usize) -> Vec<usize> {
        let mut flat = Vec::new();
        let mut row0 = 0usize;
        for &n in segments {
            let nl = knn_brute(&data[row0 * c..(row0 + n) * c], c, k);
            flat.extend(nl.flat().iter().map(|&j| j + row0));
            row0 += n;
        }
        flat
    }

    /// Random-neighbour counterpart: consumes `rng` on every call, so a
    /// cache hit would skip the draws and desynchronise the RNG stream —
    /// never cached.
    fn build_random_neighbors(segments: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut flat = Vec::new();
        let mut row0 = 0usize;
        for &n in segments {
            let nl = random_neighbors(rng, n, k);
            flat.extend(nl.flat().iter().map(|&j| j + row0));
            row0 += n;
        }
        flat
    }

    /// Forward pass along the path `genome`, returning `[clouds, classes]`
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics if `genome.len() != positions`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        batch: &Batch,
        genome: &[OpType],
        rng: &mut StdRng,
    ) -> Var {
        self.forward_impl(tape, batch, genome, rng, false)
    }

    /// Forward pass with weights entering the tape as plain inputs (no
    /// gradient tracking, no parameter bindings mutated). Numerically
    /// identical to [`Supernet::forward`]; safe to call from many threads
    /// sharing `&self`, which is what the parallel candidate evaluator does.
    pub fn forward_frozen(
        &self,
        tape: &mut Tape,
        batch: &Batch,
        genome: &[OpType],
        rng: &mut StdRng,
    ) -> Var {
        self.forward_impl(tape, batch, genome, rng, true)
    }

    fn forward_impl(
        &self,
        tape: &mut Tape,
        batch: &Batch,
        genome: &[OpType],
        rng: &mut StdRng,
        frozen: bool,
    ) -> Var {
        assert_eq!(genome.len(), self.positions, "genome length mismatch");
        let lin = |layer: &Linear, tape: &mut Tape, x: Var| {
            if frozen {
                layer.forward_frozen(tape, x)
            } else {
                layer.forward(tape, x)
            }
        };
        let h0 = tape.input(batch.points.clone());
        let mut h = lin(&self.stem, tape, h0);
        h = tape.relu(h);
        let mut skip = h;
        let mut neighbors: Option<Arc<Vec<usize>>> = None;
        let hd = self.hidden;
        let k = self.k;
        // While true, `h` is exactly `relu(stem(points))` — a pure function
        // of (batch, current weights). Under a *frozen* forward the weights
        // are pinned to `self.version`, so KNN graphs over pristine `h` are
        // cacheable per batch under that token. Training-mode forwards
        // mutate weights step to step and never consult the cache.
        let mut h_pristine = true;
        let build_stem_knn = |tape: &Tape, h: Var| {
            Self::build_knn_neighbors(tape.value(h).data(), &batch.segments, hd, k)
        };

        for (p, &ty) in genome.iter().enumerate() {
            let fs = self.function_set(p);
            match ty {
                OpType::Sample => {
                    neighbors = Some(match fs.sample {
                        SampleFn::Knn if frozen && h_pristine => {
                            batch.cached_neighbors(self.version, k, || build_stem_knn(tape, h))
                        }
                        SampleFn::Knn => Arc::new(build_stem_knn(tape, h)),
                        SampleFn::Random => {
                            Arc::new(Self::build_random_neighbors(&batch.segments, k, rng))
                        }
                    });
                }
                OpType::Aggregate => {
                    if neighbors.is_none() {
                        neighbors = Some(if frozen && h_pristine {
                            batch.cached_neighbors(self.version, k, || build_stem_knn(tape, h))
                        } else {
                            Arc::new(build_stem_knn(tape, h))
                        });
                    }
                    let idx: &[usize] = neighbors.as_ref().unwrap();
                    let nbr = tape.gather_rows(h, idx);
                    let ctr = tape.repeat_rows(h, k);
                    let message = match fs.message {
                        MessageType::SourcePos => nbr,
                        MessageType::TargetPos => ctr,
                        MessageType::RelPos => tape.sub(nbr, ctr),
                        MessageType::Distance => {
                            let rel = tape.sub(nbr, ctr);
                            tape.row_norms(rel)
                        }
                        MessageType::SourceRel => {
                            let rel = tape.sub(nbr, ctr);
                            tape.concat_cols(&[nbr, rel])
                        }
                        MessageType::TargetRel => {
                            let rel = tape.sub(nbr, ctr);
                            tape.concat_cols(&[ctr, rel])
                        }
                        MessageType::Full => {
                            let rel = tape.sub(nbr, ctr);
                            tape.concat_cols(&[ctr, nbr, rel])
                        }
                    };
                    let agg = tape.reduce_mid(message, k, fs.aggregator.reduction());
                    h = lin(&self.aligns[p], tape, agg);
                    h = tape.relu(h);
                    h_pristine = false;
                }
                OpType::Combine => {
                    h = lin(&self.combines[p], tape, h);
                    h = tape.relu(h);
                    h_pristine = false;
                }
                OpType::Connect => match fs.connect {
                    ConnectFn::Identity => {}
                    ConnectFn::Skip => {
                        h = tape.add(h, skip);
                        skip = h;
                        h_pristine = false;
                    }
                },
            }
        }

        let mx = tape.segment_pool(h, &batch.segments, hgnas_autograd::Reduction::Max);
        let mn = tape.segment_pool(h, &batch.segments, hgnas_autograd::Reduction::Mean);
        let pooled = tape.concat_cols(&[mx, mn]);
        let feat = if self.task.task().per_point() {
            // Per-point head: broadcast each cloud's pooled global
            // descriptor back onto its rows and append it to the per-point
            // features (the PointNet-style segmentation head shape).
            let mut cloud_of_row = Vec::with_capacity(batch.points.dims()[0]);
            for (ci, &n) in batch.segments.iter().enumerate() {
                cloud_of_row.extend(std::iter::repeat_n(ci, n));
            }
            let global = tape.gather_rows(pooled, &cloud_of_row);
            tape.concat_cols(&[h, global])
        } else {
            pooled
        };
        if frozen {
            self.head.forward_frozen(tape, feat)
        } else {
            self.head.forward(tape, feat)
        }
    }

    /// The label vector a batch is scored against under this supernet's
    /// task: per-cloud labels, or per-point labels for per-point tasks.
    ///
    /// # Panics
    ///
    /// Panics if the task is per-point but the batch was stacked without
    /// point labels (i.e. not via the task's own
    /// [`hgnas_pointcloud::Task::batches`]).
    fn targets<'b>(&self, batch: &'b Batch) -> &'b [usize] {
        if self.task.task().per_point() {
            assert!(
                !batch.point_labels.is_empty(),
                "per-point task scored against a batch with no point labels; \
                 stack batches via the task's `batches`"
            );
            &batch.point_labels
        } else {
            &batch.labels
        }
    }

    /// The weight tensors in [`Module::params`] order — what a session
    /// spill persists so a pre-trained supernet can be rebuilt without
    /// retraining. Optimizer state (moments, timestep) is deliberately
    /// excluded: a session snapshot is only taken after pre-training ends,
    /// when the optimizer is already gone.
    pub fn export_weights(&self) -> Vec<hgnas_tensor::Tensor> {
        self.params().iter().map(|p| p.value().clone()).collect()
    }

    /// Overwrites every parameter with weights captured by
    /// [`Supernet::export_weights`] from a supernet of the same geometry.
    /// Frozen forward passes (the only thing a restored session runs) are
    /// bit-identical to the exporting supernet's.
    ///
    /// # Panics
    ///
    /// Panics on a parameter-count or shape mismatch.
    pub fn import_weights(&mut self, weights: &[hgnas_tensor::Tensor]) {
        let mut params = self.params_mut();
        assert_eq!(
            params.len(),
            weights.len(),
            "supernet weight count mismatch"
        );
        for (p, w) in params.iter_mut().zip(weights) {
            p.set_value(w.clone());
        }
        self.version = fresh_cache_source();
    }

    /// One SPOS training epoch: a fresh random path per batch. Returns the
    /// mean batch loss.
    pub fn train_epoch(&mut self, batches: &[Batch], opt: &mut Optimizer, rng: &mut StdRng) -> f32 {
        let mut total = 0.0f32;
        for batch in batches {
            let genome = self.random_genome(rng);
            let mut tape = Tape::new();
            let logits = self.forward(&mut tape, batch, &genome, rng);
            let loss = tape.softmax_cross_entropy(logits, self.targets(batch));
            total += tape.value(loss).item();
            tape.backward(loss);
            self.apply_updates(&tape, opt);
        }
        // Weights changed: retire every frozen-graph cache entry keyed under
        // the old version token.
        self.version = fresh_cache_source();
        total / batches.len().max(1) as f32
    }

    /// One-shot accuracy of a fixed path on an evaluation split.
    ///
    /// Stacks the clouds into fresh batches on every call; candidate loops
    /// scoring many genomes against the same split should pre-build batches
    /// once and use [`Supernet::eval_genome_batched`], which also lets the
    /// per-batch frozen-graph caches pay off across candidates.
    pub fn eval_genome(&self, genome: &[OpType], clouds: &[PointCloud], seed: u64) -> f64 {
        self.eval_genome_batched(genome, &self.task.task().batches(clouds, 16), seed)
    }

    /// [`Supernet::eval_genome`] over pre-built batches. Frozen forwards
    /// only, so pristine-stem KNN graphs land in each batch's neighbor cache
    /// keyed by the current weight version — shared across every candidate
    /// (and every thread) evaluated against the same batches.
    pub fn eval_genome_batched(&self, genome: &[OpType], batches: &[Batch], seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for batch in batches {
            let mut tape = Tape::new();
            let logits = self.forward_frozen(&mut tape, batch, genome, &mut rng);
            pred.extend(hgnas_nn::metrics::predictions(
                tape.value(logits).data(),
                self.classes,
            ));
            truth.extend_from_slice(self.targets(batch));
        }
        hgnas_nn::metrics::overall_accuracy(&pred, &truth)
    }
}

impl Module for Supernet {
    fn params(&self) -> Vec<&Param> {
        let mut p = self.stem.params();
        p.extend(self.aligns.iter().flat_map(Module::params));
        p.extend(self.combines.iter().flat_map(Module::params));
        p.extend(self.head.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.stem.params_mut();
        p.extend(self.aligns.iter_mut().flat_map(Module::params_mut));
        p.extend(self.combines.iter_mut().flat_map(Module::params_mut));
        p.extend(self.head.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_pointcloud::{DatasetConfig, SynthNet40};

    fn tiny_supernet(seed: u64) -> (Supernet, SynthNet40) {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let sn = Supernet::new(
            &mut rng,
            6,
            16,
            8,
            ds.classes,
            FunctionSet::dgcnn_like(16),
            FunctionSet::dgcnn_like(16),
            &[16],
        );
        (sn, ds)
    }

    #[test]
    fn any_path_produces_logits() {
        let (sn, ds) = tiny_supernet(1);
        let batch = SynthNet40::batches(&ds.train[..4], 4).remove(0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..6 {
            let genome = sn.random_genome(&mut rng);
            let mut tape = Tape::new();
            let logits = sn.forward(&mut tape, &batch, &genome, &mut rng);
            assert_eq!(tape.value(logits).dims(), &[4, ds.classes]);
        }
    }

    #[test]
    fn spos_training_reduces_loss() {
        let (mut sn, ds) = tiny_supernet(3);
        let batches = SynthNet40::batches(&ds.train, 8);
        let mut opt = Optimizer::adam(3e-3);
        let mut rng = StdRng::seed_from_u64(4);
        let first = sn.train_epoch(&batches, &mut opt, &mut rng);
        let mut last = first;
        for _ in 0..6 {
            last = sn.train_epoch(&batches, &mut opt, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn eval_genome_deterministic_for_knn_paths() {
        let (sn, ds) = tiny_supernet(5);
        let genome = vec![
            OpType::Sample,
            OpType::Aggregate,
            OpType::Combine,
            OpType::Connect,
            OpType::Aggregate,
            OpType::Combine,
        ];
        let a = sn.eval_genome(&genome, &ds.test, 1);
        let b = sn.eval_genome(&genome, &ds.test, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn exported_weights_rebuild_a_bit_identical_supernet() {
        let (mut sn, ds) = tiny_supernet(8);
        let batches = SynthNet40::batches(&ds.train, 8);
        let mut opt = Optimizer::adam(3e-3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2 {
            sn.train_epoch(&batches, &mut opt, &mut rng);
        }
        let weights = sn.export_weights();

        // A freshly initialised clone of the geometry, overwritten with the
        // trained weights, evaluates every path bit-identically.
        let (mut other, _) = tiny_supernet(999);
        other.import_weights(&weights);
        let mut path_rng = StdRng::seed_from_u64(10);
        for _ in 0..4 {
            let genome = sn.random_genome(&mut path_rng);
            assert_eq!(
                sn.eval_genome(&genome, &ds.test, 0).to_bits(),
                other.eval_genome(&genome, &ds.test, 0).to_bits()
            );
        }
    }

    #[test]
    fn for_task_classification_matches_new_bit_for_bit() {
        let mut a_rng = StdRng::seed_from_u64(31);
        let mut b_rng = StdRng::seed_from_u64(31);
        let fs = FunctionSet::dgcnn_like(16);
        let a = Supernet::new(&mut a_rng, 6, 16, 8, 4, fs, fs, &[16]);
        let b = Supernet::for_task(
            &mut b_rng,
            TaskKind::Classification,
            6,
            16,
            8,
            4,
            fs,
            fs,
            &[16],
        );
        for (x, y) in a.export_weights().iter().zip(&b.export_weights()) {
            assert_eq!(x.dims(), y.dims());
            for (u, v) in x.data().iter().zip(y.data()) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn per_point_supernet_learns_the_octant_task() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(21));
        let task = TaskKind::Segmentation;
        let parts = hgnas_pointcloud::SEGMENTATION_PARTS;
        let mut rng = StdRng::seed_from_u64(21);
        let fs = FunctionSet::dgcnn_like(16);
        let mut sn = Supernet::for_task(&mut rng, task, 6, 16, 8, parts, fs, fs, &[16]);
        let batches = task.task().batches(&ds.train, 8);

        // Per-point logits: one row per stacked point, one column per part.
        let genome = vec![
            OpType::Sample,
            OpType::Aggregate,
            OpType::Combine,
            OpType::Connect,
            OpType::Aggregate,
            OpType::Combine,
        ];
        let mut tape = Tape::new();
        let mut f_rng = StdRng::seed_from_u64(0);
        let logits = sn.forward_frozen(&mut tape, &batches[0], &genome, &mut f_rng);
        assert_eq!(
            tape.value(logits).dims(),
            &[batches[0].points.dims()[0], parts]
        );

        let mut opt = Optimizer::adam(1e-2);
        let mut t_rng = StdRng::seed_from_u64(22);
        let first = sn.train_epoch(&batches, &mut opt, &mut t_rng);
        let mut last = first;
        for _ in 0..24 {
            last = sn.train_epoch(&batches, &mut opt, &mut t_rng);
        }
        assert!(last < first, "seg loss {first} -> {last}");

        // Octants are sign patterns of xyz — a few epochs beat chance, and
        // the KNN-only path evaluates deterministically.
        let acc = sn.eval_genome(&genome, &ds.test, 0);
        assert!(acc > 1.5 / parts as f64, "octant accuracy {acc}");
        assert_eq!(
            acc.to_bits(),
            sn.eval_genome(&genome, &ds.test, 5).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "no point labels")]
    fn per_point_eval_rejects_unlabelled_batches() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(23));
        let mut rng = StdRng::seed_from_u64(23);
        let fs = FunctionSet::dgcnn_like(16);
        let sn = Supernet::for_task(
            &mut rng,
            TaskKind::Segmentation,
            4,
            16,
            8,
            hgnas_pointcloud::SEGMENTATION_PARTS,
            fs,
            fs,
            &[16],
        );
        // Plain classification batches lack point labels.
        let batches = SynthNet40::batches(&ds.test, 16);
        let genome = vec![
            OpType::Sample,
            OpType::Aggregate,
            OpType::Combine,
            OpType::Connect,
        ];
        sn.eval_genome_batched(&genome, &batches, 0);
    }

    #[test]
    fn different_halves_different_align_widths() {
        let mut rng = StdRng::seed_from_u64(6);
        let upper = FunctionSet {
            message: MessageType::Full,
            ..FunctionSet::dgcnn_like(16)
        };
        let lower = FunctionSet {
            message: MessageType::Distance,
            ..FunctionSet::dgcnn_like(16)
        };
        let sn = Supernet::new(&mut rng, 4, 16, 8, 4, upper, lower, &[8]);
        // Upper positions align from 3*16, lower from width-1 messages.
        assert_eq!(sn.aligns[0].in_dim(), 48);
        assert_eq!(sn.aligns[3].in_dim(), 1);
    }
}
