//! Simulated search-time accounting.
//!
//! The paper's Fig. 9 plots objective score against *search time in
//! minutes* on the V100 host. Our host hardware differs, so the harnesses
//! meter search cost on the same simulated clock used for device latency:
//! every supernet training step, every accuracy validation, every predictor
//! query and every on-device measurement deposits its modelled cost here
//! (deviation #4 in `DESIGN.md`).

/// Accumulates simulated wall-clock milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchClock {
    elapsed_ms: f64,
}

impl SearchClock {
    /// A zeroed clock.
    pub fn new() -> Self {
        SearchClock::default()
    }

    /// A clock resumed at a checkpointed elapsed time.
    pub fn from_ms(elapsed_ms: f64) -> Self {
        SearchClock { elapsed_ms }
    }

    /// Adds `ms` of simulated work.
    pub fn add_ms(&mut self, ms: f64) {
        debug_assert!(ms >= 0.0, "negative time");
        self.elapsed_ms += ms;
    }

    /// Elapsed simulated milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Elapsed simulated minutes (the Fig. 9 x-axis).
    pub fn elapsed_min(&self) -> f64 {
        self.elapsed_ms / 60_000.0
    }

    /// Elapsed simulated GPU-hours (the paper's "a few GPU hours" claim).
    pub fn elapsed_hours(&self) -> f64 {
        self.elapsed_ms / 3_600_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_converts() {
        let mut c = SearchClock::new();
        c.add_ms(90_000.0);
        c.add_ms(30_000.0);
        assert!((c.elapsed_min() - 2.0).abs() < 1e-12);
        assert!((c.elapsed_hours() - 2.0 / 60.0).abs() < 1e-12);
    }
}
