//! The evolutionary search engine (paper Alg. 1, inspired by SPOS's EA).
//!
//! Generic over the genome so both search stages (function sets, operation
//! sequences) and both strategies (multi-stage, one-stage joint) reuse it.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// EA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EaConfig {
    /// Population size (paper: 20).
    pub population: usize,
    /// Iterations (paper: up to 1000).
    pub iterations: usize,
    /// Fraction of the population kept as elites each iteration.
    pub elite_fraction: f64,
    /// Probability a child comes from mutation (vs crossover).
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl EaConfig {
    /// The paper's settings (population 20; iteration budget supplied by
    /// the caller since stages differ).
    pub fn paper(iterations: usize) -> Self {
        EaConfig {
            population: 20,
            iterations,
            elite_fraction: 0.4,
            mutation_prob: 0.7,
            seed: 0,
        }
    }

    /// Fast settings for the reduced-scale harnesses.
    pub fn fast(iterations: usize) -> Self {
        EaConfig {
            population: 8,
            iterations,
            elite_fraction: 0.5,
            mutation_prob: 0.7,
            seed: 0,
        }
    }
}

/// Outcome of an EA run.
#[derive(Debug, Clone)]
pub struct EaResult<G> {
    /// Best genome found.
    pub best: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Best-so-far trajectory, one entry per fitness evaluation:
    /// `(evaluation_index, best_fitness_so_far)`.
    pub history: Vec<(usize, f64)>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

/// Scores one EA generation at a time.
///
/// The engine hands over a whole generation's worth of genomes per call, so
/// implementations are free to fan the batch out across threads — the
/// returned fitness vector must simply line up with `batch` index-for-index
/// and must not depend on how the batch was scheduled. [`FnEvaluator`]
/// adapts a plain per-genome closure; `hgnas_core::eval::Evaluator`
/// provides the memoised parallel implementation.
pub trait GenerationEvaluator<G> {
    /// Fitness of each genome in `batch`, in order (higher is better).
    fn evaluate(&mut self, batch: &[G]) -> Vec<f64>;
}

/// Adapts a `FnMut(&G) -> f64` closure to [`GenerationEvaluator`] by
/// scoring candidates one at a time, in order — the serial reference
/// behaviour.
pub struct FnEvaluator<F>(pub F);

impl<G, F: FnMut(&G) -> f64> GenerationEvaluator<G> for FnEvaluator<F> {
    fn evaluate(&mut self, batch: &[G]) -> Vec<f64> {
        batch.iter().map(&mut self.0).collect()
    }
}

/// Runs a (μ+λ)-style evolutionary search with a per-genome fitness
/// closure — the serial convenience wrapper over [`evolve_with`].
///
/// - `init` seeds the initial population (cloned/topped-up to
///   `cfg.population` by mutation);
/// - `fitness` scores a genome (higher is better) — it is `FnMut` so
///   callers can meter simulated search time;
/// - `mutate` produces a perturbed copy;
/// - `crossover` recombines two parents.
///
/// # Panics
///
/// Panics if `init` is empty or `cfg.population == 0`.
pub fn evolve<G, F, M, X>(
    init: Vec<G>,
    cfg: &EaConfig,
    fitness: F,
    mutate: M,
    crossover: X,
) -> EaResult<G>
where
    G: Clone,
    F: FnMut(&G) -> f64,
    M: FnMut(&G, &mut StdRng) -> G,
    X: FnMut(&G, &G, &mut StdRng) -> G,
{
    evolve_with(init, cfg, &mut FnEvaluator(fitness), mutate, crossover)
}

/// A serialisable image of an in-flight EA: everything [`EaState`] needs to
/// resume producing the exact draw sequence and selections an uninterrupted
/// run would have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EaSnapshot<G> {
    /// Engine RNG mid-stream.
    pub rng: StdRng,
    /// The scored population, best-first.
    pub scored: Vec<(G, f64)>,
    /// Best genome/fitness seen so far.
    pub best: (G, f64),
    /// Fitness evaluations performed so far.
    pub evaluations: usize,
    /// Best-so-far trajectory, one entry per evaluation.
    pub history: Vec<(usize, f64)>,
    /// Completed generations ([`EaState::init`] counts as zero).
    pub generation: usize,
}

/// A resumable (μ+λ) evolutionary search: [`EaState::init`] scores the seed
/// population, each [`EaState::step`] breeds and scores one generation, and
/// [`EaState::snapshot`] / [`EaState::restore`] checkpoint the run at any
/// generation boundary. [`evolve_with`] is the run-to-completion wrapper and
/// defines the reference behaviour; a restored state continues the exact
/// RNG draw sequence, so interrupted and uninterrupted runs are
/// bit-identical.
#[derive(Debug)]
pub struct EaState<G> {
    cfg: EaConfig,
    rng: StdRng,
    /// Scored population, sorted best-first after every generation.
    scored: Vec<(G, f64)>,
    best: (G, f64),
    evaluations: usize,
    history: Vec<(usize, f64)>,
    generation: usize,
}

impl<G: Clone> EaState<G> {
    /// Seeds and scores the initial population (generation zero).
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty, `cfg.population == 0`, or `evaluator`
    /// returns a fitness vector of the wrong length.
    pub fn init<E, M>(init: Vec<G>, cfg: &EaConfig, evaluator: &mut E, mut mutate: M) -> Self
    where
        E: GenerationEvaluator<G> + ?Sized,
        M: FnMut(&G, &mut StdRng) -> G,
    {
        assert!(!init.is_empty(), "EA needs at least one seed genome");
        assert!(cfg.population > 0, "population must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Top the seed population up with mutants of the seeds.
        let mut pop: Vec<G> = init;
        while pop.len() < cfg.population {
            let base = pop[rng.gen_range(0..pop.len())].clone();
            pop.push(mutate(&base, &mut rng));
        }
        pop.truncate(cfg.population);

        let mut evaluations = 0usize;
        let mut history = Vec::new();
        let mut running_best = f64::NEG_INFINITY;
        let fits = evaluator.evaluate(&pop);
        assert_eq!(fits.len(), pop.len(), "evaluator returned wrong batch size");
        let mut scored: Vec<(G, f64)> = pop
            .into_iter()
            .zip(fits)
            .map(|(g, f)| {
                evaluations += 1;
                running_best = running_best.max(f);
                history.push((evaluations, running_best));
                (g, f)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let best = scored[0].clone();
        EaState {
            cfg: *cfg,
            rng,
            scored,
            best,
            evaluations,
            history,
            generation: 0,
        }
    }

    /// Completed generations (0 right after [`EaState::init`]).
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Whether the configured iteration budget has been exhausted.
    pub fn is_done(&self) -> bool {
        self.generation >= self.cfg.iterations
    }

    /// Breeds and scores one generation. No-op when [`EaState::is_done`].
    ///
    /// # Panics
    ///
    /// Panics if `evaluator` returns a fitness vector of the wrong length.
    pub fn step<E, M, X>(&mut self, evaluator: &mut E, mut mutate: M, mut crossover: X)
    where
        E: GenerationEvaluator<G> + ?Sized,
        M: FnMut(&G, &mut StdRng) -> G,
        X: FnMut(&G, &G, &mut StdRng) -> G,
    {
        if self.is_done() {
            return;
        }
        let cfg = &self.cfg;
        let elites =
            ((cfg.population as f64 * cfg.elite_fraction).ceil() as usize).clamp(1, cfg.population);
        let (scored, rng) = (&mut self.scored, &mut self.rng);
        // Breed the full generation first, then score it as one batch.
        let children: Vec<G> = (elites..cfg.population)
            .map(|_| {
                if rng.gen_bool(cfg.mutation_prob) || elites < 2 {
                    let parent = &scored[rng.gen_range(0..elites)].0;
                    mutate(parent, rng)
                } else {
                    let mut picks = scored[..elites].choose_multiple(rng, 2);
                    let a = &picks.next().unwrap().0;
                    let b = &picks.next().unwrap().0;
                    crossover(a, b, rng)
                }
            })
            .collect();
        let fits = evaluator.evaluate(&children);
        assert_eq!(
            fits.len(),
            children.len(),
            "evaluator returned wrong batch size"
        );

        let mut next: Vec<(G, f64)> = scored[..elites].to_vec();
        for (child, f) in children.into_iter().zip(fits) {
            self.evaluations += 1;
            if f > self.best.1 {
                self.best = (child.clone(), f);
            }
            self.history.push((self.evaluations, self.best.1));
            next.push((child, f));
        }
        next.sort_by(|a, b| b.1.total_cmp(&a.1));
        // No post-sort best re-check: every child was compared above, and
        // the carried elites were already ≤ best when they were scored.
        self.scored = next;
        self.generation += 1;
    }

    /// Checkpoints the state at the current generation boundary.
    pub fn snapshot(&self) -> EaSnapshot<G> {
        EaSnapshot {
            rng: self.rng.clone(),
            scored: self.scored.clone(),
            best: self.best.clone(),
            evaluations: self.evaluations,
            history: self.history.clone(),
            generation: self.generation,
        }
    }

    /// Rebuilds a state from a snapshot taken under the same `cfg`.
    /// Stepping the restored state continues the interrupted run's exact
    /// draw sequence.
    pub fn restore(cfg: &EaConfig, snap: EaSnapshot<G>) -> Self {
        EaState {
            cfg: *cfg,
            rng: snap.rng,
            scored: snap.scored,
            best: snap.best,
            evaluations: snap.evaluations,
            history: snap.history,
            generation: snap.generation,
        }
    }

    /// The run's outcome so far.
    pub fn result(&self) -> EaResult<G> {
        EaResult {
            best: self.best.0.clone(),
            best_fitness: self.best.1,
            history: self.history.clone(),
            evaluations: self.evaluations,
        }
    }
}

/// Runs a (μ+λ)-style evolutionary search, scoring whole generations
/// through `evaluator`.
///
/// Child genomes for a generation are produced *before* the generation is
/// scored (fitness never feeds back within a generation — selection uses
/// the previous generation's elites), so the engine's RNG draw sequence is
/// identical whether the evaluator scores candidates serially or in
/// parallel, and [`EaResult::history`] keeps one entry per evaluation in
/// submission order either way.
///
/// # Panics
///
/// Panics if `init` is empty, `cfg.population == 0`, or `evaluator`
/// returns a fitness vector of the wrong length.
pub fn evolve_with<G, E, M, X>(
    init: Vec<G>,
    cfg: &EaConfig,
    evaluator: &mut E,
    mut mutate: M,
    mut crossover: X,
) -> EaResult<G>
where
    G: Clone,
    E: GenerationEvaluator<G> + ?Sized,
    M: FnMut(&G, &mut StdRng) -> G,
    X: FnMut(&G, &G, &mut StdRng) -> G,
{
    let mut state = EaState::init(init, cfg, evaluator, &mut mutate);
    while !state.is_done() {
        state.step(evaluator, &mut mutate, &mut crossover);
    }
    state.result()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maximise the number of 1-bits in a 32-bit genome.
    fn onemax(cfg: &EaConfig) -> EaResult<u32> {
        evolve(
            vec![0u32],
            cfg,
            |g| g.count_ones() as f64,
            |g, rng| g ^ (1 << rng.gen_range(0..32)),
            |a, b, rng| {
                let mask: u32 = rng.gen();
                (a & mask) | (b & !mask)
            },
        )
    }

    #[test]
    fn solves_onemax() {
        let r = onemax(&EaConfig {
            population: 16,
            iterations: 60,
            elite_fraction: 0.4,
            mutation_prob: 0.8,
            seed: 3,
        });
        assert!(r.best_fitness >= 28.0, "got {}", r.best_fitness);
    }

    #[test]
    fn history_is_monotone_nondecreasing() {
        let r = onemax(&EaConfig::fast(20));
        for w in r.history.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(r.history.last().unwrap().1, r.best_fitness);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = onemax(&EaConfig::paper(10));
        let b = onemax(&EaConfig::paper(10));
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        let cfg = EaConfig {
            population: 12,
            iterations: 25,
            elite_fraction: 0.4,
            mutation_prob: 0.8,
            seed: 17,
        };
        let fitness = |g: &u32| g.count_ones() as f64;
        let mutate = |g: &u32, rng: &mut StdRng| g ^ (1 << rng.gen_range(0..32));
        let crossover = |a: &u32, b: &u32, rng: &mut StdRng| {
            let mask: u32 = rng.gen();
            (a & mask) | (b & !mask)
        };

        let full = onemax(&cfg);

        // Run 10 generations, snapshot, drop the state, resume, finish.
        let mut ev = FnEvaluator(fitness);
        let mut state = EaState::init(vec![0u32], &cfg, &mut ev, mutate);
        for _ in 0..10 {
            state.step(&mut ev, mutate, crossover);
        }
        let snap = state.snapshot();
        assert_eq!(snap.generation, 10);
        drop(state);

        let mut resumed = EaState::restore(&cfg, snap);
        while !resumed.is_done() {
            resumed.step(&mut ev, mutate, crossover);
        }
        let r = resumed.result();
        assert_eq!(r.best, full.best);
        assert_eq!(r.best_fitness.to_bits(), full.best_fitness.to_bits());
        assert_eq!(r.history, full.history);
        assert_eq!(r.evaluations, full.evaluations);
    }

    #[test]
    fn step_past_budget_is_a_noop() {
        let cfg = EaConfig::fast(2);
        let fitness = |g: &u32| *g as f64;
        let mutate = |g: &u32, rng: &mut StdRng| g.wrapping_add(rng.gen_range(0..3u32));
        let mut ev = FnEvaluator(fitness);
        let mut state = EaState::init(vec![1u32], &cfg, &mut ev, mutate);
        while !state.is_done() {
            state.step(&mut ev, mutate, |a, _, _| *a);
        }
        let before = state.result();
        state.step(&mut ev, mutate, |a, _, _| *a);
        assert_eq!(state.generation(), 2);
        assert_eq!(state.result().history, before.history);
    }

    #[test]
    fn evaluations_counted() {
        let cfg = EaConfig::fast(5);
        let r = onemax(&cfg);
        assert_eq!(r.evaluations, r.history.len());
        assert!(r.evaluations >= cfg.population);
    }
}
