//! Design-space accounting (paper Sec. III-B, Observation ② and the Tab. I
//! inventory printed by the `tab1` harness).

use hgnas_ops::{Aggregator, ConnectFn, FunctionSet, MessageType, OpType, SampleFn, COMBINE_DIMS};

/// The fine-grained design space over a fixed number of positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpace {
    /// Number of supernet positions (the paper uses 12 to cover DGCNN).
    pub positions: usize,
}

impl DesignSpace {
    /// The paper's 12-position space.
    pub fn paper() -> Self {
        DesignSpace { positions: 12 }
    }

    /// Creates a space with the given position count.
    ///
    /// # Panics
    ///
    /// Panics if `positions == 0`.
    pub fn new(positions: usize) -> Self {
        assert!(positions > 0, "need at least one position");
        DesignSpace { positions }
    }

    /// Options for a single position when operation *and* function are free:
    /// 2 sample + 4·7 aggregate + 6 combine + 2 connect.
    pub fn options_per_position() -> u64 {
        (SampleFn::ALL.len()
            + Aggregator::ALL.len() * MessageType::ALL.len()
            + COMBINE_DIMS.len()
            + ConnectFn::ALL.len()) as u64
    }

    /// Size of the flat fine-grained space: `options^positions`. For 12
    /// positions this is ≈ 9.7 × 10¹⁸ — the "staggering (3N)^12" scale the
    /// paper's Observation ② warns about (the paper's headline arithmetic,
    /// 3 op kinds × N functions to the 12th, evaluates to 4.2 × 10¹²; both
    /// are hopeless to enumerate).
    pub fn flat_size(&self) -> f64 {
        (Self::options_per_position() as f64).powi(self.positions as i32)
    }

    /// The paper's headline figure for the flat 12-position space. The
    /// paper quotes "(3N)^12" evaluating to 4.2 × 10¹² candidates without
    /// stating N; we report the quoted value verbatim for the Tab. I
    /// harness (our exact Tab. I arithmetic is [`DesignSpace::flat_size`],
    /// which is larger because connect ops and all 28 aggregate variants
    /// count individually).
    pub fn paper_headline_size(&self) -> f64 {
        4.2e12
    }

    /// Stage-1 space after hierarchical decoupling: two half function sets.
    pub fn function_space_size(&self) -> u64 {
        FunctionSet::space_size() * FunctionSet::space_size()
    }

    /// Stage-2 space: operation types per position.
    pub fn operation_space_size(&self) -> u64 {
        (OpType::ALL.len() as u64).pow(self.positions as u32)
    }

    /// Total candidates the hierarchical strategy explores sequentially —
    /// the paper's "from 4.2 × 10¹² to 1.7 × 10⁷" reduction (our exact
    /// numbers: 672² + 4¹² ≈ 1.7 × 10⁷ for 12 positions).
    pub fn hierarchical_size(&self) -> u64 {
        self.function_space_size() + self.operation_space_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_match_tab1() {
        // 2 + 28 + 6 + 2 = 38.
        assert_eq!(DesignSpace::options_per_position(), 38);
    }

    #[test]
    fn hierarchical_reduction_matches_paper_scale() {
        let s = DesignSpace::paper();
        // 4^12 = 16 777 216 ≈ 1.7e7, dominating the 672^2 function space —
        // exactly the paper's quoted reduction target.
        assert_eq!(s.operation_space_size(), 4u64.pow(12));
        let h = s.hierarchical_size() as f64;
        assert!((1.6e7..1.8e7).contains(&h), "hierarchical {h}");
        // And the flat space is astronomically larger.
        assert!(s.flat_size() > 1e18);
        assert!((s.paper_headline_size() - 4.2e12).abs() < 1.0);
    }

    #[test]
    fn function_space_is_672_squared() {
        assert_eq!(FunctionSet::space_size(), 672);
        assert_eq!(DesignSpace::paper().function_space_size(), 672 * 672);
    }
}
