//! The HGNAS search pipeline (paper Alg. 1 plus the Fig. 9 ablation modes).

use crate::clock::SearchClock;
use crate::ea::{evolve_with, EaConfig, EaSnapshot, EaState};
use crate::eval::{CandidateScorer, EvalStats, Evaluator};
use crate::objective::{CandidateMetrics, Objective};
use crate::supernet::Supernet;
use hgnas_device::{
    DeviceKind, DevicePersona, DeviceProfile, ExecutionReport, MeasureError, Workload,
};
use hgnas_ops::{lower_edgeconv, Architecture, DgcnnConfig, FunctionSet, OpType};
use hgnas_pointcloud::{Batch, DatasetConfig, PointCloud, SynthNet40, Task, TaskKind};
use hgnas_predictor::{LatencyPredictor, PredictorConfig, PredictorContext, TrainStats};
use hgnas_tensor::threads::with_kernel_threads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// How candidate latency is obtained during the search (Fig. 9(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMode {
    /// The GCN-based predictor: milliseconds per query on the search host.
    Predictor,
    /// Simulated real-time measurement on the target device: pays the
    /// deployment round-trip plus repeated inference runs per query.
    Measured,
}

/// Search-space traversal strategy (Fig. 9(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's two-stage hierarchical search: functions first, then
    /// operations on a pre-trained supernet.
    MultiStage,
    /// Joint one-stage baseline over the full fine-grained space; every
    /// candidate pays its own supernet training.
    OneStage,
}

/// Task definition: what is learned (the [`TaskKind`]), the dataset, and
/// the supernet geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskConfig {
    /// Which task family the search optimises for (classification,
    /// segmentation, robustness). Selects dataset generation, batching,
    /// the model's output head and the labels accuracy is scored against.
    pub task_kind: TaskKind,
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// Supernet positions (paper: 12).
    pub positions: usize,
    /// Neighbour fanout (paper: 20).
    pub k: usize,
    /// Supernet hidden width.
    pub supernet_hidden: usize,
    /// Classifier hidden widths.
    pub head_hidden: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
}

impl TaskConfig {
    /// Minimal task for unit tests (4 classes, 48 points).
    pub fn tiny(seed: u64) -> Self {
        TaskConfig {
            task_kind: TaskKind::Classification,
            dataset: DatasetConfig::tiny(seed),
            positions: 6,
            k: 8,
            supernet_hidden: 16,
            head_hidden: vec![16],
            seed,
        }
    }

    /// Reduced-scale default (10 classes, 128 points) used by the
    /// harnesses; runs end-to-end in tens of seconds.
    pub fn small(seed: u64) -> Self {
        TaskConfig {
            task_kind: TaskKind::Classification,
            dataset: DatasetConfig::small(seed),
            positions: 8,
            k: 10,
            supernet_hidden: 24,
            head_hidden: vec![48],
            seed,
        }
    }

    /// Paper-scale task (40 classes, 1024 points, 12 positions).
    pub fn paper(seed: u64) -> Self {
        TaskConfig {
            task_kind: TaskKind::Classification,
            dataset: DatasetConfig::paper(seed),
            positions: 12,
            k: 20,
            supernet_hidden: 64,
            head_hidden: vec![128],
            seed,
        }
    }

    /// Points per cloud.
    pub fn points(&self) -> usize {
        self.dataset.points
    }

    /// Classes in the dataset.
    pub fn classes(&self) -> usize {
        self.dataset.classes
    }

    /// The pluggable task implementation behind [`TaskConfig::task_kind`].
    pub fn task(&self) -> &'static dyn Task {
        self.task_kind.task()
    }

    /// Output width of the searched model's head under this task — the
    /// dataset's class count for per-cloud tasks, the part count for
    /// segmentation.
    pub fn out_classes(&self) -> usize {
        self.task().out_classes(&self.dataset)
    }

    /// The matching-scale DGCNN baseline configuration (the latency
    /// reference and default constraint).
    pub fn reference_dgcnn(&self) -> DgcnnConfig {
        let mut cfg = if self.points() >= 512 {
            DgcnnConfig::paper(self.classes())
        } else {
            DgcnnConfig::small(self.classes())
        };
        cfg.k = self.k;
        cfg
    }

    /// Predictor context for this task.
    pub fn predictor_context(&self) -> PredictorContext {
        PredictorContext {
            positions: self.positions,
            points: self.points(),
            k: self.k,
            classes: self.out_classes(),
            head_hidden: self.head_hidden.clone(),
        }
    }
}

/// Search hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Target edge device.
    pub device: DeviceKind,
    /// A custom device persona overriding the builtin profile of `device`.
    /// When set, `device` must equal the persona's base kind
    /// ([`SearchConfig::with_persona`] maintains this) — kind-keyed
    /// artifacts and codecs keep working, while every latency, energy and
    /// memory number comes from the persona's profile.
    pub persona: Option<DevicePersona>,
    /// Accuracy weight α (Eq. 1/3).
    pub alpha: f64,
    /// Latency weight β (Eq. 1/3).
    pub beta: f64,
    /// Inference-energy weight γ: `0.0` (the default) prices energy out of
    /// the objective entirely — scoring then does bit-identical arithmetic
    /// to the pre-multi-metric pipeline. Non-zero weights subtract
    /// `γ·energy/reference_energy` per Eq. (3)'s latency term shape.
    pub gamma: f64,
    /// Peak-inference-memory weight δ; same contract as `gamma`.
    pub delta: f64,
    /// Hard latency constraint in ms; defaults to the DGCNN reference
    /// latency when `None` (a found model must at least beat the baseline).
    pub constraint_ms: Option<f64>,
    /// Optional hard model-size constraint in MB.
    pub max_size_mb: Option<f64>,
    /// Optional hard inference-energy constraint in mJ.
    pub max_energy_mj: Option<f64>,
    /// Optional hard peak-inference-memory constraint in MB.
    pub max_peak_mem_mb: Option<f64>,
    /// EA settings for Stage 1 (function search).
    pub ea_stage1: EaConfig,
    /// EA settings for Stage 2 (operation search).
    pub ea_stage2: EaConfig,
    /// Supernet epochs per Stage-1 candidate (paper: 50).
    pub epochs_stage1: usize,
    /// Supernet pre-training epochs before Stage 2 (paper: 500).
    pub epochs_stage2: usize,
    /// Latency source.
    pub latency_mode: LatencyMode,
    /// Traversal strategy.
    pub strategy: Strategy,
    /// Predictor training settings (used in [`LatencyMode::Predictor`]).
    pub predictor: PredictorConfig,
    /// Cap on validation clouds per accuracy evaluation.
    pub eval_clouds: usize,
    /// Total thread budget for candidate evaluation: the parallel
    /// evaluator splits it between EA-level workers and kernel-level
    /// matmul threads. Results are bit-identical for any value ≥ 1.
    pub eval_threads: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Default total thread budget: the machine's parallelism, capped so the
/// reduced-scale harnesses don't pay spawn overhead for tiny batches.
fn default_eval_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8)
}

impl SearchConfig {
    /// Fast settings for the reduced-scale harnesses (seconds, not hours).
    pub fn fast(device: DeviceKind) -> Self {
        SearchConfig {
            device,
            persona: None,
            alpha: 1.0,
            beta: 0.6,
            gamma: 0.0,
            delta: 0.0,
            constraint_ms: None,
            max_size_mb: None,
            max_energy_mj: None,
            max_peak_mem_mb: None,
            ea_stage1: EaConfig {
                population: 6,
                iterations: 2,
                elite_fraction: 0.5,
                mutation_prob: 0.7,
                seed: 11,
            },
            ea_stage2: EaConfig {
                population: 10,
                iterations: 8,
                elite_fraction: 0.4,
                mutation_prob: 0.7,
                seed: 12,
            },
            epochs_stage1: 2,
            epochs_stage2: 6,
            latency_mode: LatencyMode::Predictor,
            strategy: Strategy::MultiStage,
            predictor: PredictorConfig::small(),
            eval_clouds: 60,
            eval_threads: default_eval_threads(),
            seed: 0,
        }
    }

    /// The paper's settings (Sec. IV-A): population 20, 1000 iterations,
    /// 50/500 supernet epochs, 30K predictor samples.
    pub fn paper(device: DeviceKind) -> Self {
        SearchConfig {
            device,
            persona: None,
            alpha: 1.0,
            beta: 0.6,
            gamma: 0.0,
            delta: 0.0,
            constraint_ms: None,
            max_size_mb: None,
            max_energy_mj: None,
            max_peak_mem_mb: None,
            ea_stage1: EaConfig::paper(1000),
            ea_stage2: EaConfig::paper(1000),
            epochs_stage1: 50,
            epochs_stage2: 500,
            latency_mode: LatencyMode::Predictor,
            strategy: Strategy::MultiStage,
            predictor: PredictorConfig::paper(),
            eval_clouds: 500,
            eval_threads: default_eval_threads(),
            seed: 0,
        }
    }

    /// The prefix-relevant slice of this configuration: exactly the
    /// fields [`Hgnas::prepare_session`] reads. Two configurations with
    /// equal `prefix_params()` (and equal tasks) build bit-identical
    /// [`SessionState`]s, whatever their device or persona, α/β/γ/δ
    /// weights, constraints, Stage-2 EA settings, latency mode, predictor
    /// settings or thread budget — the single source of truth for session
    /// sharing
    /// (`SessionState::validate` and the fleet layer's prefix fingerprint
    /// both consume it).
    pub fn prefix_params(&self) -> PrefixParams {
        PrefixParams {
            strategy: self.strategy,
            ea_stage1: self.ea_stage1,
            epochs_stage1: self.epochs_stage1,
            epochs_stage2: self.epochs_stage2,
            eval_clouds: self.eval_clouds,
            seed: self.seed,
        }
    }

    /// Installs a custom device persona: the search targets the persona's
    /// profile, and `device` is pinned to the persona's base kind (what
    /// kind-keyed artifacts and codecs continue to see).
    pub fn with_persona(mut self, persona: DevicePersona) -> Self {
        self.device = persona.base_kind();
        self.persona = Some(persona);
        self
    }

    /// The device profile the search executes against: the persona's when
    /// one is set, else the builtin profile of `device`.
    pub fn device_profile(&self) -> DeviceProfile {
        match &self.persona {
            Some(p) => p.profile.clone(),
            None => self.device.profile(),
        }
    }

    /// Human-readable target label for reports: the persona's name when
    /// one is set, else the builtin device name.
    pub fn device_label(&self) -> String {
        match &self.persona {
            Some(p) => p.name.clone(),
            None => self.device.name().to_string(),
        }
    }
}

/// The deterministic-prefix inputs of a [`SearchConfig`] — what
/// [`SearchConfig::prefix_params`] extracts. Field inventory, and why
/// each is here:
///
/// - `strategy`: selects the prefix shape (Stage 1 + pre-training vs.
///   the one-stage trivial prefix).
/// - `ea_stage1`: drives the Stage-1 function search entirely.
/// - `epochs_stage1` / `epochs_stage2`: Stage-1 candidate training and
///   supernet pre-training depth.
/// - `eval_clouds`: the Stage-1 scorer's validation subset size.
/// - `seed`: every prefix RNG derives from it (Stage-1 seeding, the
///   Stage-1 evaluator, pre-training).
///
/// Deliberately absent: the device and persona (Stage-1 scoring never
/// reads them — simulated clock costs use a fixed reference profile), the
/// α/β/γ/δ weights, the latency/size/energy/memory constraints,
/// `ea_stage2`, the latency mode, the predictor settings and the
/// bit-transparent thread budget. The *task* (including its kind) is part
/// of [`TaskConfig`] and always compared exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixParams {
    /// Traversal strategy.
    pub strategy: Strategy,
    /// Stage-1 EA settings.
    pub ea_stage1: EaConfig,
    /// Supernet epochs per Stage-1 candidate.
    pub epochs_stage1: usize,
    /// Pre-training epochs before Stage 2.
    pub epochs_stage2: usize,
    /// Validation clouds per accuracy evaluation.
    pub eval_clouds: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// A model found by the search.
#[derive(Debug, Clone)]
pub struct SearchedModel {
    /// The finalised architecture (functions instantiated per half).
    pub architecture: Architecture,
    /// The op-type genome.
    pub genome: Vec<OpType>,
    /// The (upper, lower) function sets.
    pub functions: (FunctionSet, FunctionSet),
    /// Objective score (Eq. 3).
    pub score: f64,
    /// One-shot validation accuracy under supernet weights.
    pub supernet_accuracy: f64,
    /// Latency on the target device as seen by the search (predicted or
    /// measured, per [`LatencyMode`]).
    pub latency_ms: f64,
}

/// Everything a search run produces.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best model.
    pub best: SearchedModel,
    /// `(simulated minutes, best objective so far)` — the Fig. 9 trace
    /// (Stage-2 / joint-search evaluations).
    pub history: Vec<(f64, f64)>,
    /// Total simulated search time, hours.
    pub search_hours: f64,
    /// Predictor validation stats when the predictor mode was used.
    pub predictor_stats: Option<TrainStats>,
    /// Candidate-evaluation cache/scheduling counters of the main search
    /// loop (Stage 2, or the joint one-stage loop).
    pub eval_stats: Option<EvalStats>,
    /// Stage-1 function-search cache/scheduling counters (multi-stage runs
    /// only — Stage 1 runs its own memoising evaluator).
    pub stage1_stats: Option<EvalStats>,
    /// DGCNN reference latency on the target device, ms.
    pub reference_ms: f64,
    /// The latency constraint that was enforced, ms.
    pub constraint_ms: f64,
}

/// An external measurement service the search can route latency queries
/// through instead of invoking the device simulator inline — the hook an
/// asynchronous measurement oracle (e.g. `hgnas-fleet`'s) plugs into.
///
/// Implementations must be *transparent*: given the same workload and RNG
/// state, `measure` must return exactly what
/// [`DeviceProfile::measure`] would, and leave `rng` in the same state —
/// that is what keeps a search through a backend bit-identical to an inline
/// one. Retries of transient transport failures are fine (and encouraged);
/// retrying must not consume measurement-noise draws.
pub trait MeasureBackend: Send + Sync + fmt::Debug {
    /// Measures `workload` on the backend's device, drawing measurement
    /// noise from `rng`.
    ///
    /// # Errors
    ///
    /// [`MeasureError`] exactly as [`DeviceProfile::measure`] reports it.
    fn measure(
        &self,
        workload: &Workload,
        rng: &mut StdRng,
    ) -> Result<ExecutionReport, MeasureError>;
}

/// A predictor trained in an earlier run (e.g. loaded from an artifact
/// store), paired with the statistics observed when it was trained.
/// Supplying one to [`Hgnas::run_with`] skips predictor training entirely.
#[derive(Debug, Clone)]
pub struct PretrainedPredictor {
    /// The predictor; must target the search's device and task context.
    pub predictor: Arc<LatencyPredictor>,
    /// Training statistics to surface on [`SearchOutcome::predictor_stats`].
    pub stats: TrainStats,
}

/// Full result of scoring one Stage-2 (or one-stage) candidate. Public so
/// checkpoints can persist — and artifact codecs re-encode — the
/// evaluator's score cache. `PartialEq` is what warm-start import
/// validation compares with, so it must (and does) cover every field.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The instantiated architecture (rebuildable from the genome and the
    /// run's function sets, which is how codecs avoid storing it).
    pub architecture: Architecture,
    /// Objective score (Eq. 3); hard 0 for constraint violators.
    pub score: f64,
    /// One-shot validation accuracy (0 for constraint violators).
    pub accuracy: f64,
    /// Latency seen by the search, ms.
    pub latency_ms: f64,
    /// Simulated search time this evaluation cost, ms.
    pub cost_ms: f64,
    /// Whether the candidate met the latency, size, energy and memory
    /// constraints.
    pub valid: bool,
    /// Simulated inference energy on the target, mJ. `None` unless the
    /// objective prices energy or memory (execution metrics are only
    /// computed when something consumes them).
    pub energy_mj: Option<f64>,
    /// Simulated peak inference memory on the target, MB. Present exactly
    /// when `energy_mj` is.
    pub peak_mem_mb: Option<f64>,
}

/// A consistent image of an in-flight multi-stage search at a Stage-2
/// generation boundary: EA state (including its RNG mid-stream), the
/// evaluator's memo cache and stream counters, the simulated clock, the
/// history trace and the best-so-far candidate. Restoring it via
/// [`RunOptions::resume`] continues the search bit-identically to a run
/// that was never interrupted.
#[derive(Debug, Clone)]
pub struct SearchCheckpoint {
    /// The search seed (validated on resume).
    pub seed: u64,
    /// The target device (validated on resume).
    pub device: DeviceKind,
    /// The Stage-1 function sets the checkpointed Stage 2 runs under
    /// (validated against the deterministic Stage-1 re-run on resume).
    pub functions: (FunctionSet, FunctionSet),
    /// The Stage-2 EA hyperparameters the checkpoint was taken under
    /// (validated on resume — restoring into a different population or
    /// breeding schedule would silently break bit-identity).
    pub ea_config: EaConfig,
    /// Completed Stage-2 generations.
    pub generation: usize,
    /// The Stage-2 EA mid-run.
    pub ea: EaSnapshot<Vec<OpType>>,
    /// Evaluator counters (anchor per-candidate RNG stream ids).
    pub eval_stats: EvalStats,
    /// The evaluator's memo cache in first-scoring order.
    pub cache: Vec<(Vec<OpType>, ScoredCandidate)>,
    /// Warm-start imports ([`RunOptions::imported_cache`]) not yet served
    /// at the boundary; resuming re-imports them so a killed warm run
    /// keeps promoting — and counting — the exact entries the
    /// uninterrupted one would have. Empty for cold runs. (On-disk codecs
    /// rebuild each entry's architecture from the checkpoint's own
    /// function sets, which is exact for same-fingerprint imports — the
    /// bit-identity contract; donors from a different configuration are
    /// approximate transfer to begin with.)
    pub warm_cache: Vec<(Vec<OpType>, ScoredCandidate)>,
    /// Simulated elapsed time at the boundary, ms.
    pub clock_ms: f64,
    /// The Fig. 9 history trace so far.
    pub history: Vec<(f64, f64)>,
    /// Best candidate so far, with its constraint-validity flag.
    pub best: Option<(SearchedModel, bool)>,
}

/// A consistent image of an in-flight one-stage (joint) search at a
/// generation boundary: the joint EA mid-stream, the evaluator's memo
/// cache and counters, the simulated clock, the history trace and the
/// best-so-far candidate. The one-stage counterpart of
/// [`SearchCheckpoint`]; restoring it via [`RunOptions::resume`] continues
/// the baseline bit-identically to a run that was never interrupted.
#[derive(Debug, Clone)]
pub struct OneStageCheckpoint {
    /// The search seed (validated on resume).
    pub seed: u64,
    /// The target device (validated on resume).
    pub device: DeviceKind,
    /// The EA hyperparameters the checkpoint was taken under (validated on
    /// resume).
    pub ea_config: EaConfig,
    /// Completed generations.
    pub generation: usize,
    /// The joint EA mid-run.
    pub ea: EaSnapshot<JointGenome>,
    /// Evaluator counters (anchor per-candidate RNG stream ids).
    pub eval_stats: EvalStats,
    /// The evaluator's memo cache in first-scoring order.
    pub cache: Vec<(JointGenome, ScoredCandidate)>,
    /// Simulated elapsed time at the boundary, ms.
    pub clock_ms: f64,
    /// The history trace so far.
    pub history: Vec<(f64, f64)>,
    /// Best candidate so far, with its constraint-validity flag.
    pub best: Option<(SearchedModel, bool)>,
}

/// A checkpoint of either search strategy — what [`RunOptions::resume`]
/// accepts, [`RunOptions::checkpoint_sink`] receives, and
/// [`RunOutput::checkpoint`] returns. Handing a checkpoint of one strategy
/// to a search configured for the other panics at resume time.
#[derive(Debug, Clone)]
pub enum Checkpoint {
    /// A Stage-2 boundary of the multi-stage hierarchical search.
    MultiStage(SearchCheckpoint),
    /// A generation boundary of the one-stage joint baseline.
    OneStage(OneStageCheckpoint),
}

impl Checkpoint {
    /// Completed generations at the boundary.
    pub fn generation(&self) -> usize {
        match self {
            Checkpoint::MultiStage(cp) => cp.generation,
            Checkpoint::OneStage(cp) => cp.generation,
        }
    }

    /// The checkpointed search's target device.
    pub fn device(&self) -> DeviceKind {
        match self {
            Checkpoint::MultiStage(cp) => cp.device,
            Checkpoint::OneStage(cp) => cp.device,
        }
    }

    /// The checkpointed search's seed.
    pub fn seed(&self) -> u64 {
        match self {
            Checkpoint::MultiStage(cp) => cp.seed,
            Checkpoint::OneStage(cp) => cp.seed,
        }
    }

    /// Simulated elapsed time at the boundary, ms.
    pub fn clock_ms(&self) -> f64 {
        match self {
            Checkpoint::MultiStage(cp) => cp.clock_ms,
            Checkpoint::OneStage(cp) => cp.clock_ms,
        }
    }

    /// Best objective score so far, if any candidate has been scored.
    pub fn best_score(&self) -> Option<f64> {
        let best = match self {
            Checkpoint::MultiStage(cp) => &cp.best,
            Checkpoint::OneStage(cp) => &cp.best,
        };
        best.as_ref().map(|(m, _)| m.score)
    }

    /// The strategy this checkpoint belongs to.
    pub fn strategy(&self) -> Strategy {
        match self {
            Checkpoint::MultiStage(_) => Strategy::MultiStage,
            Checkpoint::OneStage(_) => Strategy::OneStage,
        }
    }

    /// The multi-stage payload, if that is what this is.
    pub fn as_multi_stage(&self) -> Option<&SearchCheckpoint> {
        match self {
            Checkpoint::MultiStage(cp) => Some(cp),
            Checkpoint::OneStage(_) => None,
        }
    }

    /// The one-stage payload, if that is what this is.
    pub fn as_one_stage(&self) -> Option<&OneStageCheckpoint> {
        match self {
            Checkpoint::MultiStage(_) => None,
            Checkpoint::OneStage(cp) => Some(cp),
        }
    }
}

/// The deterministic prefix of a search, computed once and resumable: the
/// generated dataset plus — for multi-stage runs — the Stage-1 winning
/// function sets and the pre-trained [`Supernet`].
///
/// Every multi-stage [`Hgnas::run_with`] call used to replay this prefix
/// even when resuming a checkpoint, which made generation-granular
/// preemption cost O(slices × pre-training). Building the prefix once via
/// [`Hgnas::prepare_session`] and handing it back through
/// [`RunOptions::session`] drops that to O(pre-training) per configuration:
/// the run skips straight to the (possibly checkpointed) main search loop.
///
/// A session is immutable and `Sync` (the supernet is only ever run
/// frozen), so shards sharing a configuration fingerprint can share one
/// session behind an `Arc`. Runs through a session are bit-identical to
/// full replays — the invariant `cached_prefix_resume_matches_full_replay`
/// pins down.
#[derive(Debug)]
pub struct SessionState {
    task: TaskConfig,
    config: SearchConfig,
    ds: SynthNet40,
    prefix: SessionPrefix,
}

/// Strategy-specific part of a [`SessionState`].
#[derive(Debug)]
enum SessionPrefix {
    /// Multi-stage: the Stage-1 outcome and the pre-trained supernet.
    MultiStage {
        functions: (FunctionSet, FunctionSet),
        stage1_stats: EvalStats,
        /// Boxed so the one-stage variant does not carry the supernet's
        /// footprint.
        supernet: Box<Supernet>,
        /// Simulated elapsed time after Stage 1 + pre-training, ms.
        clock_ms: f64,
    },
    /// One-stage: no prefix beyond the dataset (every candidate trains its
    /// own supernet inside the main loop).
    OneStage,
}

/// The serialisable image of a multi-stage [`SessionState`]: everything a
/// spilled session needs that is not deterministically rebuildable from
/// the task/config pair (the dataset is, the trained weights are not).
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The Stage-1 winning (upper, lower) function sets.
    pub functions: (FunctionSet, FunctionSet),
    /// Stage-1 evaluator counters, surfaced on
    /// [`SearchOutcome::stage1_stats`].
    pub stage1_stats: EvalStats,
    /// Simulated elapsed time after the prefix, ms.
    pub clock_ms: f64,
    /// Pre-trained supernet weights ([`Supernet::export_weights`] order).
    pub weights: Vec<hgnas_tensor::Tensor>,
}

impl SessionState {
    /// The strategy the session was prepared for.
    pub fn strategy(&self) -> Strategy {
        match self.prefix {
            SessionPrefix::MultiStage { .. } => Strategy::MultiStage,
            SessionPrefix::OneStage => Strategy::OneStage,
        }
    }

    /// The Stage-1 winning function sets (multi-stage sessions only).
    pub fn functions(&self) -> Option<(FunctionSet, FunctionSet)> {
        match &self.prefix {
            SessionPrefix::MultiStage { functions, .. } => Some(*functions),
            SessionPrefix::OneStage => None,
        }
    }

    /// Approximate resident size in bytes — what a memory-budgeted session
    /// cache accounts against. Counts the supernet parameters (value +
    /// Adam moments: 12 bytes each) and the dataset floats; the small
    /// fixed-size fields ride in the constant.
    pub fn approx_bytes(&self) -> u64 {
        let dataset_floats: usize = self
            .ds
            .train
            .iter()
            .chain(&self.ds.test)
            .map(|c| c.points.len())
            .sum();
        let supernet_params = match &self.prefix {
            SessionPrefix::MultiStage { supernet, .. } => {
                hgnas_nn::Module::param_count(supernet.as_ref())
            }
            SessionPrefix::OneStage => 0,
        };
        (dataset_floats * 4 + supernet_params * 12 + 1024) as u64
    }

    /// Exports the spillable image of a multi-stage session; `None` for
    /// one-stage sessions, whose entire prefix is deterministically
    /// rebuildable from the task/config pair.
    pub fn export(&self) -> Option<SessionSnapshot> {
        match &self.prefix {
            SessionPrefix::MultiStage {
                functions,
                stage1_stats,
                supernet,
                clock_ms,
            } => Some(SessionSnapshot {
                functions: *functions,
                stage1_stats: *stage1_stats,
                clock_ms: *clock_ms,
                weights: supernet.export_weights(),
            }),
            SessionPrefix::OneStage => None,
        }
    }

    /// Rebuilds a multi-stage session from a spilled snapshot: the dataset
    /// is regenerated from the task (deterministic), the supernet is
    /// reconstructed and overwritten with the snapshot weights. The result
    /// drives searches bit-identically to the session it was exported
    /// from.
    ///
    /// # Panics
    ///
    /// Panics if `config` is not a multi-stage configuration or the
    /// weights disagree with the supernet geometry `task` describes.
    pub fn restore(task: TaskConfig, config: SearchConfig, snap: SessionSnapshot) -> SessionState {
        assert_eq!(
            config.strategy,
            Strategy::MultiStage,
            "session snapshots exist for multi-stage searches only"
        );
        let ds = task.task().generate(&task.dataset);
        // The init draw is immediately overwritten; any seed works.
        let mut rng = StdRng::seed_from_u64(0);
        let mut supernet = Supernet::for_task(
            &mut rng,
            task.task_kind,
            task.positions,
            task.supernet_hidden,
            task.k,
            task.out_classes(),
            snap.functions.0,
            snap.functions.1,
            &task.head_hidden,
        );
        supernet.import_weights(&snap.weights);
        SessionState {
            task,
            config,
            ds,
            prefix: SessionPrefix::MultiStage {
                functions: snap.functions,
                stage1_stats: snap.stage1_stats,
                supernet: Box::new(supernet),
                clock_ms: snap.clock_ms,
            },
        }
    }

    /// Asserts the session is usable for this task/config pair: the task
    /// must match exactly, but of the search configuration only the
    /// *prefix-relevant* fields ([`SearchConfig::prefix_params`]) matter —
    /// the prefix build never reads the device, α/β weights, constraints,
    /// Stage-2 EA settings, latency mode, predictor settings or thread
    /// budget, so configurations differing only there share sessions.
    fn validate(&self, task: &TaskConfig, config: &SearchConfig) {
        assert_eq!(&self.task, task, "session was prepared for another task");
        assert_eq!(
            self.config.prefix_params(),
            config.prefix_params(),
            "session was prepared under a different search configuration"
        );
    }
}

/// Optional hooks for [`Hgnas::run_with`]. [`RunOptions::default`] makes it
/// behave exactly like [`Hgnas::run`].
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Route [`LatencyMode::Measured`] queries through an external
    /// measurement service instead of the inline simulator.
    pub backend: Option<Arc<dyn MeasureBackend>>,
    /// Reuse a previously trained latency predictor
    /// ([`LatencyMode::Predictor`]), skipping predictor training.
    pub predictor: Option<PretrainedPredictor>,
    /// Resume a search from a checkpoint of the matching strategy instead
    /// of starting its main loop from scratch.
    pub resume: Option<Checkpoint>,
    /// Called with a fresh checkpoint at generation boundaries of the main
    /// search loop — Stage 2 or the one-stage baseline (persist it to
    /// survive kills).
    pub checkpoint_sink: Option<&'a mut dyn FnMut(&Checkpoint)>,
    /// Boundary stride for `checkpoint_sink`: build and deliver a
    /// checkpoint every N generations (0 is treated as 1). Snapshotting
    /// clones the whole score cache, so sparse strides keep long runs
    /// cheap; the final state is always delivered regardless.
    pub checkpoint_every: usize,
    /// Stop after this many generations of the main search loop (the
    /// kill-mid-search test hook and the fleet scheduler's preemption
    /// lever): the run returns no outcome, only its last checkpoint.
    pub abort_after_generation: Option<usize>,
    /// A prior run's score cache to warm-start the Stage-2 evaluator with
    /// (see `Evaluator::import_warm_cache`): first-touch candidates found
    /// here are served verbatim instead of re-scored, surfacing as
    /// [`EvalStats::imported`]. Entries are trusted as-is — bit-identity
    /// to a cold run holds when they come from a run with the same
    /// configuration fingerprint, or from any predictor-mode run (whose
    /// scoring never draws from candidate RNG streams). Multi-stage only;
    /// the one-stage baseline asserts this is `None`.
    pub imported_cache: Option<Vec<(Vec<OpType>, ScoredCandidate)>>,
    /// A prepared [`SessionState`] for this exact task/config pair
    /// ([`Hgnas::prepare_session`]): the run reuses its dataset, Stage-1
    /// function sets and pre-trained supernet instead of replaying the
    /// deterministic prefix. Bit-identical to running without one; the
    /// lever that makes fine-grained preemption O(pre-training) per
    /// configuration instead of per slice.
    pub session: Option<&'a SessionState>,
}

/// What [`Hgnas::run_with`] returns.
#[derive(Debug)]
pub struct RunOutput {
    /// The outcome; `None` when the run was aborted via
    /// [`RunOptions::abort_after_generation`].
    pub outcome: Option<SearchOutcome>,
    /// The final checkpoint of the main search loop (Stage 2, or the
    /// one-stage joint loop): the complete scored-candidate cache plus EA
    /// end state. This is what an artifact store persists between runs.
    pub checkpoint: Option<Checkpoint>,
}

/// Latency oracle shared by both modes. Stateless (`query` takes `&self`)
/// so candidate evaluations can share it across scoring threads; the
/// measurement-noise RNG is supplied per query from the candidate's own
/// stream.
enum LatencyOracle {
    Predictor(Arc<LatencyPredictor>),
    Measured {
        profile: DeviceProfile,
        points: usize,
        head_hidden: Vec<usize>,
        /// External measurement service; `None` measures inline. A
        /// transparent backend (see [`MeasureBackend`]) never changes
        /// query results, only who executes them.
        backend: Option<Arc<dyn MeasureBackend>>,
    },
}

impl LatencyOracle {
    /// Returns (latency_ms, simulated cost of obtaining it in ms). `rng`
    /// feeds the simulated measurement noise in [`LatencyMode::Measured`];
    /// the predictor path never draws from it.
    fn query(&self, arch: &Architecture, rng: &mut StdRng) -> (f64, f64) {
        match self {
            LatencyOracle::Predictor(p) => (p.predict_ms(arch), 2.0),
            LatencyOracle::Measured {
                profile,
                points,
                head_hidden,
                backend,
            } => {
                let w = arch.lower(*points, head_hidden);
                let result = match backend {
                    Some(b) => b.measure(&w, rng),
                    None => profile.measure(&w, rng),
                };
                match result {
                    // 10 timed runs plus the deployment round-trip.
                    Ok(r) => (
                        r.latency_ms,
                        profile.measurement_roundtrip_ms + 10.0 * r.latency_ms,
                    ),
                    Err(_) => (f64::INFINITY, profile.measurement_roundtrip_ms),
                }
            }
        }
    }
}

/// Read-only context for scoring one Stage-1 function-set pair, shared
/// across the parallel evaluator's workers.
struct Stage1Scorer<'a> {
    hgnas: &'a Hgnas,
    ds: &'a SynthNet40,
    /// Evaluation split, stacked into batches once at construction so
    /// every candidate (and every worker) reuses the same batch tensors
    /// instead of re-stacking the clouds per genome.
    eval_batches: Vec<Batch>,
    /// Simulated cost of one one-shot accuracy validation, ms.
    eval_cost_ms: f64,
}

/// Result of scoring one Stage-1 candidate.
#[derive(Debug, Clone, PartialEq)]
struct Stage1Score {
    /// Mean one-shot accuracy over a few random supernet paths.
    accuracy: f64,
    /// Simulated search time the evaluation cost, ms.
    cost_ms: f64,
}

impl CandidateScorer<(FunctionSet, FunctionSet)> for Stage1Scorer<'_> {
    type Output = Stage1Score;

    fn score(&self, fs: &(FunctionSet, FunctionSet), rng: &mut StdRng) -> Stage1Score {
        let mut clk = SearchClock::new();
        let sn = self.hgnas.train_supernet_with_rng(
            *fs,
            self.hgnas.config.epochs_stage1,
            self.ds,
            rng,
            &mut clk,
        );
        // Mean one-shot accuracy over a few random paths.
        let mut acc = 0.0;
        const PATHS: usize = 3;
        for _ in 0..PATHS {
            let genome = sn.random_genome(rng);
            acc += sn.eval_genome_batched(&genome, &self.eval_batches, 0);
            clk.add_ms(self.eval_cost_ms);
        }
        Stage1Score {
            accuracy: acc / PATHS as f64,
            cost_ms: clk.elapsed_ms(),
        }
    }
}

/// The inherently serial Stage-2 bookkeeping the evaluator's reduce step
/// maintains and checkpoints capture.
struct Stage2Book {
    clock: SearchClock,
    history: Vec<(f64, f64)>,
    best: Option<(SearchedModel, bool)>,
}

/// What one Stage-2 run (possibly aborted mid-way) produced.
struct Stage2Run {
    best: Option<(SearchedModel, bool)>,
    eval_stats: EvalStats,
    history: Vec<(f64, f64)>,
    clock: SearchClock,
    checkpoint: SearchCheckpoint,
    aborted: bool,
}

/// What one one-stage run (possibly aborted mid-way) produced.
struct OneStageRun {
    best: Option<(SearchedModel, bool)>,
    eval_stats: EvalStats,
    history: Vec<(f64, f64)>,
    clock: SearchClock,
    checkpoint: OneStageCheckpoint,
    aborted: bool,
}

/// Read-only context for scoring one Stage-2 genome, shared across the
/// parallel evaluator's workers.
struct Stage2Scorer<'a> {
    task: &'a TaskConfig,
    functions: (FunctionSet, FunctionSet),
    supernet: &'a Supernet,
    /// Evaluation split, stacked into batches once at construction. Besides
    /// hoisting the per-candidate re-stacking, sharing the batches means the
    /// frozen supernet's per-batch KNN caches (keyed by its weight version)
    /// pay off across every candidate and worker thread in the generation.
    eval_batches: Vec<Batch>,
    oracle: &'a LatencyOracle,
    objective: &'a Objective,
    /// Target profile for energy/peak-memory costing — `Some` exactly when
    /// the objective prices those axes ([`Objective::needs_execution_metrics`]);
    /// plain latency×accuracy configs never pay the per-candidate lowering.
    exec_profile: Option<DeviceProfile>,
    /// Simulated cost of one one-shot accuracy validation, ms.
    eval_cost_ms: f64,
}

/// Lowers `arch` on the target profile and fills the energy/peak-memory
/// metrics. Deterministic (the roofline simulator draws no RNG), so adding
/// these axes never perturbs candidate RNG streams.
fn fill_execution_metrics(
    metrics: &mut CandidateMetrics,
    profile: &DeviceProfile,
    arch: &Architecture,
    points: usize,
    head_hidden: &[usize],
) {
    let report = profile.execute(&arch.lower(points, head_hidden));
    metrics.energy_mj = Some(report.energy_mj(profile.power_w));
    metrics.peak_mem_mb = Some(report.peak_mem_mb);
}

impl CandidateScorer<Vec<OpType>> for Stage2Scorer<'_> {
    type Output = ScoredCandidate;

    fn score(&self, genome: &Vec<OpType>, rng: &mut StdRng) -> ScoredCandidate {
        let arch = Architecture::from_genome(
            genome,
            self.functions.0,
            self.functions.1,
            self.task.k,
            self.task.out_classes(),
        );
        let (lat, mut cost) = self.oracle.query(&arch, rng);
        let mut metrics = CandidateMetrics {
            accuracy: 0.0,
            latency_ms: lat,
            size_mb: Some(arch.size_mb(3, &self.task.head_hidden)),
            energy_mj: None,
            peak_mem_mb: None,
        };
        if let Some(profile) = &self.exec_profile {
            fill_execution_metrics(
                &mut metrics,
                profile,
                &arch,
                self.task.points(),
                &self.task.head_hidden,
            );
        }
        // Constraint gates first: failing candidates skip the (expensive)
        // accuracy validation, as in the paper.
        let valid = self.objective.admits(&metrics);
        let (acc, score) = if !valid {
            (0.0, 0.0)
        } else {
            let acc = self
                .supernet
                .eval_genome_batched(genome, &self.eval_batches, 0);
            cost += self.eval_cost_ms;
            metrics.accuracy = acc;
            (acc, self.objective.evaluate(&metrics))
        };
        ScoredCandidate {
            architecture: arch,
            score,
            accuracy: acc,
            latency_ms: lat,
            cost_ms: cost,
            valid,
            energy_mj: metrics.energy_mj,
            peak_mem_mb: metrics.peak_mem_mb,
        }
    }
}

/// Genome of the one-stage joint baseline: both half function sets plus
/// the op-type sequence evolve together. Public so one-stage checkpoints
/// can persist — and artifact codecs re-encode — the joint EA state.
pub type JointGenome = (FunctionSet, FunctionSet, Vec<OpType>);

/// Read-only context for scoring one joint (one-stage) candidate, shared
/// across the parallel evaluator's workers.
struct OneStageScorer<'a> {
    hgnas: &'a Hgnas,
    ds: &'a SynthNet40,
    /// Evaluation split, stacked into batches once at construction (each
    /// candidate trains its own supernet, but the eval batches are shared).
    eval_batches: Vec<Batch>,
    oracle: &'a LatencyOracle,
    objective: &'a Objective,
    /// Target profile for energy/peak-memory costing — see
    /// [`Stage2Scorer::exec_profile`].
    exec_profile: Option<DeviceProfile>,
    /// Simulated cost of one one-shot accuracy validation, ms.
    eval_cost_ms: f64,
}

impl CandidateScorer<JointGenome> for OneStageScorer<'_> {
    type Output = ScoredCandidate;

    fn score(&self, (up, lo, genome): &JointGenome, rng: &mut StdRng) -> ScoredCandidate {
        let task = &self.hgnas.task;
        let arch = Architecture::from_genome(genome, *up, *lo, task.k, task.out_classes());
        let (lat, mut cost) = self.oracle.query(&arch, rng);
        let mut metrics = CandidateMetrics {
            accuracy: 0.0,
            latency_ms: lat,
            size_mb: Some(arch.size_mb(3, &task.head_hidden)),
            energy_mj: None,
            peak_mem_mb: None,
        };
        if let Some(profile) = &self.exec_profile {
            fill_execution_metrics(
                &mut metrics,
                profile,
                &arch,
                task.points(),
                &task.head_hidden,
            );
        }
        let valid = self.objective.admits(&metrics);
        let (acc, score) = if !valid {
            (0.0, 0.0)
        } else {
            // No shared supernet: train one for this candidate, seeded
            // from the candidate's private stream.
            let mut clk = SearchClock::new();
            let sn = self.hgnas.train_supernet_with_rng(
                (*up, *lo),
                self.hgnas.config.epochs_stage1,
                self.ds,
                rng,
                &mut clk,
            );
            let acc = sn.eval_genome_batched(genome, &self.eval_batches, 0);
            clk.add_ms(self.eval_cost_ms);
            cost += clk.elapsed_ms();
            metrics.accuracy = acc;
            (acc, self.objective.evaluate(&metrics))
        };
        ScoredCandidate {
            architecture: arch,
            score,
            accuracy: acc,
            latency_ms: lat,
            cost_ms: cost,
            valid,
            energy_mj: metrics.energy_mj,
            peak_mem_mb: metrics.peak_mem_mb,
        }
    }
}

/// The HGNAS framework entry point.
#[derive(Debug, Clone)]
pub struct Hgnas {
    task: TaskConfig,
    config: SearchConfig,
}

impl Hgnas {
    /// Creates a framework instance for a task/config pair.
    pub fn new(task: TaskConfig, config: SearchConfig) -> Self {
        Hgnas { task, config }
    }

    /// The task.
    pub fn task(&self) -> &TaskConfig {
        &self.task
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Generates the task dataset (deterministic in the task seed), via
    /// the task's own generator — classification delegates straight to
    /// [`SynthNet40::generate`].
    pub fn dataset(&self) -> SynthNet40 {
        self.task.task().generate(&self.task.dataset)
    }

    /// Full execution report of the DGCNN reference on the target profile
    /// — the normalisation source for every objective axis (latency,
    /// energy, peak memory).
    fn reference_report(&self) -> ExecutionReport {
        let w = lower_edgeconv(&self.task.reference_dgcnn(), self.task.points());
        self.config.device_profile().execute(&w)
    }

    /// DGCNN reference latency on the target device (or persona).
    pub fn reference_ms(&self) -> f64 {
        self.reference_report().latency_ms
    }

    /// Simulated cost of one supernet training epoch on the V100 host:
    /// every training cloud does a forward+backward (≈3× forward work) of a
    /// mid-sized candidate.
    fn epoch_cost_ms(&self, train_clouds: usize) -> f64 {
        let proxy = lower_edgeconv(&self.task.reference_dgcnn(), self.task.points());
        let per_cloud = DeviceKind::V100.profile().execute(&proxy).latency_ms;
        train_clouds as f64 * per_cloud * 3.0
    }

    /// Simulated cost of one one-shot accuracy validation.
    fn eval_cost_ms(&self, eval_clouds: usize) -> f64 {
        let proxy = lower_edgeconv(&self.task.reference_dgcnn(), self.task.points());
        let per_cloud = DeviceKind::V100.profile().execute(&proxy).latency_ms;
        eval_clouds as f64 * per_cloud
    }

    fn make_oracle(&self, opts: &RunOptions) -> (LatencyOracle, Option<TrainStats>) {
        match self.config.latency_mode {
            LatencyMode::Predictor => {
                if let Some(pre) = &opts.predictor {
                    assert_eq!(
                        pre.predictor.device(),
                        self.config.device,
                        "pre-trained predictor targets the wrong device"
                    );
                    assert_eq!(
                        *pre.predictor.context(),
                        self.task.predictor_context(),
                        "pre-trained predictor was trained for a different task context"
                    );
                    return (
                        LatencyOracle::Predictor(Arc::clone(&pre.predictor)),
                        Some(pre.stats.clone()),
                    );
                }
                let (p, stats) = LatencyPredictor::train_with_profile(
                    &self.config.device_profile(),
                    &self.task.predictor_context(),
                    &self.config.predictor,
                );
                (LatencyOracle::Predictor(Arc::new(p)), Some(stats))
            }
            LatencyMode::Measured => (
                LatencyOracle::Measured {
                    profile: self.config.device_profile(),
                    points: self.task.points(),
                    head_hidden: self.task.head_hidden.clone(),
                    backend: opts.backend.clone(),
                },
                None,
            ),
        }
    }

    fn train_supernet(
        &self,
        functions: (FunctionSet, FunctionSet),
        epochs: usize,
        ds: &SynthNet40,
        seed: u64,
        clock: &mut SearchClock,
    ) -> Supernet {
        let mut rng = StdRng::seed_from_u64(seed);
        self.train_supernet_with_rng(functions, epochs, ds, &mut rng, clock)
    }

    /// Supernet construction + training drawing from a caller-owned stream:
    /// the Stage-1 and one-stage scorers feed each candidate's private
    /// stream through here so training stays deterministic per candidate
    /// regardless of scheduling.
    fn train_supernet_with_rng(
        &self,
        functions: (FunctionSet, FunctionSet),
        epochs: usize,
        ds: &SynthNet40,
        rng: &mut StdRng,
        clock: &mut SearchClock,
    ) -> Supernet {
        let mut sn = Supernet::for_task(
            rng,
            self.task.task_kind,
            self.task.positions,
            self.task.supernet_hidden,
            self.task.k,
            self.task.out_classes(),
            functions.0,
            functions.1,
            &self.task.head_hidden,
        );
        let batches = self.task.task().batches(&ds.train, 8);
        const BASE_LR: f32 = 3e-3;
        let mut opt = hgnas_nn::Optimizer::adam(BASE_LR);
        let schedule = hgnas_nn::LrSchedule::Cosine {
            min_lr: BASE_LR / 10.0,
            total_epochs: epochs.max(1),
        };
        for epoch in 0..epochs {
            opt.set_learning_rate(schedule.lr_at(BASE_LR, epoch));
            sn.train_epoch(&batches, &mut opt, rng);
            clock.add_ms(self.epoch_cost_ms(ds.train.len()));
        }
        sn
    }

    fn eval_subset<'a>(&self, ds: &'a SynthNet40) -> &'a [PointCloud] {
        let n = self.config.eval_clouds.min(ds.test.len());
        &ds.test[..n]
    }

    /// Stage 1: evolve the (upper, lower) function-set pair to maximise
    /// supernet accuracy (Alg. 1 lines 4–9).
    ///
    /// Candidates run through their own memoising parallel [`Evaluator`]
    /// (per-candidate supernet training is the expensive part and fans out
    /// exactly like Stage-2 scoring): duplicate function pairs — common
    /// under single-attribute mutation — are never re-trained, and results
    /// are bit-identical at any `SearchConfig::eval_threads`.
    fn stage1(
        &self,
        ds: &SynthNet40,
        clock: &mut SearchClock,
    ) -> ((FunctionSet, FunctionSet), EvalStats) {
        let mut seed_rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let dgcnn_like = (FunctionSet::dgcnn_like(64), FunctionSet::dgcnn_like(128));
        let init = vec![
            dgcnn_like,
            (
                FunctionSet::random(&mut seed_rng),
                FunctionSet::random(&mut seed_rng),
            ),
        ];
        let eval_subset = self.eval_subset(ds);
        let scorer = Stage1Scorer {
            hgnas: self,
            ds,
            eval_batches: self.task.task().batches(eval_subset, 16),
            eval_cost_ms: self.eval_cost_ms(eval_subset.len()),
        };
        let mut evaluator = Evaluator::new(
            scorer,
            self.config.eval_threads,
            self.config.seed.wrapping_add(177),
            |_fs: &(FunctionSet, FunctionSet), out: &Stage1Score, fresh| {
                // Memoised duplicates cost no simulated search time: the
                // cached accuracy is reused without retraining anything.
                if fresh {
                    clock.add_ms(out.cost_ms);
                }
                out.accuracy
            },
        );
        let result = evolve_with(
            init,
            &self.config.ea_stage1,
            &mut evaluator,
            |fs, rng| mutate_function_pair(*fs, rng),
            |a, b, rng| crossover_function_pair(*a, *b, rng),
        );
        let stats = evaluator.stats();
        drop(evaluator);
        (result.best, stats)
    }

    /// Stage 2: fix functions, pre-train the supernet, evolve op genomes
    /// under the hardware-aware objective (Alg. 1 lines 10–15).
    ///
    /// Candidates are scored generation-at-a-time through the parallel
    /// [`Evaluator`]: duplicate genomes are served from the memo cache
    /// (never re-lowered or re-scored), and fresh genomes fan out across
    /// `SearchConfig::eval_threads` workers with per-candidate RNG streams,
    /// so the outcome is bit-identical for any thread count.
    ///
    /// The loop is checkpointable: at every generation boundary the
    /// complete state (EA + evaluator cache + clock + best-so-far) can be
    /// handed to [`RunOptions::checkpoint_sink`], and a run restored via
    /// [`RunOptions::resume`] continues the exact RNG streams of the
    /// interrupted one.
    #[allow(clippy::too_many_arguments)]
    fn stage2(
        &self,
        functions: (FunctionSet, FunctionSet),
        supernet: &Supernet,
        ds: &SynthNet40,
        oracle: &LatencyOracle,
        objective: &Objective,
        clock_in: SearchClock,
        opts: &mut RunOptions,
    ) -> Stage2Run {
        let eval_subset = self.eval_subset(ds);
        let scorer = Stage2Scorer {
            task: &self.task,
            functions,
            supernet,
            eval_batches: self.task.task().batches(eval_subset, 16),
            oracle,
            objective,
            exec_profile: objective
                .needs_execution_metrics()
                .then(|| self.config.device_profile()),
            eval_cost_ms: self.eval_cost_ms(eval_subset.len()),
        };
        // The serial bookkeeping (clock, history, best-so-far) lives in a
        // RefCell so both the evaluator's reduce closure and the
        // checkpoint builder below can reach it; the two never run at the
        // same time.
        let book = RefCell::new(Stage2Book {
            clock: clock_in,
            history: Vec::new(),
            best: None,
        });
        let mut evaluator = Evaluator::new(
            scorer,
            self.config.eval_threads,
            self.config.seed.wrapping_add(77),
            |genome: &Vec<OpType>, out: &ScoredCandidate, fresh: bool| {
                let mut b = book.borrow_mut();
                // Simulated search time is only paid for fresh evaluations:
                // a memoised candidate costs neither a latency query nor an
                // accuracy validation.
                if fresh {
                    b.clock.add_ms(out.cost_ms);
                }
                // A constraint-satisfying candidate always outranks a
                // violator, even when heavy β pushes its Eq.(3) score
                // below the violator's hard 0. Validity (latency *and*
                // size constraints) travels with the best candidate rather
                // than being re-derived from latency alone, so a size
                // violator can never block a genuinely valid candidate.
                let better = b.best.as_ref().is_none_or(|(best, best_valid)| {
                    match (out.valid, *best_valid) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => out.score > best.score,
                    }
                });
                if better {
                    b.best = Some((
                        SearchedModel {
                            architecture: out.architecture.clone(),
                            genome: genome.clone(),
                            functions,
                            score: out.score,
                            supernet_accuracy: out.accuracy,
                            latency_ms: out.latency_ms,
                        },
                        out.valid,
                    ));
                }
                let t = b.clock.elapsed_min();
                let best_score = b.best.as_ref().unwrap().0.score;
                b.history.push((t, best_score));
                out.score
            },
        );

        // Restore any checkpointed evaluator state *and* apply warm-start
        // imports before the EA scores anything (generation 0 must already
        // see the imported entries). Imports layer on top of the resume:
        // genomes the checkpoint already carries are skipped, so resuming
        // a warm run and re-supplying the same import is idempotent.
        let resume_cp = match opts.resume.take() {
            Some(Checkpoint::MultiStage(cp)) => Some(cp),
            Some(Checkpoint::OneStage(_)) => {
                panic!("one-stage checkpoint handed to a multi-stage search")
            }
            None => None,
        };
        if let Some(cp) = &resume_cp {
            assert_eq!(cp.seed, self.config.seed, "checkpoint seed mismatch");
            assert_eq!(
                cp.device, self.config.device,
                "checkpoint targets a different device"
            );
            assert_eq!(
                cp.functions, functions,
                "checkpoint function sets disagree with the Stage-1 re-run \
                 (different task or search configuration?)"
            );
            assert_eq!(
                cp.ea_config, self.config.ea_stage2,
                "checkpoint was taken under different Stage-2 EA hyperparameters"
            );
            assert!(
                cp.generation <= self.config.ea_stage2.iterations,
                "checkpoint is past this configuration's iteration budget"
            );
        }
        let resumed_gen = resume_cp.as_ref().map(|cp| cp.generation);
        let mut state = if let Some(cp) = resume_cp {
            evaluator.import_state(cp.eval_stats, cp.cache);
            evaluator.import_warm_cache(cp.warm_cache);
            if let Some(warm) = opts.imported_cache.take() {
                evaluator.import_warm_cache(warm);
            }
            {
                let mut b = book.borrow_mut();
                b.clock = SearchClock::from_ms(cp.clock_ms);
                b.history = cp.history;
                b.best = cp.best;
            }
            EaState::restore(&self.config.ea_stage2, cp.ea)
        } else {
            if let Some(warm) = opts.imported_cache.take() {
                evaluator.import_warm_cache(warm);
            }
            let mut init_rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(2));
            let dgcnn_ish: Vec<OpType> = (0..self.task.positions)
                .map(|i| match i % 3 {
                    0 => OpType::Sample,
                    1 => OpType::Aggregate,
                    _ => OpType::Combine,
                })
                .collect();
            let init = vec![dgcnn_ish, supernet.random_genome(&mut init_rng)];
            EaState::init(init, &self.config.ea_stage2, &mut evaluator, mutate_genome)
        };

        let mut last_cp: Option<SearchCheckpoint> = None;
        let mut aborted = false;
        loop {
            let done = state.is_done();
            let abort = opts
                .abort_after_generation
                .is_some_and(|g| state.generation() >= g);
            // Checkpoints are built lazily: only at boundaries the sink's
            // stride asks for, otherwise only the final state (cloning the
            // whole score cache per generation is not free). The resumed
            // entry generation is skipped — its checkpoint was already
            // delivered by the run that produced it.
            let stride = opts.checkpoint_every.max(1);
            let sink_wants = opts.checkpoint_sink.is_some()
                && state.generation().is_multiple_of(stride)
                && resumed_gen != Some(state.generation());
            if sink_wants || done || abort {
                let (eval_stats, cache) = evaluator.export_state();
                let warm_cache = evaluator.export_warm_cache();
                let b = book.borrow();
                let cp = Checkpoint::MultiStage(SearchCheckpoint {
                    seed: self.config.seed,
                    device: self.config.device,
                    functions,
                    ea_config: self.config.ea_stage2,
                    generation: state.generation(),
                    ea: state.snapshot(),
                    eval_stats,
                    cache,
                    warm_cache,
                    clock_ms: b.clock.elapsed_ms(),
                    history: b.history.clone(),
                    best: b.best.clone(),
                });
                drop(b);
                if let Some(sink) = opts.checkpoint_sink.as_mut() {
                    sink(&cp);
                }
                let Checkpoint::MultiStage(cp) = cp else {
                    unreachable!()
                };
                last_cp = Some(cp);
            }
            if abort {
                aborted = true;
                break;
            }
            if done {
                break;
            }
            state.step(&mut evaluator, mutate_genome, crossover_genome);
        }

        let stats = evaluator.stats();
        drop(evaluator);
        let book = book.into_inner();
        Stage2Run {
            // `best` is the source of truth, not the EA's raw-fitness
            // argmax: the valid-over-violator ranking above deliberately
            // keeps a constraint-satisfying candidate with a negative
            // Eq.(3) score ahead of a violator's hard 0, so the two can
            // legitimately name different candidates.
            best: book.best,
            eval_stats: stats,
            history: book.history,
            clock: book.clock,
            checkpoint: last_cp.expect("stage-2 loop always builds a final checkpoint"),
            aborted,
        }
    }

    /// One-stage joint search (Fig. 9(b) baseline): functions and
    /// operations evolve together; every candidate pays its own supernet
    /// training.
    ///
    /// Like the two staged paths, candidates run through the memoising
    /// parallel [`Evaluator`] with per-candidate RNG streams (supernet
    /// training and measurement noise both draw from the candidate's own
    /// stream), so the baseline is bit-identical at any thread count too.
    ///
    /// Mirrors [`Hgnas::stage2`]'s checkpoint protocol: the loop delivers
    /// a [`OneStageCheckpoint`] to [`RunOptions::checkpoint_sink`] at
    /// generation boundaries, honours
    /// [`RunOptions::abort_after_generation`], and a run restored via
    /// [`RunOptions::resume`] continues the exact RNG streams of the
    /// interrupted one.
    fn one_stage(
        &self,
        ds: &SynthNet40,
        oracle: &LatencyOracle,
        objective: &Objective,
        opts: &mut RunOptions,
    ) -> OneStageRun {
        let eval_subset = self.eval_subset(ds);
        let scorer = OneStageScorer {
            hgnas: self,
            ds,
            eval_batches: self.task.task().batches(eval_subset, 16),
            oracle,
            objective,
            exec_profile: objective
                .needs_execution_metrics()
                .then(|| self.config.device_profile()),
            eval_cost_ms: self.eval_cost_ms(eval_subset.len()),
        };
        let book = RefCell::new(Stage2Book {
            clock: SearchClock::new(),
            history: Vec::new(),
            best: None,
        });
        let mut evaluator = Evaluator::new(
            scorer,
            self.config.eval_threads,
            self.config.seed.wrapping_add(77),
            |g: &JointGenome, out: &ScoredCandidate, fresh: bool| {
                let mut b = book.borrow_mut();
                if fresh {
                    b.clock.add_ms(out.cost_ms);
                }
                // As in stage 2, validity travels with the best candidate
                // so the size gate participates in the valid-over-violator
                // ranking.
                let better = b.best.as_ref().is_none_or(|(best, best_valid)| {
                    match (out.valid, *best_valid) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => out.score > best.score,
                    }
                });
                if better {
                    b.best = Some((
                        SearchedModel {
                            architecture: out.architecture.clone(),
                            genome: g.2.clone(),
                            functions: (g.0, g.1),
                            score: out.score,
                            supernet_accuracy: out.accuracy,
                            latency_ms: out.latency_ms,
                        },
                        out.valid,
                    ));
                }
                let t = b.clock.elapsed_min();
                let best_score = b.best.as_ref().unwrap().0.score;
                b.history.push((t, best_score));
                out.score
            },
        );

        let resume_cp = match opts.resume.take() {
            Some(Checkpoint::OneStage(cp)) => Some(cp),
            Some(Checkpoint::MultiStage(_)) => {
                panic!("multi-stage checkpoint handed to a one-stage search")
            }
            None => None,
        };
        let resumed_gen = resume_cp.as_ref().map(|cp| cp.generation);
        let mut state = if let Some(cp) = resume_cp {
            assert_eq!(cp.seed, self.config.seed, "checkpoint seed mismatch");
            assert_eq!(
                cp.device, self.config.device,
                "checkpoint targets a different device"
            );
            assert_eq!(
                cp.ea_config, self.config.ea_stage2,
                "checkpoint was taken under different EA hyperparameters"
            );
            assert!(
                cp.generation <= self.config.ea_stage2.iterations,
                "checkpoint is past this configuration's iteration budget"
            );
            evaluator.import_state(cp.eval_stats, cp.cache);
            {
                let mut b = book.borrow_mut();
                b.clock = SearchClock::from_ms(cp.clock_ms);
                b.history = cp.history;
                b.best = cp.best;
            }
            EaState::restore(&self.config.ea_stage2, cp.ea)
        } else {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(3));
            let genome0: Vec<OpType> = (0..self.task.positions)
                .map(|_| OpType::ALL[rng.gen_range(0..4)])
                .collect();
            let init: Vec<JointGenome> = vec![(
                FunctionSet::dgcnn_like(64),
                FunctionSet::dgcnn_like(128),
                genome0,
            )];
            EaState::init(init, &self.config.ea_stage2, &mut evaluator, mutate_joint)
        };

        let mut last_cp: Option<OneStageCheckpoint> = None;
        let mut aborted = false;
        loop {
            let done = state.is_done();
            let abort = opts
                .abort_after_generation
                .is_some_and(|g| state.generation() >= g);
            let stride = opts.checkpoint_every.max(1);
            // As in stage 2: the resumed entry generation's checkpoint was
            // already delivered by the run that produced it.
            let sink_wants = resumed_gen != Some(state.generation())
                && opts.checkpoint_sink.is_some()
                && state.generation().is_multiple_of(stride);
            if sink_wants || done || abort {
                let (eval_stats, cache) = evaluator.export_state();
                let b = book.borrow();
                let cp = Checkpoint::OneStage(OneStageCheckpoint {
                    seed: self.config.seed,
                    device: self.config.device,
                    ea_config: self.config.ea_stage2,
                    generation: state.generation(),
                    ea: state.snapshot(),
                    eval_stats,
                    cache,
                    clock_ms: b.clock.elapsed_ms(),
                    history: b.history.clone(),
                    best: b.best.clone(),
                });
                drop(b);
                if let Some(sink) = opts.checkpoint_sink.as_mut() {
                    sink(&cp);
                }
                let Checkpoint::OneStage(cp) = cp else {
                    unreachable!()
                };
                last_cp = Some(cp);
            }
            if abort {
                aborted = true;
                break;
            }
            if done {
                break;
            }
            state.step(&mut evaluator, mutate_joint, crossover_joint);
        }

        let stats = evaluator.stats();
        drop(evaluator);
        let book = book.into_inner();
        OneStageRun {
            // As in stage 2: the valid-over-violator ranking can
            // legitimately disagree with the EA's raw-fitness argmax, so
            // the book's best is the source of truth.
            best: book.best,
            eval_stats: stats,
            history: book.history,
            clock: book.clock,
            checkpoint: last_cp.expect("one-stage loop always builds a final checkpoint"),
            aborted,
        }
    }

    /// Runs the full search and returns the outcome.
    ///
    /// The serial sections (supernet training) hand the whole
    /// `eval_threads` budget to the matmul kernels; Stage 1, Stage 2 and
    /// the one-stage baseline split it between evaluation workers and
    /// kernels. Both kernels are bit-identical, so `eval_threads` never
    /// changes the outcome.
    pub fn run(&self) -> SearchOutcome {
        self.run_with(RunOptions::default())
            .outcome
            .expect("an un-aborted search always yields an outcome")
    }

    /// Runs the search with external hooks: a measurement backend, a
    /// pre-trained predictor, checkpoint persistence and resume. See
    /// [`RunOptions`]; `run_with(RunOptions::default())` is [`Hgnas::run`]
    /// plus the final checkpoint.
    pub fn run_with(&self, opts: RunOptions) -> RunOutput {
        with_kernel_threads(self.config.eval_threads, || self.run_inner(opts))
    }

    /// Computes the deterministic prefix of this configuration — dataset
    /// generation, and for multi-stage searches the Stage-1 function
    /// search plus supernet pre-training — as a resumable
    /// [`SessionState`]. Handing it to [`RunOptions::session`] makes
    /// `run_with` skip straight to the main search loop; results are
    /// bit-identical to a run that replayed the prefix itself.
    pub fn prepare_session(&self) -> SessionState {
        with_kernel_threads(self.config.eval_threads, || self.prepare_session_inner())
    }

    fn prepare_session_inner(&self) -> SessionState {
        let ds = self.dataset();
        let prefix = match self.config.strategy {
            Strategy::MultiStage => {
                let mut clock = SearchClock::new();
                let (functions, stage1_stats) = self.stage1(&ds, &mut clock);
                let supernet = self.train_supernet(
                    functions,
                    self.config.epochs_stage2,
                    &ds,
                    self.config.seed.wrapping_add(4),
                    &mut clock,
                );
                SessionPrefix::MultiStage {
                    functions,
                    stage1_stats,
                    supernet: Box::new(supernet),
                    clock_ms: clock.elapsed_ms(),
                }
            }
            Strategy::OneStage => SessionPrefix::OneStage,
        };
        SessionState {
            task: self.task.clone(),
            config: self.config.clone(),
            ds,
            prefix,
        }
    }

    fn run_inner(&self, mut opts: RunOptions) -> RunOutput {
        if let Some(p) = &self.config.persona {
            assert_eq!(
                p.base_kind(),
                self.config.device,
                "persona '{}' is based on another device kind than config.device \
                 (use SearchConfig::with_persona to keep them aligned)",
                p.name
            );
        }
        // The deterministic prefix: reuse a prepared session when the
        // caller supplies one, replay it inline otherwise (the two are
        // bit-identical by the session invariant).
        let owned_session;
        let session = match opts.session.take() {
            Some(s) => {
                s.validate(&self.task, &self.config);
                s
            }
            None => {
                owned_session = self.prepare_session_inner();
                &owned_session
            }
        };
        let ds = &session.ds;
        // Every objective axis normalises against the same DGCNN reference
        // run on the target profile; a zero-weight axis never touches the
        // arithmetic (the classification bit-identity contract).
        let reference = self.reference_report();
        let reference_ms = reference.latency_ms;
        let constraint_ms = self.config.constraint_ms.unwrap_or(reference_ms);
        let mut objective = Objective::new(
            self.config.alpha,
            self.config.beta,
            constraint_ms,
            reference_ms,
        );
        if let Some(mb) = self.config.max_size_mb {
            objective = objective.with_max_size_mb(mb);
        }
        if self.config.gamma != 0.0 {
            let power_w = self.config.device_profile().power_w;
            objective = objective.with_energy(self.config.gamma, reference.energy_mj(power_w));
        }
        if let Some(mj) = self.config.max_energy_mj {
            objective = objective.with_max_energy_mj(mj);
        }
        if self.config.delta != 0.0 {
            objective = objective.with_peak_mem(self.config.delta, reference.peak_mem_mb);
        }
        if let Some(mb) = self.config.max_peak_mem_mb {
            objective = objective.with_max_peak_mem_mb(mb);
        }
        let (oracle, predictor_stats) = self.make_oracle(&opts);

        match self.config.strategy {
            Strategy::MultiStage => {
                // The prefix came from the session (freshly replayed or
                // cached); the checkpoint cross-checks the function sets
                // on resume either way.
                let SessionPrefix::MultiStage {
                    functions,
                    stage1_stats,
                    supernet,
                    clock_ms,
                } = &session.prefix
                else {
                    unreachable!("validated session matches the strategy")
                };
                let (functions, stage1_stats) = (*functions, *stage1_stats);
                let clock = SearchClock::from_ms(*clock_ms);
                let run = self.stage2(
                    functions, supernet, ds, &oracle, &objective, clock, &mut opts,
                );
                if run.aborted {
                    return RunOutput {
                        outcome: None,
                        checkpoint: Some(Checkpoint::MultiStage(run.checkpoint)),
                    };
                }
                let (best, _valid) = run.best.expect("stage 2 evaluated at least one candidate");
                RunOutput {
                    outcome: Some(SearchOutcome {
                        best,
                        history: run.history,
                        search_hours: run.clock.elapsed_hours(),
                        predictor_stats,
                        eval_stats: Some(run.eval_stats),
                        stage1_stats: Some(stage1_stats),
                        reference_ms,
                        constraint_ms,
                    }),
                    checkpoint: Some(Checkpoint::MultiStage(run.checkpoint)),
                }
            }
            Strategy::OneStage => {
                assert!(
                    opts.imported_cache.is_none(),
                    "imported score caches apply to the multi-stage Stage-2 loop only"
                );
                let run = self.one_stage(ds, &oracle, &objective, &mut opts);
                if run.aborted {
                    return RunOutput {
                        outcome: None,
                        checkpoint: Some(Checkpoint::OneStage(run.checkpoint)),
                    };
                }
                let (best, _valid) = run
                    .best
                    .expect("one-stage evaluated at least one candidate");
                RunOutput {
                    outcome: Some(SearchOutcome {
                        best,
                        history: run.history,
                        search_hours: run.clock.elapsed_hours(),
                        predictor_stats,
                        eval_stats: Some(run.eval_stats),
                        stage1_stats: None,
                        reference_ms,
                        constraint_ms,
                    }),
                    checkpoint: Some(Checkpoint::OneStage(run.checkpoint)),
                }
            }
        }
    }
}

fn mutate_function_set(mut fs: FunctionSet, rng: &mut StdRng) -> FunctionSet {
    use hgnas_ops::{Aggregator, ConnectFn, MessageType, SampleFn, COMBINE_DIMS};
    match rng.gen_range(0..5) {
        0 => fs.aggregator = Aggregator::ALL[rng.gen_range(0..Aggregator::ALL.len())],
        1 => fs.message = MessageType::ALL[rng.gen_range(0..MessageType::ALL.len())],
        2 => fs.sample = SampleFn::ALL[rng.gen_range(0..SampleFn::ALL.len())],
        3 => fs.connect = ConnectFn::ALL[rng.gen_range(0..ConnectFn::ALL.len())],
        _ => fs.combine_dim = COMBINE_DIMS[rng.gen_range(0..COMBINE_DIMS.len())],
    }
    fs
}

fn mutate_function_pair(
    fs: (FunctionSet, FunctionSet),
    rng: &mut StdRng,
) -> (FunctionSet, FunctionSet) {
    if rng.gen_bool(0.5) {
        (mutate_function_set(fs.0, rng), fs.1)
    } else {
        (fs.0, mutate_function_set(fs.1, rng))
    }
}

fn crossover_function_pair(
    a: (FunctionSet, FunctionSet),
    b: (FunctionSet, FunctionSet),
    rng: &mut StdRng,
) -> (FunctionSet, FunctionSet) {
    let upper = if rng.gen_bool(0.5) { a.0 } else { b.0 };
    let lower = if rng.gen_bool(0.5) { a.1 } else { b.1 };
    (upper, lower)
}

/// One-stage joint mutation: perturb either the function pair or the op
/// genome, never both (matches the Fig. 9(b) baseline's draw sequence).
fn mutate_joint((up, lo, genome): &JointGenome, rng: &mut StdRng) -> JointGenome {
    if rng.gen_bool(0.5) {
        let (u, l) = mutate_function_pair((*up, *lo), rng);
        (u, l, genome.clone())
    } else {
        (*up, *lo, mutate_genome(genome, rng))
    }
}

/// One-stage joint crossover: recombine function pairs and op genomes
/// independently.
fn crossover_joint(a: &JointGenome, b: &JointGenome, rng: &mut StdRng) -> JointGenome {
    let (u, l) = crossover_function_pair((a.0, a.1), (b.0, b.1), rng);
    (u, l, crossover_genome(&a.2, &b.2, rng))
}

// The `&Vec` parameters below are dictated by the EA's genome type
// `G = Vec<OpType>`: these functions are passed straight to `evolve_with`
// as `FnMut(&G, ...)`.
#[allow(clippy::ptr_arg)]
fn mutate_genome(genome: &Vec<OpType>, rng: &mut StdRng) -> Vec<OpType> {
    let mut g = genome.clone();
    let i = rng.gen_range(0..g.len());
    g[i] = OpType::ALL[rng.gen_range(0..OpType::ALL.len())];
    g
}

#[allow(clippy::ptr_arg)]
fn crossover_genome(a: &Vec<OpType>, b: &Vec<OpType>, rng: &mut StdRng) -> Vec<OpType> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(device: DeviceKind) -> SearchConfig {
        let mut cfg = SearchConfig::fast(device);
        cfg.ea_stage1.iterations = 1;
        cfg.ea_stage1.population = 3;
        cfg.ea_stage2.iterations = 3;
        cfg.ea_stage2.population = 6;
        cfg.epochs_stage1 = 1;
        cfg.epochs_stage2 = 2;
        cfg.predictor = hgnas_predictor::PredictorConfig {
            train_samples: 80,
            val_samples: 30,
            epochs: 8,
            lr: 3e-3,
            gcn_dims: vec![16, 16],
            mlp_hidden: vec![12],
            seed: 1,
            global_node: true,
            batch: 1,
        };
        cfg.eval_clouds = 20;
        cfg
    }

    fn tiny_search(device: DeviceKind) -> SearchOutcome {
        Hgnas::new(TaskConfig::tiny(5), tiny_config(device)).run()
    }

    #[test]
    fn search_finds_constraint_satisfying_model() {
        let outcome = tiny_search(DeviceKind::Rtx3080);
        // At tiny scale (one supernet epoch, 4 classes) absolute scores sit
        // near zero; the contract is that the search returns a finite,
        // constraint-satisfying candidate.
        assert!(outcome.best.score.is_finite());
        assert!(outcome.best.score > -0.5, "score {}", outcome.best.score);
        assert!(
            outcome.best.latency_ms < outcome.constraint_ms,
            "lat {} !< C {}",
            outcome.best.latency_ms,
            outcome.constraint_ms
        );
        assert!(outcome.predictor_stats.is_some());
        assert!(outcome.search_hours > 0.0);
    }

    #[test]
    fn history_is_monotone() {
        let outcome = tiny_search(DeviceKind::JetsonTx2);
        for w in outcome.history.windows(2) {
            assert!(w[1].0 >= w[0].0, "time went backwards");
            assert!(w[1].1 >= w[0].1, "best score regressed");
        }
    }

    #[test]
    fn size_constraint_is_respected() {
        let mut cfg = tiny_config(DeviceKind::Rtx3080);
        cfg.max_size_mb = Some(0.05); // ~13K params
        let task = TaskConfig::tiny(5);
        let outcome = Hgnas::new(task.clone(), cfg).run();
        if outcome.best.score > 0.0 {
            let size = outcome.best.architecture.size_mb(3, &task.head_hidden);
            assert!(size < 0.05, "found {size} MB model despite 0.05 MB budget");
        }
    }

    fn assert_outcomes_identical(a: &SearchOutcome, b: &SearchOutcome) {
        assert_eq!(a.best.genome, b.best.genome);
        assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        assert_eq!(
            a.best.supernet_accuracy.to_bits(),
            b.best.supernet_accuracy.to_bits()
        );
        assert_eq!(a.best.latency_ms.to_bits(), b.best.latency_ms.to_bits());
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        assert_eq!(a.search_hours.to_bits(), b.search_hours.to_bits());
        assert_eq!(a.eval_stats, b.eval_stats);
        assert_eq!(a.stage1_stats, b.stage1_stats);
    }

    /// The session invariant: a run through a prepared session — including
    /// one rebuilt from an exported snapshot — is bit-identical to a full
    /// replay, and a mid-run kill resumed through the session matches too.
    #[test]
    fn cached_prefix_resume_matches_full_replay() {
        let task = TaskConfig::tiny(5);
        let cfg = tiny_config(DeviceKind::JetsonTx2);
        let hgnas = Hgnas::new(task.clone(), cfg.clone());
        let full = hgnas.run();

        let session = hgnas.prepare_session();
        assert_eq!(session.strategy(), Strategy::MultiStage);
        assert!(session.functions().is_some());
        assert!(session.approx_bytes() > 0);
        let via_session = hgnas
            .run_with(RunOptions {
                session: Some(&session),
                ..RunOptions::default()
            })
            .outcome
            .expect("session run completes");
        assert_outcomes_identical(&via_session, &full);

        // Kill after one generation, resume through the session: the
        // prefix never replays and the outcome is unchanged.
        let killed = hgnas.run_with(RunOptions {
            session: Some(&session),
            abort_after_generation: Some(1),
            ..RunOptions::default()
        });
        assert!(killed.outcome.is_none());
        let resumed = hgnas
            .run_with(RunOptions {
                session: Some(&session),
                resume: killed.checkpoint,
                ..RunOptions::default()
            })
            .outcome
            .expect("resumed run completes");
        assert_outcomes_identical(&resumed, &full);

        // A session restored from its exported snapshot drives the search
        // bit-identically to the live one.
        let snap = session.export().expect("multi-stage sessions export");
        let restored = SessionState::restore(task, cfg, snap);
        let via_restored = hgnas
            .run_with(RunOptions {
                session: Some(&restored),
                ..RunOptions::default()
            })
            .outcome
            .expect("restored-session run completes");
        assert_outcomes_identical(&via_restored, &full);
    }

    /// One-stage sessions carry the dataset only and have nothing to
    /// spill, but still drive bit-identical runs.
    #[test]
    fn one_stage_session_matches_full_replay() {
        let task = TaskConfig::tiny(7);
        let mut cfg = tiny_config(DeviceKind::Rtx3080);
        cfg.strategy = Strategy::OneStage;
        let hgnas = Hgnas::new(task, cfg);
        let full = hgnas.run();
        let session = hgnas.prepare_session();
        assert_eq!(session.strategy(), Strategy::OneStage);
        assert!(session.functions().is_none());
        assert!(session.export().is_none());
        let via_session = hgnas
            .run_with(RunOptions {
                session: Some(&session),
                ..RunOptions::default()
            })
            .outcome
            .expect("session run completes");
        assert_outcomes_identical(&via_session, &full);
    }

    #[test]
    #[should_panic(expected = "different search configuration")]
    fn session_for_other_config_is_rejected() {
        let task = TaskConfig::tiny(5);
        let cfg = tiny_config(DeviceKind::JetsonTx2);
        let session = Hgnas::new(task.clone(), cfg.clone()).prepare_session();
        let mut other = cfg;
        other.seed ^= 1;
        Hgnas::new(task, other).run_with(RunOptions {
            session: Some(&session),
            ..RunOptions::default()
        });
    }

    #[test]
    fn segmentation_search_runs_end_to_end_and_is_deterministic() {
        let mut task = TaskConfig::tiny(5);
        task.task_kind = TaskKind::Segmentation;
        let hgnas = Hgnas::new(task, tiny_config(DeviceKind::JetsonTx2));
        let a = hgnas.run();
        assert!(a.best.score.is_finite());
        assert!(a.best.supernet_accuracy >= 0.0 && a.best.supernet_accuracy <= 1.0);
        assert!(a.best.latency_ms < a.constraint_ms);
        let b = hgnas.run();
        assert_outcomes_identical(&a, &b);
    }

    #[test]
    fn robustness_search_consumes_the_corrupted_split() {
        // The task-dispatched dataset: training stays clean (supernet
        // pre-training is unchanged) while the evaluation split carries the
        // corruption — and the search still completes on it.
        let mut task = TaskConfig::tiny(5);
        task.task_kind = TaskKind::Robustness;
        let hgnas = Hgnas::new(task.clone(), tiny_config(DeviceKind::JetsonTx2));
        let noisy = hgnas.dataset();
        task.task_kind = TaskKind::Classification;
        let clean = Hgnas::new(task, tiny_config(DeviceKind::JetsonTx2)).dataset();
        assert_eq!(noisy.train, clean.train, "train split must stay clean");
        assert_ne!(noisy.test, clean.test, "test split must be corrupted");
        let outcome = hgnas.run();
        assert!(outcome.best.score.is_finite());
        assert!(outcome.best.latency_ms < outcome.constraint_ms);
    }

    #[test]
    fn energy_and_memory_terms_flow_into_scoring() {
        let task = TaskConfig::tiny(5);
        let mut cfg = tiny_config(DeviceKind::JetsonTx2);
        cfg.gamma = 0.3;
        cfg.delta = 0.2;
        let out = Hgnas::new(task, cfg).run_with(RunOptions::default());
        let outcome = out.outcome.expect("search completes");
        assert!(outcome.best.score.is_finite());
        // Every scored candidate carries the execution metrics the
        // objective consumed.
        let cp = out.checkpoint.expect("final checkpoint");
        let cp = cp.as_multi_stage().expect("multi-stage checkpoint");
        assert!(!cp.cache.is_empty());
        for (_, c) in &cp.cache {
            let mj = c.energy_mj.expect("energy computed for every candidate");
            let mem = c.peak_mem_mb.expect("peak memory computed");
            assert!(mj > 0.0 && mem > 0.0);
        }
    }

    #[test]
    fn classification_candidates_skip_execution_metrics() {
        let out = Hgnas::new(TaskConfig::tiny(5), tiny_config(DeviceKind::JetsonTx2))
            .run_with(RunOptions::default());
        let cp = out.checkpoint.expect("final checkpoint");
        let cp = cp.as_multi_stage().expect("multi-stage checkpoint");
        assert!(cp
            .cache
            .iter()
            .all(|(_, c)| c.energy_mj.is_none() && c.peak_mem_mb.is_none()));
    }

    #[test]
    fn identity_persona_is_bit_identical_to_its_base_kind() {
        let task = TaskConfig::tiny(5);
        let base = tiny_config(DeviceKind::JetsonTx2);
        let persona = DevicePersona {
            name: "tx2-bench-rig".into(),
            profile: DeviceKind::JetsonTx2.profile(),
        };
        let cfg = base.clone().with_persona(persona);
        assert_eq!(cfg.device, DeviceKind::JetsonTx2);
        assert_eq!(cfg.device_label(), "tx2-bench-rig");
        let a = Hgnas::new(task.clone(), base).run();
        let b = Hgnas::new(task, cfg).run();
        assert_outcomes_identical(&a, &b);
    }

    #[test]
    fn slowed_persona_shifts_the_reference_latency() {
        let task = TaskConfig::tiny(5);
        let base = tiny_config(DeviceKind::JetsonTx2);
        // Tiny workloads are dispatch-overhead-dominated, so throttle both
        // the rates and the per-op overhead.
        let mut profile = DeviceKind::JetsonTx2.profile();
        for r in &mut profile.rates {
            r.gflops /= 2.0;
            r.gbps /= 2.0;
        }
        profile.overhead_us *= 2.0;
        let slow = base.clone().with_persona(DevicePersona {
            name: "tx2-throttled".into(),
            profile,
        });
        let fast_ref = Hgnas::new(task.clone(), base).reference_ms();
        let slow_ref = Hgnas::new(task, slow).reference_ms();
        assert!(
            slow_ref > 1.5 * fast_ref,
            "throttled persona reference {slow_ref} vs builtin {fast_ref}"
        );
    }

    #[test]
    #[should_panic(expected = "based on another device kind")]
    fn mismatched_persona_base_kind_is_rejected() {
        let mut cfg = tiny_config(DeviceKind::Rtx3080);
        cfg.persona = Some(DevicePersona {
            name: "pi-ish".into(),
            profile: DeviceKind::RaspberryPi3B.profile(),
        });
        Hgnas::new(TaskConfig::tiny(5), cfg).run();
    }

    #[test]
    fn genome_instantiates_to_displayed_architecture() {
        let outcome = tiny_search(DeviceKind::Rtx3080);
        let arch = &outcome.best.architecture;
        assert_eq!(arch.len(), 6);
        assert_eq!(arch.k, 8);
        // Display doesn't panic and mentions the classifier.
        assert!(arch.to_string().contains("Classifier"));
    }
}
