//! Batched, memoised, optionally parallel candidate evaluation.
//!
//! The EA hot path of the search is scoring a generation of candidates.
//! [`Evaluator`] turns that into a deterministic batch pipeline:
//!
//! 1. **Memoisation** — results are cached on the candidate encoding, so a
//!    duplicate candidate (common under mutation) is never re-lowered or
//!    re-scored, within a generation or across generations.
//! 2. **Parallel scoring** — cache misses are fanned out across scoped
//!    worker threads. Each candidate gets its own RNG stream derived from
//!    the evaluator seed and the candidate's *submission index*, so scores
//!    are bit-identical no matter how many workers run (including one).
//! 3. **Thread-budget handoff** — the evaluator owns a total thread budget
//!    and splits it between EA-level workers and kernel-level matmul
//!    threads (`hgnas_tensor::threads`), so the two levels of parallelism
//!    never oversubscribe the machine.
//! 4. **Sequential reduction** — per-candidate outputs are folded in
//!    submission order through a caller-supplied `reduce` closure, which is
//!    where inherently serial bookkeeping (search clock, best-so-far
//!    history) lives. Reduction order never depends on worker scheduling.
//! 5. **Warm-start imports** — a previous run's scored entries can be
//!    imported as a side cache ([`Evaluator::import_warm_cache`]). The
//!    first time this run submits an imported genome, the stored output is
//!    *promoted* into the live cache instead of being re-scored: the
//!    reduce fold still sees it as fresh (simulated search time is charged
//!    exactly as if it had been scored), but [`EvalStats::imported`] is
//!    bumped instead of [`EvalStats::misses`]. When imported entries come
//!    from a run with the same configuration fingerprint (or any run whose
//!    scorer never draws from its RNG stream, e.g. predictor-mode
//!    scoring), a warm-started search is bit-identical to a cold one.
//! 6. **Import validation** — donor entries are *not* trusted verbatim:
//!    a deterministic sample of promotions (the first
//!    [`WARM_VALIDATION_SAMPLE`], then every
//!    [`WARM_VALIDATION_PERIOD`]th) is re-scored on its own promotion
//!    stream and compared. A match promotes as usual (counted in
//!    [`EvalStats::validated`]); any drift condemns the whole import —
//!    the drifting entry is served as the freshly scored miss it is, the
//!    un-promoted remainder is discarded (counted in
//!    [`EvalStats::rejected`]), and the run continues cold. A genuinely
//!    mismatched donor (different RNG streams, e.g. a cross-seed
//!    measured-mode transfer) drifts on essentially every entry and is
//!    caught by the first sample; a donor whose drift is confined to
//!    entries the sample skips can still be served, so the guarantee is
//!    probabilistic — but every *validated* entry is bit-identical to
//!    scoring by construction, and same-fingerprint or
//!    stream-independent donors (the documented warm-start contract)
//!    always pass.

use hgnas_tensor::threads::with_kernel_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hash::Hash;

/// Scores one candidate. Implementations must be pure up to the supplied
/// RNG: the same `(genome, rng stream)` pair must produce the same output
/// regardless of which thread runs it or what ran before.
pub trait CandidateScorer<G>: Sync {
    /// Full per-candidate result (fitness plus whatever detail the caller
    /// needs for bookkeeping).
    type Output: Clone + Send;

    /// Scores `genome`; `rng` is this candidate's private stream.
    fn score(&self, genome: &G, rng: &mut StdRng) -> Self::Output;
}

/// Cache and scheduling counters of an [`Evaluator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Candidates answered from the memo cache (within- or cross-batch),
    /// i.e. genomes this run had already resolved once.
    pub hits: u64,
    /// Candidates actually scored (== number of lowerings/scorings).
    pub misses: u64,
    /// First-touch candidates served from an imported warm-start cache
    /// ([`Evaluator::import_warm_cache`]) instead of being scored. A cold
    /// run reports 0; every submission resolves to exactly one of `hits`,
    /// `misses` or `imported`.
    pub imported: u64,
    /// Warm-start promotions that were re-scored for validation (the
    /// first [`WARM_VALIDATION_SAMPLE`] of them) and matched the donor
    /// entry bit-for-bit. Always ≤ `imported`.
    pub validated: u64,
    /// Warm-start entries discarded after a validation drift: the
    /// drifting entry plus the whole un-promoted remainder of the import.
    /// Non-zero means the donor cache was condemned and the run fell back
    /// cold from that point on.
    pub rejected: u64,
    /// Batches evaluated.
    pub batches: u64,
    /// Total candidates submitted.
    pub submitted: u64,
}

/// How many leading warm-start promotions are re-scored against their own
/// promotion RNG stream before the rest of an import is trusted. Entries
/// from a same-fingerprint donor (or any stream-independent scorer, e.g.
/// predictor-mode scoring) reproduce exactly and pass; a mismatched donor
/// drifts, condemning the import and falling back cold.
pub const WARM_VALIDATION_SAMPLE: u64 = 2;

/// After the leading sample, every `WARM_VALIDATION_PERIOD`th promotion is
/// re-scored too, so drift that first appears deep inside a donor cache is
/// still caught (at ~1/16th of the scoring cost the import saves). The
/// schedule depends only on [`EvalStats::imported`], which rides in
/// checkpoints, so killed-and-resumed warm runs validate the exact same
/// promotions an uninterrupted one would.
pub const WARM_VALIDATION_PERIOD: u64 = 16;

/// Whether the promotion with `imported` predecessors gets re-scored.
fn validate_this_promotion(imported: u64) -> bool {
    imported < WARM_VALIDATION_SAMPLE || (imported + 1).is_multiple_of(WARM_VALIDATION_PERIOD)
}

/// How one submitted candidate resolves to a scored output.
enum Resolution {
    /// Served by the cross-batch cache: arena slot.
    Cached(usize),
    /// Resolves to an arena entry created this batch (a scoring job or a
    /// warm-cache promotion): index into the batch's new-entry list.
    /// `fresh` is true only for the genome's first occurrence this run;
    /// within-batch duplicates alias it with `fresh == false`.
    New { entry: usize, fresh: bool },
}

/// An arena entry created while resolving one batch, in first-touch
/// submission order — the same order a run without a warm cache would
/// append them in, so warm and cold runs build identical arenas.
enum NewEntry<G, O> {
    /// Promoted verbatim from the warm-start side cache.
    Promoted(G, O),
    /// Scored this batch: job index.
    Job(usize),
}

/// The batched candidate-evaluation engine. See the module docs.
pub struct Evaluator<G, S, R>
where
    G: Clone + Eq + Hash + Sync,
    S: CandidateScorer<G>,
    R: FnMut(&G, &S::Output, bool) -> f64,
{
    scorer: S,
    /// Sequential fold: `(genome, output, fresh) -> fitness`. `fresh` is
    /// `false` when the output came from the memo cache, so the caller can
    /// meter simulated search time for real work only.
    reduce: R,
    /// Total thread budget (EA workers × kernel threads).
    threads: usize,
    /// Base seed for per-candidate RNG streams.
    stream_seed: u64,
    /// Memo cache: candidate encoding -> arena slot.
    cache: HashMap<G, usize>,
    /// Scored outputs, append-only.
    arena: Vec<S::Output>,
    /// Warm-start side cache: imported entries not yet served this run, in
    /// import order (promotion takes the slot, leaving `None`).
    warm_entries: Vec<Option<(G, S::Output)>>,
    /// Genome -> `warm_entries` slot for the un-promoted imports.
    warm_index: HashMap<G, usize>,
    stats: EvalStats,
}

/// SplitMix64 finaliser: decorrelates per-candidate stream seeds.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<G, S, R> Evaluator<G, S, R>
where
    G: Clone + Eq + Hash + Sync,
    S: CandidateScorer<G>,
    S::Output: PartialEq,
    R: FnMut(&G, &S::Output, bool) -> f64,
{
    /// Creates an evaluator with a total thread budget of `threads`
    /// (clamped to ≥ 1). `stream_seed` roots every candidate's RNG stream.
    pub fn new(scorer: S, threads: usize, stream_seed: u64, reduce: R) -> Self {
        Evaluator {
            scorer,
            reduce,
            threads: threads.max(1),
            stream_seed,
            cache: HashMap::new(),
            arena: Vec::new(),
            warm_entries: Vec::new(),
            warm_index: HashMap::new(),
            stats: EvalStats::default(),
        }
    }

    /// Cache / scheduling counters so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The wrapped scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// Exports the memo cache in arena (first-scoring) order, paired with
    /// the stats counters. Together with [`Evaluator::import_state`] this
    /// checkpoints the evaluator: the stats travel along because
    /// [`EvalStats::submitted`] anchors per-candidate RNG stream ids, so a
    /// restored evaluator assigns future candidates the exact streams the
    /// interrupted one would have.
    pub fn export_state(&self) -> (EvalStats, Vec<(G, S::Output)>) {
        let mut by_slot: Vec<(&G, usize)> = self.cache.iter().map(|(g, &s)| (g, s)).collect();
        by_slot.sort_unstable_by_key(|&(_, slot)| slot);
        let entries = by_slot
            .into_iter()
            .map(|(g, slot)| (g.clone(), self.arena[slot].clone()))
            .collect();
        (self.stats, entries)
    }

    /// Restores a state captured by [`Evaluator::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if this evaluator has already scored anything, or if the
    /// imported state is internally inconsistent (duplicate genomes, or
    /// more cache entries than recorded misses).
    pub fn import_state(&mut self, stats: EvalStats, entries: Vec<(G, S::Output)>) {
        assert!(
            self.stats.submitted == 0 && self.arena.is_empty(),
            "import_state requires a fresh evaluator"
        );
        assert!(
            entries.len() as u64 <= stats.misses + stats.imported,
            "imported cache holds more entries than recorded misses + promotions"
        );
        for (g, out) in entries {
            let prev = self.cache.insert(g, self.arena.len());
            assert!(prev.is_none(), "imported cache has duplicate genomes");
            self.arena.push(out);
        }
        self.stats = stats;
    }

    /// Imports a previous run's scored entries as a *warm-start* side
    /// cache. Entries are served verbatim on their genome's first
    /// submission this run (see the module docs, point 5); genomes already
    /// known — in the live cache or imported earlier — are skipped, so the
    /// call is idempotent and composes with [`Evaluator::import_state`].
    /// Once a validation drift has condemned an import
    /// ([`EvalStats::rejected`] > 0) further imports are ignored: the run
    /// committed to finishing cold, and a resumed run restoring that state
    /// stays cold too.
    pub fn import_warm_cache(&mut self, entries: Vec<(G, S::Output)>) {
        if self.stats.rejected > 0 {
            return;
        }
        for (g, out) in entries {
            if self.cache.contains_key(&g) || self.warm_index.contains_key(&g) {
                continue;
            }
            self.warm_index.insert(g.clone(), self.warm_entries.len());
            self.warm_entries.push(Some((g, out)));
        }
    }

    /// The warm-start entries not yet served this run, in import order —
    /// what a checkpoint persists so a resumed run keeps promoting (and
    /// counting) the exact imports the interrupted one would have.
    pub fn export_warm_cache(&self) -> Vec<(G, S::Output)> {
        self.warm_entries.iter().flatten().cloned().collect()
    }

    /// Scores a batch, returning each candidate's output in submission
    /// order. Results are bit-identical for any thread budget.
    pub fn evaluate_batch(&mut self, batch: &[G]) -> Vec<S::Output> {
        self.evaluate_batch_slots(batch)
            .into_iter()
            .map(|(slot, _)| self.arena[slot].clone())
            .collect()
    }

    /// Core pipeline: scores a batch and returns each candidate's arena
    /// slot plus freshness, in submission order, without cloning outputs.
    fn evaluate_batch_slots(&mut self, batch: &[G]) -> Vec<(usize, bool)> {
        // Stream ids are assigned by absolute submission index *before*
        // cache resolution, so neither cache state nor worker count can
        // shift a later candidate onto a different stream.
        let base = self.stats.submitted;
        self.stats.submitted += batch.len() as u64;
        self.stats.batches += 1;

        // Resolve against the cross-batch cache, promote warm-start
        // imports on first touch, and collapse within-batch duplicates
        // onto a single new entry.
        let mut jobs: Vec<(usize, u64)> = Vec::new(); // (batch idx, stream seed)
        let mut new_entries: Vec<NewEntry<G, S::Output>> = Vec::new();
        let mut first_in_batch: HashMap<&G, usize> = HashMap::new(); // genome -> new entry
        let mut resolutions: Vec<Resolution> = Vec::with_capacity(batch.len());
        for (i, g) in batch.iter().enumerate() {
            let r = if let Some(&slot) = self.cache.get(g) {
                self.stats.hits += 1;
                Resolution::Cached(slot)
            } else if let Some(&entry) = first_in_batch.get(g) {
                self.stats.hits += 1;
                Resolution::New {
                    entry,
                    fresh: false,
                }
            } else if let Some(w) = self.warm_index.remove(g) {
                // Promote an imported entry: served without scoring, but
                // it is this run's first touch of the genome, so the
                // reduce fold sees it as fresh (simulated search time is
                // charged exactly like a miss would charge it). The first
                // few promotions are validated by re-scoring on the
                // promotion's own stream — a same-fingerprint or
                // stream-independent donor reproduces exactly; drift
                // condemns the whole import and the run continues cold.
                let (genome, out) = self.warm_entries[w].take().expect("warm slot filled");
                let out = if validate_this_promotion(self.stats.imported) {
                    let mut rng = StdRng::seed_from_u64(mix(self.stream_seed, base + i as u64));
                    let scorer = &self.scorer;
                    let rescored =
                        with_kernel_threads(self.threads, || scorer.score(&genome, &mut rng));
                    if rescored == out {
                        self.stats.validated += 1;
                        self.stats.imported += 1;
                        out
                    } else {
                        // The drifting entry was re-scored anyway, so it
                        // is served as the miss it would have been; the
                        // rest of the import is discarded unserved.
                        let dropped: u64 = self.warm_entries.iter().flatten().count() as u64;
                        self.stats.rejected += 1 + dropped;
                        self.warm_entries.clear();
                        self.warm_index.clear();
                        self.stats.misses += 1;
                        rescored
                    }
                } else {
                    self.stats.imported += 1;
                    out
                };
                let entry = new_entries.len();
                new_entries.push(NewEntry::Promoted(genome, out));
                first_in_batch.insert(g, entry);
                Resolution::New { entry, fresh: true }
            } else {
                let job = jobs.len();
                jobs.push((i, mix(self.stream_seed, base + i as u64)));
                let entry = new_entries.len();
                new_entries.push(NewEntry::Job(job));
                first_in_batch.insert(g, entry);
                self.stats.misses += 1;
                Resolution::New { entry, fresh: true }
            };
            resolutions.push(r);
        }

        // Fan the jobs out. With one worker the whole budget goes to the
        // kernels; with W workers the budget is split W ways, the first
        // `threads % W` workers taking the remainder so the full budget
        // stays in use (kernel thread count never affects values). W is
        // derived from the chunk count actually produced, since rounding
        // the chunk size up can leave fewer chunks than `threads` workers.
        let mut outputs: Vec<Option<S::Output>> = (0..jobs.len()).map(|_| None).collect();
        let chunk = jobs.len().div_ceil(self.threads).max(1);
        let workers = jobs.len().div_ceil(chunk).max(1);
        let scorer = &self.scorer;
        if workers == 1 {
            with_kernel_threads(self.threads, || {
                for ((i, stream), out) in jobs.iter().zip(outputs.iter_mut()) {
                    let mut rng = StdRng::seed_from_u64(*stream);
                    *out = Some(scorer.score(&batch[*i], &mut rng));
                }
            });
        } else {
            let base_budget = self.threads / workers;
            let spare = self.threads % workers;
            crossbeam::scope(|s| {
                for (w, (job_chunk, out_chunk)) in jobs
                    .chunks(chunk)
                    .zip(outputs.chunks_mut(chunk))
                    .enumerate()
                {
                    let kernel_budget = (base_budget + usize::from(w < spare)).max(1);
                    s.spawn(move |_| {
                        // The budget is thread-local: set it inside the
                        // worker, not the coordinator.
                        with_kernel_threads(kernel_budget, || {
                            for ((i, stream), out) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                                let mut rng = StdRng::seed_from_u64(*stream);
                                *out = Some(scorer.score(&batch[*i], &mut rng));
                            }
                        });
                    });
                }
            })
            .expect("evaluator worker thread panicked");
        }

        // Commit new entries (scored jobs and warm promotions alike) to
        // the memo cache in first-touch submission order.
        let arena_base = self.arena.len();
        let mut outputs = outputs;
        for entry in new_entries {
            let (g, out) = match entry {
                NewEntry::Promoted(g, out) => (g, out),
                NewEntry::Job(j) => (
                    batch[jobs[j].0].clone(),
                    outputs[j]
                        .take()
                        .expect("every job slot is filled by its worker"),
                ),
            };
            self.cache.insert(g, self.arena.len());
            self.arena.push(out);
        }

        resolutions
            .into_iter()
            .map(|r| match r {
                Resolution::Cached(slot) => (slot, false),
                Resolution::New { entry, fresh } => (arena_base + entry, fresh),
            })
            .collect()
    }

    /// Scores a batch and folds each output through `reduce` in submission
    /// order, returning the fitness vector the EA consumes (this is also
    /// the [`crate::ea::GenerationEvaluator`] implementation). Outputs are
    /// read from the arena by reference — no per-candidate clones.
    pub fn evaluate_fitness(&mut self, batch: &[G]) -> Vec<f64> {
        let slots = self.evaluate_batch_slots(batch);
        let arena = &self.arena;
        let reduce = &mut self.reduce;
        slots
            .into_iter()
            .zip(batch)
            .map(|((slot, fresh), g)| reduce(g, &arena[slot], fresh))
            .collect()
    }
}

impl<G, S, R> crate::ea::GenerationEvaluator<G> for Evaluator<G, S, R>
where
    G: Clone + Eq + Hash + Sync,
    S: CandidateScorer<G>,
    S::Output: PartialEq,
    R: FnMut(&G, &S::Output, bool) -> f64,
{
    fn evaluate(&mut self, batch: &[G]) -> Vec<f64> {
        self.evaluate_fitness(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Scorer that counts invocations and returns a value derived from the
    /// genome and its RNG stream.
    struct CountingScorer {
        calls: AtomicU64,
    }

    impl CandidateScorer<u64> for CountingScorer {
        type Output = (u64, u64);

        fn score(&self, genome: &u64, rng: &mut StdRng) -> (u64, u64) {
            self.calls.fetch_add(1, Ordering::SeqCst);
            use rand::Rng;
            (*genome * 10, rng.gen::<u32>() as u64)
        }
    }

    fn run(threads: usize, batches: &[Vec<u64>]) -> (Vec<Vec<f64>>, EvalStats, u64) {
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut ev = Evaluator::new(scorer, threads, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        let fits = batches.iter().map(|b| ev.evaluate_fitness(b)).collect();
        let stats = ev.stats();
        let calls = ev.scorer.calls.load(Ordering::SeqCst);
        (fits, stats, calls)
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let batches = vec![vec![1, 2, 3, 4, 5, 6, 7, 8], vec![2, 9, 9, 10]];
        let (f1, s1, _) = run(1, &batches);
        let (f2, s2, _) = run(2, &batches);
        let (f8, s8, _) = run(8, &batches);
        assert_eq!(f1, f2);
        assert_eq!(f1, f8);
        assert_eq!(s1, s2);
        assert_eq!(s1, s8);
    }

    #[test]
    fn duplicates_are_scored_once() {
        let batches = vec![vec![5, 5, 5, 6], vec![5, 6, 7]];
        let (fits, stats, calls) = run(4, &batches);
        // 3 unique genomes -> 3 scorer calls, everything else cache hits.
        assert_eq!(calls, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.submitted, 7);
        // A cached candidate returns the identical output.
        assert_eq!(fits[0][0], fits[0][1]);
        assert_eq!(fits[0][0], fits[1][0]);
    }

    #[test]
    fn streams_follow_submission_index_not_cache_state() {
        // Genome 9 sits at submission indices 1 and 2 of the second batch
        // in run A, but its score must come from its first-miss stream in
        // both runs; genome 10's stream is fixed by its index regardless of
        // what preceded it.
        let a = run(3, &[vec![1, 2], vec![9, 9, 10]]).0;
        let b = run(3, &[vec![1, 2], vec![9, 7, 10]]).0;
        // Same submission index, same genome -> same fitness.
        assert_eq!(a[1][0], b[1][0]);
        assert_eq!(a[1][2], b[1][2]);
    }

    #[test]
    fn kernel_budget_distributes_whole_thread_budget() {
        use std::sync::Mutex;

        /// Records the kernel budget its worker thread was handed.
        struct BudgetProbe {
            seen: Mutex<Vec<usize>>,
        }

        impl CandidateScorer<u64> for BudgetProbe {
            type Output = f64;

            fn score(&self, genome: &u64, _rng: &mut StdRng) -> f64 {
                self.seen
                    .lock()
                    .unwrap()
                    .push(hgnas_tensor::threads::kernel_threads());
                *genome as f64
            }
        }

        // 8-thread budget over 3 jobs -> 3 workers with budgets 3/3/2:
        // the remainder is spread, not dropped.
        let probe = BudgetProbe {
            seen: Mutex::new(Vec::new()),
        };
        let mut ev = Evaluator::new(probe, 8, 0, |_: &u64, f: &f64, _| *f);
        ev.evaluate_batch(&[1, 2, 3]);
        let mut budgets = ev.scorer().seen.lock().unwrap().clone();
        budgets.sort_unstable();
        assert_eq!(budgets, vec![2, 3, 3]);

        // One job -> one worker carrying the whole budget.
        let probe = BudgetProbe {
            seen: Mutex::new(Vec::new()),
        };
        let mut ev = Evaluator::new(probe, 8, 0, |_: &u64, f: &f64, _| *f);
        ev.evaluate_batch(&[9]);
        assert_eq!(*ev.scorer().seen.lock().unwrap(), vec![8]);

        // 13 jobs over an 8-thread budget: chunking yields 7 workers (one
        // per 2-job chunk, last chunk short), so the first worker takes
        // the spare thread — the budget must not shrink to 7.
        let probe = BudgetProbe {
            seen: Mutex::new(Vec::new()),
        };
        let mut ev = Evaluator::new(probe, 8, 0, |_: &u64, f: &f64, _| *f);
        let batch: Vec<u64> = (0..13).collect();
        ev.evaluate_batch(&batch);
        let mut budgets = ev.scorer().seen.lock().unwrap().clone();
        budgets.sort_unstable();
        // Worker budgets: one worker at 2 (two jobs -> two entries), six
        // workers at 1 (eleven entries across their jobs).
        assert_eq!(budgets, [vec![1; 11], vec![2; 2]].concat());
    }

    #[test]
    fn export_import_resumes_streams_and_cache() {
        // Reference: one evaluator sees both batches.
        let batches = vec![vec![1u64, 2, 3, 2], vec![3, 4, 5, 1]];
        let (full, full_stats, _) = run(2, &batches);

        // Checkpointed: export after batch 1, import into a fresh
        // evaluator, submit batch 2.
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut a = Evaluator::new(scorer, 2, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        a.evaluate_fitness(&batches[0]);
        let (stats, entries) = a.export_state();
        drop(a);

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut b = Evaluator::new(scorer, 2, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        b.import_state(stats, entries);
        let resumed = b.evaluate_fitness(&batches[1]);
        assert_eq!(resumed, full[1]);
        // Cached genomes (3, 1) were not re-scored after import.
        assert_eq!(b.scorer().calls.load(Ordering::SeqCst), 2);
        let s = b.stats();
        assert_eq!(s.submitted, full_stats.submitted);
        assert_eq!(s.hits, full_stats.hits);
        assert_eq!(s.misses, full_stats.misses);
    }

    #[test]
    fn warm_cache_serves_first_touch_without_scoring() {
        // Reference cold run over two batches.
        let batches = vec![vec![1u64, 2, 2, 3], vec![3, 4, 1]];
        let (cold_fits, cold_stats, cold_calls) = run(2, &batches);
        assert_eq!(cold_calls, 4);

        // A donor run scores genomes 1, 2, 4 (same stream seed, so its
        // outputs match what the cold run computed for them at their own
        // submission indices — here genome values are stream-dependent,
        // so donate from an identical run to model the same-fingerprint
        // contract).
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut donor = Evaluator::new(scorer, 2, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        donor.evaluate_fitness(&batches[0]);
        donor.evaluate_fitness(&batches[1]);
        let (_, donated) = donor.export_state();
        drop(donor);

        // Warm run: identical submissions, zero scorer calls.
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut warm = Evaluator::new(scorer, 2, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        warm.import_warm_cache(donated);
        let warm_fits: Vec<Vec<f64>> = batches.iter().map(|b| warm.evaluate_fitness(b)).collect();
        assert_eq!(warm_fits, cold_fits);
        // The only scorer calls are the validation re-scores of the first
        // promotions — which matched, so nothing fell back to a miss.
        assert_eq!(
            warm.scorer().calls.load(Ordering::SeqCst),
            WARM_VALIDATION_SAMPLE
        );
        let s = warm.stats();
        assert_eq!(s.imported, 4, "one promotion per unique genome");
        assert_eq!(s.validated, WARM_VALIDATION_SAMPLE);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, cold_stats.hits, "hit counting is unchanged");
        assert_eq!(s.submitted, cold_stats.submitted);
        assert_eq!(
            s.misses + s.imported,
            cold_stats.misses + cold_stats.imported
        );

        // The arenas match entry-for-entry in first-touch order.
        let (_, warm_entries) = warm.export_state();
        assert_eq!(warm_entries.len(), 4);
        assert!(warm.export_warm_cache().is_empty(), "all imports promoted");
    }

    #[test]
    fn partial_warm_cache_mixes_promotions_and_scoring() {
        let batches = vec![vec![7u64, 8, 9]];
        let (cold_fits, ..) = run(1, &batches);

        // Donate only genome 8's entry (scored at its cold submission
        // index so the value matches).
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut donor = Evaluator::new(scorer, 1, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        donor.evaluate_fitness(&batches[0]);
        let (_, entries) = donor.export_state();
        let donated: Vec<_> = entries.into_iter().filter(|(g, _)| *g == 8).collect();
        drop(donor);

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut warm = Evaluator::new(scorer, 1, 42, |_, out: &(u64, u64), _| {
            (out.0 + out.1 % 7) as f64
        });
        warm.import_warm_cache(donated);
        let fits = warm.evaluate_fitness(&batches[0]);
        assert_eq!(fits, cold_fits[0]);
        // Two genuine misses plus one validation re-score of the promotion.
        assert_eq!(warm.scorer().calls.load(Ordering::SeqCst), 3);
        let s = warm.stats();
        assert_eq!((s.misses, s.imported, s.hits), (2, 1, 0));
        assert_eq!((s.validated, s.rejected), (1, 0));
    }

    #[test]
    fn warm_import_is_idempotent_and_skips_known_genomes() {
        // A genuine donor (same stream seed, same submission sequence) so
        // the validated promotion reproduces exactly.
        let reduce = |_: &u64, out: &(u64, u64), _: bool| out.0 as f64;
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut donor = Evaluator::new(scorer, 1, 9, reduce);
        donor.evaluate_fitness(&[5]);
        donor.evaluate_fitness(&[5, 6]);
        let (_, donated) = donor.export_state();
        drop(donor);

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut ev = Evaluator::new(scorer, 1, 9, reduce);
        ev.evaluate_fitness(&[5]);
        // Genome 5 is already live; genome 6 imported twice collapses to
        // one pending warm entry.
        ev.import_warm_cache(donated.clone());
        ev.import_warm_cache(donated);
        assert_eq!(ev.export_warm_cache().len(), 1);
        ev.evaluate_fitness(&[5, 6]);
        let s = ev.stats();
        assert_eq!((s.misses, s.imported, s.hits), (1, 1, 1));
        assert_eq!((s.validated, s.rejected), (1, 0));
    }

    #[test]
    fn export_import_round_trips_warm_remainder() {
        // A warm evaluator interrupted mid-run: the un-promoted imports
        // travel via export_warm_cache and keep counting as `imported`
        // (and `validated`) after the resume. The donor runs the same
        // submission sequence so validation reproduces its entries.
        let reduce = |_: &u64, out: &(u64, u64), _: bool| (out.0 + out.1 % 7) as f64;
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut donor = Evaluator::new(scorer, 1, 42, reduce);
        donor.evaluate_fitness(&[1, 3]);
        donor.evaluate_fitness(&[2, 1]);
        let (_, entries) = donor.export_state();
        let donated: Vec<_> = entries.into_iter().filter(|(g, _)| *g != 3).collect();
        drop(donor);

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut a = Evaluator::new(scorer, 1, 42, reduce);
        a.import_warm_cache(donated);
        a.evaluate_fitness(&[1, 3]); // promotes 1 (validated), scores 3
        let (stats, entries) = a.export_state();
        assert_eq!(stats.validated, 1);
        let warm_rest = a.export_warm_cache();
        assert_eq!(warm_rest.len(), 1, "genome 2 still pending");
        drop(a);

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut b = Evaluator::new(scorer, 1, 42, reduce);
        b.import_state(stats, entries);
        b.import_warm_cache(warm_rest);
        b.evaluate_fitness(&[2, 1]); // promotes 2 (validated), hits 1
        let s = b.stats();
        assert_eq!((s.misses, s.imported, s.hits), (1, 2, 1));
        assert_eq!((s.validated, s.rejected), (2, 0));
        // The resumed evaluator's only scorer call is the validation
        // re-score of genome 2's promotion.
        assert_eq!(b.scorer().calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drifting_import_is_rejected_and_falls_back_cold() {
        let reduce = |_: &u64, out: &(u64, u64), _: bool| (out.0 + out.1 % 7) as f64;
        let batches = vec![vec![1u64, 2], vec![3, 1]];
        let (cold_fits, cold_stats, _) = run(2, &batches);

        // A genuine donor, with one entry's output tampered (a cross-seed
        // or measured-mode transfer would drift the same way).
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut donor = Evaluator::new(scorer, 2, 42, reduce);
        for b in &batches {
            donor.evaluate_fitness(b);
        }
        let (_, mut donated) = donor.export_state();
        drop(donor);
        donated[0].1 .1 ^= 1; // poison the first entry's stream-dependent half

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut warm = Evaluator::new(scorer, 2, 42, reduce);
        warm.import_warm_cache(donated.clone());
        let warm_fits: Vec<Vec<f64>> = batches.iter().map(|b| warm.evaluate_fitness(b)).collect();
        // Results are bit-identical to cold anyway: the drifting entry was
        // served as its freshly scored self and the rest scored normally.
        assert_eq!(warm_fits, cold_fits);
        let s = warm.stats();
        assert_eq!(s.imported, 0, "no poisoned entry was served verbatim");
        assert_eq!(s.rejected, donated.len() as u64, "whole import condemned");
        assert_eq!(s.misses, cold_stats.misses);
        assert_eq!(s.hits, cold_stats.hits);
        assert!(warm.export_warm_cache().is_empty());

        // Post-rejection imports are ignored: the run committed to cold.
        warm.import_warm_cache(donated);
        assert!(warm.export_warm_cache().is_empty());
    }

    #[test]
    fn periodic_validation_catches_drift_deep_in_the_import() {
        // 20 single-genome batches: promotions land at imported counts
        // 0..19, so the periodic re-score fires at count 15 (the 16th
        // promotion). Poison exactly that entry: the leading sample
        // passes, the periodic check catches the drift, and the remainder
        // is discarded.
        let reduce = |_: &u64, out: &(u64, u64), _: bool| (out.0 + out.1 % 7) as f64;
        let batches: Vec<Vec<u64>> = (0..20u64).map(|g| vec![g]).collect();
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut donor = Evaluator::new(scorer, 1, 7, reduce);
        let cold_fits: Vec<Vec<f64>> = batches.iter().map(|b| donor.evaluate_fitness(b)).collect();
        let (_, mut donated) = donor.export_state();
        drop(donor);
        donated[15].1 .1 ^= 1;

        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut warm = Evaluator::new(scorer, 1, 7, reduce);
        warm.import_warm_cache(donated);
        let warm_fits: Vec<Vec<f64>> = batches.iter().map(|b| warm.evaluate_fitness(b)).collect();
        assert_eq!(warm_fits, cold_fits, "results stayed bit-identical");
        let s = warm.stats();
        assert_eq!(s.imported, 15, "promotions up to the drift were served");
        assert_eq!(s.validated, WARM_VALIDATION_SAMPLE, "leading sample passed");
        assert_eq!(s.rejected, 5, "the drifting entry and the remainder");
        assert_eq!(s.misses, 5);
    }

    #[test]
    #[should_panic(expected = "fresh evaluator")]
    fn import_into_used_evaluator_rejected() {
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut ev = Evaluator::new(scorer, 1, 0, |_, out: &(u64, u64), _| out.0 as f64);
        ev.evaluate_fitness(&[1]);
        let (stats, entries) = ev.export_state();
        ev.import_state(stats, entries);
    }

    #[test]
    fn reduce_runs_in_submission_order() {
        let scorer = CountingScorer {
            calls: AtomicU64::new(0),
        };
        let mut order = Vec::new();
        let mut ev = Evaluator::new(scorer, 8, 1, |g: &u64, _: &(u64, u64), fresh| {
            order.push((*g, fresh));
            0.0
        });
        ev.evaluate_fitness(&[3, 1, 3, 2]);
        drop(ev);
        assert_eq!(order, vec![(3, true), (1, true), (3, false), (2, true)]);
    }
}
