//! The multi-objective function, paper Eq. (1)–(3).

/// Scores a candidate from its validation accuracy and target-device
/// latency:
///
/// ```text
/// F(C) = 0                        if lat ≥ C
///      = α·acc − β·(lat / ref)    if lat < C
/// ```
///
/// Latency is normalised by a reference (typically DGCNN's latency on the
/// same device) so that the α:β sweep of Fig. 7 is device-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Accuracy weight (paper's α).
    pub alpha: f64,
    /// Latency weight (paper's β).
    pub beta: f64,
    /// Hard latency constraint `C` in ms; candidates at or above score 0.
    pub constraint_ms: f64,
    /// Latency normaliser in ms (DGCNN on the target device).
    pub reference_ms: f64,
    /// Optional hard model-size constraint in MB (the paper's "hardware
    /// constraints (i.e. inference latency, model size, etc.)").
    pub max_size_mb: Option<f64>,
}

impl Objective {
    /// Creates an objective.
    ///
    /// # Panics
    ///
    /// Panics if `reference_ms` or `constraint_ms` is not positive.
    pub fn new(alpha: f64, beta: f64, constraint_ms: f64, reference_ms: f64) -> Self {
        assert!(
            constraint_ms > 0.0 && reference_ms > 0.0,
            "bad objective bounds"
        );
        Objective {
            alpha,
            beta,
            constraint_ms,
            reference_ms,
            max_size_mb: None,
        }
    }

    /// Returns a copy with a hard model-size constraint.
    pub fn with_max_size_mb(mut self, mb: f64) -> Self {
        assert!(mb > 0.0, "size constraint must be positive");
        self.max_size_mb = Some(mb);
        self
    }

    /// Eq. (3): the score of a candidate.
    pub fn score(&self, accuracy: f64, latency_ms: f64) -> f64 {
        if latency_ms >= self.constraint_ms {
            0.0
        } else {
            self.alpha * accuracy - self.beta * (latency_ms / self.reference_ms)
        }
    }

    /// Eq. (3) with the size gate applied as well: candidates exceeding the
    /// size budget score 0, mirroring the latency gate.
    pub fn score_sized(&self, accuracy: f64, latency_ms: f64, size_mb: f64) -> f64 {
        if let Some(max) = self.max_size_mb {
            if size_mb >= max {
                return 0.0;
            }
        }
        self.score(accuracy, latency_ms)
    }

    /// Returns a copy with a different α:β ratio, keeping α + β fixed —
    /// the Fig. 7 sweep knob.
    pub fn with_ratio(&self, alpha_over_beta: f64) -> Self {
        let total = self.alpha + self.beta;
        let beta = total / (1.0 + alpha_over_beta);
        Objective {
            alpha: total - beta,
            beta,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_gates_score_to_zero() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert_eq!(o.score(0.99, 100.0), 0.0);
        assert_eq!(o.score(0.99, 150.0), 0.0);
        assert!(o.score(0.99, 40.0) > 0.0);
    }

    #[test]
    fn faster_is_better_at_equal_accuracy() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert!(o.score(0.9, 10.0) > o.score(0.9, 40.0));
    }

    #[test]
    fn ratio_sweep_shifts_preference() {
        let o = Objective::new(1.0, 1.0, 1000.0, 100.0);
        let acc_heavy = o.with_ratio(10.0);
        let lat_heavy = o.with_ratio(0.1);
        // Accurate-but-slow candidate vs fast-but-sloppy candidate.
        let (slow_acc, fast_sloppy) = ((0.95, 90.0), (0.80, 10.0));
        assert!(
            acc_heavy.score(slow_acc.0, slow_acc.1) > acc_heavy.score(fast_sloppy.0, fast_sloppy.1)
        );
        assert!(
            lat_heavy.score(fast_sloppy.0, fast_sloppy.1) > lat_heavy.score(slow_acc.0, slow_acc.1)
        );
    }

    #[test]
    fn size_gate_mirrors_latency_gate() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0).with_max_size_mb(2.0);
        assert!(o.score_sized(0.9, 10.0, 1.0) > 0.0);
        assert_eq!(o.score_sized(0.9, 10.0, 2.5), 0.0);
        // Without a size constraint the sized score equals the plain one.
        let free = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert_eq!(free.score_sized(0.9, 10.0, 99.0), free.score(0.9, 10.0));
    }

    #[test]
    fn ratio_preserves_total_weight() {
        let o = Objective::new(1.5, 0.5, 10.0, 10.0);
        let r = o.with_ratio(3.0);
        assert!((r.alpha + r.beta - 2.0).abs() < 1e-12);
        assert!((r.alpha / r.beta - 3.0).abs() < 1e-9);
    }
}
