//! The multi-objective function, paper Eq. (1)–(3), generalised to a
//! composable multi-metric form.

/// Everything known about a candidate when it is scored. Latency and
/// accuracy are always available; the remaining axes are `Option`s because
/// not every scoring site computes them — an absent metric passes its gate
/// and contributes nothing, so objectives that never reference an axis are
/// bit-identical to the original scalar α·acc − β·lat form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CandidateMetrics {
    /// One-shot validation accuracy, fraction.
    pub accuracy: f64,
    /// Latency on the target device, ms (predicted or measured).
    pub latency_ms: f64,
    /// Model size, MB.
    pub size_mb: Option<f64>,
    /// Inference energy on the target device, mJ (analytical:
    /// `board power × latency` from the roofline model).
    pub energy_mj: Option<f64>,
    /// Peak resident memory on the target device, MB.
    pub peak_mem_mb: Option<f64>,
}

/// Scores a candidate from its metrics:
///
/// ```text
/// F(C) = 0                                  if any hard gate fails
///      = α·acc − β·(lat / lat_ref)
///            − γ·(energy / energy_ref)      (γ ≠ 0 only)
///            − δ·(peak_mem / mem_ref)       (δ ≠ 0 only)
/// ```
///
/// Hard gates: `lat < constraint_ms`, `size < max_size_mb`,
/// `energy < max_energy_mj`, `peak_mem < max_peak_mem_mb` — each applied
/// only when the bound is set *and* the metric was supplied
/// ([`Objective::evaluate`] is the single scoring path; the legacy
/// [`Objective::score`]/[`Objective::score_sized`] entry points delegate to
/// it with the axes they know about).
///
/// Every soft term is normalised by a same-device reference (DGCNN latency
/// / energy / memory), so the α:β:γ:δ weights stay device-independent —
/// the Fig. 7 sweep property, extended to the new axes. The γ/δ terms are
/// arithmetically skipped when their weight is exactly 0, which keeps
/// latency-accuracy-only objectives bit-identical to the pre-multi-metric
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Accuracy weight (paper's α).
    pub alpha: f64,
    /// Latency weight (paper's β).
    pub beta: f64,
    /// Hard latency constraint `C` in ms; candidates at or above score 0.
    pub constraint_ms: f64,
    /// Latency normaliser in ms (DGCNN on the target device).
    pub reference_ms: f64,
    /// Optional hard model-size constraint in MB (the paper's "hardware
    /// constraints (i.e. inference latency, model size, etc.)").
    pub max_size_mb: Option<f64>,
    /// Energy weight γ; 0 disables the term entirely.
    pub gamma: f64,
    /// Energy normaliser in mJ (DGCNN inference energy on the target
    /// device). Only read when `gamma != 0`.
    pub reference_mj: f64,
    /// Optional hard energy constraint in mJ, gated like the size bound.
    pub max_energy_mj: Option<f64>,
    /// Peak-memory weight δ; 0 disables the term entirely.
    pub delta: f64,
    /// Peak-memory normaliser in MB (DGCNN peak memory on the target
    /// device). Only read when `delta != 0`.
    pub reference_mem_mb: f64,
    /// Optional hard peak-memory constraint in MB.
    pub max_peak_mem_mb: Option<f64>,
}

impl Objective {
    /// Creates a latency/accuracy objective (γ = δ = 0, no optional gates).
    ///
    /// # Panics
    ///
    /// Panics if `reference_ms` or `constraint_ms` is not positive.
    pub fn new(alpha: f64, beta: f64, constraint_ms: f64, reference_ms: f64) -> Self {
        assert!(
            constraint_ms > 0.0 && reference_ms > 0.0,
            "bad objective bounds"
        );
        Objective {
            alpha,
            beta,
            constraint_ms,
            reference_ms,
            max_size_mb: None,
            gamma: 0.0,
            reference_mj: 1.0,
            max_energy_mj: None,
            delta: 0.0,
            reference_mem_mb: 1.0,
            max_peak_mem_mb: None,
        }
    }

    /// Returns a copy with a hard model-size constraint.
    pub fn with_max_size_mb(mut self, mb: f64) -> Self {
        assert!(mb > 0.0, "size constraint must be positive");
        self.max_size_mb = Some(mb);
        self
    }

    /// Returns a copy carrying an energy term: weight `gamma`, normalised
    /// by `reference_mj`.
    ///
    /// # Panics
    ///
    /// Panics if `reference_mj` is not positive.
    pub fn with_energy(mut self, gamma: f64, reference_mj: f64) -> Self {
        assert!(reference_mj > 0.0, "energy reference must be positive");
        self.gamma = gamma;
        self.reference_mj = reference_mj;
        self
    }

    /// Returns a copy with a hard inference-energy constraint.
    pub fn with_max_energy_mj(mut self, mj: f64) -> Self {
        assert!(mj > 0.0, "energy constraint must be positive");
        self.max_energy_mj = Some(mj);
        self
    }

    /// Returns a copy carrying a peak-memory term: weight `delta`,
    /// normalised by `reference_mem_mb`.
    ///
    /// # Panics
    ///
    /// Panics if `reference_mem_mb` is not positive.
    pub fn with_peak_mem(mut self, delta: f64, reference_mem_mb: f64) -> Self {
        assert!(reference_mem_mb > 0.0, "memory reference must be positive");
        self.delta = delta;
        self.reference_mem_mb = reference_mem_mb;
        self
    }

    /// Returns a copy with a hard peak-memory constraint.
    pub fn with_max_peak_mem_mb(mut self, mb: f64) -> Self {
        assert!(mb > 0.0, "memory constraint must be positive");
        self.max_peak_mem_mb = Some(mb);
        self
    }

    /// Whether scoring needs the device-execution axes (energy or peak
    /// memory) at all — what tells a scorer it must run the candidate
    /// through `DeviceProfile::execute` before calling
    /// [`Objective::evaluate`]. False for every latency/accuracy(/size)
    /// objective, which is what keeps those paths' work (and bits)
    /// unchanged.
    pub fn needs_execution_metrics(&self) -> bool {
        self.gamma != 0.0
            || self.delta != 0.0
            || self.max_energy_mj.is_some()
            || self.max_peak_mem_mb.is_some()
    }

    /// The hard gates alone: whether the candidate is admissible. Scorers
    /// call this *before* paying for accuracy validation — every gate reads
    /// only cheap device-side metrics. A bound whose metric was not
    /// supplied passes (the caller opted out of that axis).
    pub fn admits(&self, m: &CandidateMetrics) -> bool {
        let within = |bound: Option<f64>, metric: Option<f64>| match (bound, metric) {
            (Some(b), Some(v)) => v < b,
            _ => true,
        };
        m.latency_ms < self.constraint_ms
            && within(self.max_size_mb, m.size_mb)
            && within(self.max_energy_mj, m.energy_mj)
            && within(self.max_peak_mem_mb, m.peak_mem_mb)
    }

    /// The single scoring path: Eq. (3) extended with the energy and
    /// peak-memory terms, gated to a hard 0 by [`Objective::admits`].
    pub fn evaluate(&self, m: &CandidateMetrics) -> f64 {
        if !self.admits(m) {
            return 0.0;
        }
        let mut s = self.alpha * m.accuracy - self.beta * (m.latency_ms / self.reference_ms);
        if self.gamma != 0.0 {
            s -= self.gamma * (m.energy_mj.unwrap_or(0.0) / self.reference_mj);
        }
        if self.delta != 0.0 {
            s -= self.delta * (m.peak_mem_mb.unwrap_or(0.0) / self.reference_mem_mb);
        }
        s
    }

    /// Eq. (3) over (accuracy, latency) only — [`Objective::evaluate`]
    /// with every optional axis absent.
    pub fn score(&self, accuracy: f64, latency_ms: f64) -> f64 {
        self.evaluate(&CandidateMetrics {
            accuracy,
            latency_ms,
            ..CandidateMetrics::default()
        })
    }

    /// Eq. (3) with the size gate applied as well — [`Objective::evaluate`]
    /// with the size axis supplied.
    pub fn score_sized(&self, accuracy: f64, latency_ms: f64, size_mb: f64) -> f64 {
        self.evaluate(&CandidateMetrics {
            accuracy,
            latency_ms,
            size_mb: Some(size_mb),
            ..CandidateMetrics::default()
        })
    }

    /// Returns a copy with a different α:β ratio, keeping α + β fixed —
    /// the Fig. 7 sweep knob.
    pub fn with_ratio(&self, alpha_over_beta: f64) -> Self {
        let total = self.alpha + self.beta;
        let beta = total / (1.0 + alpha_over_beta);
        Objective {
            alpha: total - beta,
            beta,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_gates_score_to_zero() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert_eq!(o.score(0.99, 100.0), 0.0);
        assert_eq!(o.score(0.99, 150.0), 0.0);
        assert!(o.score(0.99, 40.0) > 0.0);
    }

    #[test]
    fn faster_is_better_at_equal_accuracy() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert!(o.score(0.9, 10.0) > o.score(0.9, 40.0));
    }

    #[test]
    fn ratio_sweep_shifts_preference() {
        let o = Objective::new(1.0, 1.0, 1000.0, 100.0);
        let acc_heavy = o.with_ratio(10.0);
        let lat_heavy = o.with_ratio(0.1);
        // Accurate-but-slow candidate vs fast-but-sloppy candidate.
        let (slow_acc, fast_sloppy) = ((0.95, 90.0), (0.80, 10.0));
        assert!(
            acc_heavy.score(slow_acc.0, slow_acc.1) > acc_heavy.score(fast_sloppy.0, fast_sloppy.1)
        );
        assert!(
            lat_heavy.score(fast_sloppy.0, fast_sloppy.1) > lat_heavy.score(slow_acc.0, slow_acc.1)
        );
    }

    #[test]
    fn size_gate_mirrors_latency_gate() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0).with_max_size_mb(2.0);
        assert!(o.score_sized(0.9, 10.0, 1.0) > 0.0);
        assert_eq!(o.score_sized(0.9, 10.0, 2.5), 0.0);
        // Without a size constraint the sized score equals the plain one.
        let free = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert_eq!(free.score_sized(0.9, 10.0, 99.0), free.score(0.9, 10.0));
    }

    #[test]
    fn ratio_preserves_total_weight() {
        let o = Objective::new(1.5, 0.5, 10.0, 10.0);
        let r = o.with_ratio(3.0);
        assert!((r.alpha + r.beta - 2.0).abs() < 1e-12);
        assert!((r.alpha / r.beta - 3.0).abs() < 1e-9);
    }

    /// Every gate's boundary is exclusive: a metric exactly at its bound
    /// scores 0, epsilon below passes — the same convention for latency,
    /// size, energy and memory.
    #[test]
    fn all_gates_are_exclusive_at_the_boundary() {
        let o = Objective::new(1.0, 0.0, 100.0, 50.0)
            .with_max_size_mb(2.0)
            .with_max_energy_mj(500.0)
            .with_max_peak_mem_mb(750.0);
        let good = CandidateMetrics {
            accuracy: 0.9,
            latency_ms: 99.999,
            size_mb: Some(1.999),
            energy_mj: Some(499.9),
            peak_mem_mb: Some(749.9),
        };
        assert!(o.evaluate(&good) > 0.0);
        for bad in [
            CandidateMetrics {
                latency_ms: 100.0,
                ..good
            },
            CandidateMetrics {
                size_mb: Some(2.0),
                ..good
            },
            CandidateMetrics {
                energy_mj: Some(500.0),
                ..good
            },
            CandidateMetrics {
                peak_mem_mb: Some(750.0),
                ..good
            },
        ] {
            assert_eq!(o.evaluate(&bad), 0.0, "{bad:?} should be gated");
        }
    }

    /// A bound whose metric was not supplied does not gate: callers that
    /// opt out of an axis keep the legacy behaviour ([`Objective::score`]
    /// never gated on size either).
    #[test]
    fn absent_metrics_pass_their_gates() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0)
            .with_max_size_mb(0.001)
            .with_max_energy_mj(0.001)
            .with_max_peak_mem_mb(0.001);
        assert!(o.score(0.9, 10.0) > 0.0);
    }

    #[test]
    fn energy_and_memory_terms_subtract_normalised() {
        let base = Objective::new(1.0, 0.0, 100.0, 50.0);
        let o = base.with_energy(0.5, 200.0).with_peak_mem(0.25, 400.0);
        let m = CandidateMetrics {
            accuracy: 1.0,
            latency_ms: 10.0,
            size_mb: None,
            energy_mj: Some(100.0),
            peak_mem_mb: Some(200.0),
        };
        // 1.0 − 0.5·(100/200) − 0.25·(200/400) = 1.0 − 0.25 − 0.125
        assert!((o.evaluate(&m) - 0.625).abs() < 1e-12);
        // Zero-weight objectives do the exact legacy arithmetic.
        assert_eq!(base.evaluate(&m).to_bits(), base.score(1.0, 10.0).to_bits());
    }

    #[test]
    fn needs_execution_metrics_tracks_the_new_axes() {
        let o = Objective::new(1.0, 0.5, 100.0, 50.0);
        assert!(!o.needs_execution_metrics());
        assert!(!o.with_max_size_mb(1.0).needs_execution_metrics());
        assert!(o.with_energy(0.1, 1.0).needs_execution_metrics());
        assert!(o.with_peak_mem(0.1, 1.0).needs_execution_metrics());
        assert!(o.with_max_energy_mj(1.0).needs_execution_metrics());
        assert!(o.with_max_peak_mem_mb(1.0).needs_execution_metrics());
    }
}
