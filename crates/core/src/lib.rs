//! HGNAS — the hardware-aware graph neural architecture search framework
//! (the paper's primary contribution, Sec. III).
//!
//! Given a task (point-cloud classification), a target edge device, and
//! hardware constraints, [`Hgnas`] explores the fine-grained operation
//! design space of `hgnas-ops` and returns architectures that co-optimise
//! task accuracy and on-device latency:
//!
//! 1. **Design-space generation** ([`space`]): function space × operation
//!    space, hierarchically decoupled (Tab. I, Sec. III-B).
//! 2. **Multi-stage hierarchical search** ([`search`], Alg. 1): Stage 1
//!    evolves a pair of half-supernet [`hgnas_ops::FunctionSet`]s to
//!    maximise supernet accuracy; Stage 2 pre-trains the single-path
//!    one-shot (SPOS) [`Supernet`] and evolves per-position operation types
//!    under the multi-objective function Eq. (3).
//! 3. **Hardware awareness**: candidate latency comes from the GCN-based
//!    `hgnas-predictor` in milliseconds per query ([`LatencyMode::Predictor`])
//!    or from simulated on-device measurement
//!    ([`LatencyMode::Measured`]) — the Fig. 9(a) ablation.
//!
//! Search cost is metered on a simulated V100 wall-clock ([`SearchClock`])
//! so the Fig. 9 "search time" axes are reproducible on any host.
//!
//! # Example
//!
//! ```no_run
//! use hgnas_core::{Hgnas, SearchConfig, TaskConfig};
//! use hgnas_device::DeviceKind;
//!
//! let outcome = Hgnas::new(
//!     TaskConfig::tiny(42),
//!     SearchConfig::fast(DeviceKind::JetsonTx2),
//! )
//! .run();
//! println!("{} @ {:.1} ms", outcome.best.score, outcome.best.latency_ms);
//! ```

mod clock;
mod ea;
pub mod eval;
mod objective;
mod pareto;
pub mod search;
pub mod space;
mod supernet;

pub use clock::SearchClock;
pub use ea::{
    evolve, evolve_with, EaConfig, EaResult, EaSnapshot, EaState, FnEvaluator, GenerationEvaluator,
};
pub use eval::{CandidateScorer, EvalStats, Evaluator};
pub use objective::{CandidateMetrics, Objective};
pub use pareto::{pareto_front, pareto_front_nd};
pub use search::{
    Checkpoint, Hgnas, JointGenome, LatencyMode, MeasureBackend, OneStageCheckpoint, PrefixParams,
    PretrainedPredictor, RunOptions, RunOutput, ScoredCandidate, SearchCheckpoint, SearchConfig,
    SearchOutcome, SearchedModel, SessionSnapshot, SessionState, Strategy, TaskConfig,
};
pub use supernet::Supernet;
