//! Pareto-frontier extraction for accuracy/latency point sets (Fig. 6).

/// Returns the indices of the non-dominated points, where a point dominates
/// another if it has *higher-or-equal accuracy* and *lower-or-equal
/// latency*, strictly better in at least one. Output preserves input order.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    // points are (latency, accuracy)
    (0..points.len())
        .filter(|&i| {
            let (lat_i, acc_i) = points[i];
            !(0..points.len()).any(|j| {
                if i == j {
                    return false;
                }
                let (lat_j, acc_j) = points[j];
                let no_worse = lat_j <= lat_i && acc_j >= acc_i;
                let better = lat_j < lat_i || acc_j > acc_i;
                no_worse && better
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_excluded() {
        // (latency, accuracy)
        let pts = vec![
            (10.0, 0.9),  // frontier
            (20.0, 0.8),  // dominated by 0
            (5.0, 0.7),   // frontier (fastest)
            (50.0, 0.95), // frontier (most accurate)
        ];
        assert_eq!(pareto_front(&pts), vec![0, 2, 3]);
    }

    #[test]
    fn identical_points_all_kept() {
        let pts = vec![(1.0, 0.5), (1.0, 0.5)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn single_point_is_front() {
        assert_eq!(pareto_front(&[(3.0, 0.1)]), vec![0]);
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn strictly_ordered_chain_keeps_all() {
        // Faster is less accurate: nothing dominates anything.
        let pts = vec![(1.0, 0.1), (2.0, 0.2), (3.0, 0.3)];
        assert_eq!(pareto_front(&pts).len(), 3);
    }
}
