//! Pareto-frontier extraction for accuracy/latency point sets (Fig. 6).

/// Returns the indices of the non-dominated points, where a point dominates
/// another if it has *higher-or-equal accuracy* and *lower-or-equal
/// latency*, strictly better in at least one. Output preserves input order.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    // points are (latency, accuracy)
    (0..points.len())
        .filter(|&i| {
            let (lat_i, acc_i) = points[i];
            !(0..points.len()).any(|j| {
                if i == j {
                    return false;
                }
                let (lat_j, acc_j) = points[j];
                let no_worse = lat_j <= lat_i && acc_j >= acc_i;
                let better = lat_j < lat_i || acc_j > acc_i;
                no_worse && better
            })
        })
        .collect()
}

/// N-axis generalisation: `points[i]` is one candidate's metric vector and
/// `maximize[k]` says whether axis `k` is maximised (accuracy) or minimised
/// (latency, energy, peak memory). A point dominates another if it is
/// no-worse on every axis and strictly better on at least one. Output
/// preserves input order; with two axes `(minimised, maximised)` the
/// membership matches [`pareto_front`] exactly.
///
/// # Panics
///
/// Panics if any point's dimension disagrees with `maximize.len()`.
pub fn pareto_front_nd(points: &[Vec<f64>], maximize: &[bool]) -> Vec<usize> {
    for p in points {
        assert_eq!(p.len(), maximize.len(), "metric vector dimension mismatch");
    }
    // Signed view: negate minimised axes so domination is uniformly
    // "greater-or-equal everywhere, greater somewhere".
    let signed = |i: usize, k: usize| {
        if maximize[k] {
            points[i][k]
        } else {
            -points[i][k]
        }
    };
    (0..points.len())
        .filter(|&i| {
            !(0..points.len()).any(|j| {
                if i == j {
                    return false;
                }
                let no_worse = (0..maximize.len()).all(|k| signed(j, k) >= signed(i, k));
                let better = (0..maximize.len()).any(|k| signed(j, k) > signed(i, k));
                no_worse && better
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_excluded() {
        // (latency, accuracy)
        let pts = vec![
            (10.0, 0.9),  // frontier
            (20.0, 0.8),  // dominated by 0
            (5.0, 0.7),   // frontier (fastest)
            (50.0, 0.95), // frontier (most accurate)
        ];
        assert_eq!(pareto_front(&pts), vec![0, 2, 3]);
    }

    #[test]
    fn identical_points_all_kept() {
        let pts = vec![(1.0, 0.5), (1.0, 0.5)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn single_point_is_front() {
        assert_eq!(pareto_front(&[(3.0, 0.1)]), vec![0]);
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn strictly_ordered_chain_keeps_all() {
        // Faster is less accurate: nothing dominates anything.
        let pts = vec![(1.0, 0.1), (2.0, 0.2), (3.0, 0.3)];
        assert_eq!(pareto_front(&pts).len(), 3);
    }

    #[test]
    fn nd_front_with_two_axes_matches_2d() {
        let pts = vec![(10.0, 0.9), (20.0, 0.8), (5.0, 0.7), (50.0, 0.95)];
        let nd: Vec<Vec<f64>> = pts.iter().map(|&(l, a)| vec![l, a]).collect();
        assert_eq!(pareto_front_nd(&nd, &[false, true]), pareto_front(&pts));
    }

    #[test]
    fn extra_axis_can_rescue_a_2d_dominated_point() {
        // Point 1 is slower and less accurate than point 0, but uses far
        // less energy — non-dominated once energy joins the front.
        let pts = vec![
            vec![10.0, 0.9, 100.0],
            vec![20.0, 0.8, 10.0],
            vec![30.0, 0.7, 200.0], // worse than 0 on all three axes
        ];
        assert_eq!(pareto_front_nd(&pts, &[false, true, false]), vec![0, 1]);
    }

    #[test]
    fn nd_identical_points_all_kept() {
        let pts = vec![vec![1.0, 0.5, 2.0], vec![1.0, 0.5, 2.0]];
        assert_eq!(pareto_front_nd(&pts, &[false, true, false]), vec![0, 1]);
    }
}
