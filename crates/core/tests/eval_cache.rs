//! The evaluation cache: duplicate candidates must never be re-lowered or
//! re-scored, and the stats struct must account for every submission.

use hgnas_core::{CandidateScorer, EvalStats, Evaluator};
use hgnas_ops::{Architecture, FunctionSet, OpType};
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// A scorer that lowers the genome to a device workload — the expensive
/// step the cache exists to avoid — and counts how often it does so.
struct LoweringScorer {
    lowerings: AtomicU64,
}

impl CandidateScorer<Vec<OpType>> for LoweringScorer {
    type Output = f64;

    fn score(&self, genome: &Vec<OpType>, _rng: &mut StdRng) -> f64 {
        self.lowerings.fetch_add(1, Ordering::SeqCst);
        let arch = Architecture::from_genome(
            genome,
            FunctionSet::dgcnn_like(64),
            FunctionSet::dgcnn_like(128),
            8,
            4,
        );
        let w = arch.lower(64, &[16]);
        w.total_flops()
    }
}

fn genome(pattern: &[OpType]) -> Vec<OpType> {
    pattern.to_vec()
}

#[test]
fn duplicate_candidates_cause_zero_relowerings() {
    use OpType::{Aggregate, Combine, Connect, Sample};
    let scorer = LoweringScorer {
        lowerings: AtomicU64::new(0),
    };
    let mut ev = Evaluator::new(scorer, 4, 7, |_: &Vec<OpType>, f: &f64, _| *f);

    let a = genome(&[Sample, Aggregate, Combine, Connect]);
    let b = genome(&[Combine, Combine, Aggregate, Sample]);
    let c = genome(&[Connect, Sample, Sample, Combine]);

    // A generation full of duplicates: 3 unique genomes in 8 slots.
    let gen1 = vec![
        a.clone(),
        b.clone(),
        a.clone(),
        c.clone(),
        b.clone(),
        a.clone(),
        c.clone(),
        a.clone(),
    ];
    let fits1 = ev.evaluate_batch(&gen1);
    let after_gen1 = ev.stats();
    assert_eq!(after_gen1.misses, 3, "one scoring per unique genome");
    assert_eq!(after_gen1.hits, 5);

    // A later generation resubmitting only known genomes: zero new
    // lowerings, all hits.
    let gen2 = vec![c.clone(), a.clone(), b.clone(), a.clone()];
    let fits2 = ev.evaluate_batch(&gen2);
    let after_gen2 = ev.stats();
    assert_eq!(
        after_gen2.misses, 3,
        "duplicate-only generation must not re-lower"
    );
    assert_eq!(after_gen2.hits, 9);
    assert_eq!(after_gen2.submitted, 12);
    assert_eq!(after_gen2.batches, 2);

    // The actual lowering count agrees with the stats' miss count.
    assert_eq!(ev.scorer().lowerings.load(Ordering::SeqCst), 3);

    // Cached results are the identical outputs.
    assert_eq!(fits1[0].to_bits(), fits1[2].to_bits());
    assert_eq!(fits1[0].to_bits(), fits2[1].to_bits());
    assert_eq!(fits1[1].to_bits(), fits2[2].to_bits());
    assert_eq!(fits1[3].to_bits(), fits2[0].to_bits());
}

#[test]
fn stats_start_at_zero() {
    assert_eq!(EvalStats::default(), EvalStats::default());
    let scorer = LoweringScorer {
        lowerings: AtomicU64::new(0),
    };
    let ev = Evaluator::new(scorer, 1, 0, |_: &Vec<OpType>, f: &f64, _| *f);
    assert_eq!(ev.stats(), EvalStats::default());
}
