//! Determinism guarantees of the parallel candidate evaluator: for a fixed
//! seed, thread count must never change any result bit.

use hgnas_core::search::{Hgnas, LatencyMode, SearchConfig, SearchOutcome, TaskConfig};
use hgnas_core::{evolve_with, CandidateScorer, EaConfig, EaResult, Evaluator};
use hgnas_device::DeviceKind;
use rand::rngs::StdRng;
use rand::Rng;

/// Scorer with RNG-dependent output, so any stream misassignment between
/// thread counts shows up as a fitness difference.
struct NoisyOnemax;

impl CandidateScorer<u32> for NoisyOnemax {
    type Output = f64;

    fn score(&self, genome: &u32, rng: &mut StdRng) -> f64 {
        genome.count_ones() as f64 + rng.gen_range(0.0f64..1e-3)
    }
}

fn onemax_with_threads(threads: usize) -> EaResult<u32> {
    let mut evaluator = Evaluator::new(NoisyOnemax, threads, 99, |_: &u32, f: &f64, _| *f);
    evolve_with(
        vec![0u32],
        &EaConfig {
            population: 16,
            iterations: 30,
            elite_fraction: 0.4,
            mutation_prob: 0.8,
            seed: 3,
        },
        &mut evaluator,
        |g, rng| g ^ (1 << rng.gen_range(0..32)),
        |a, b, rng| {
            let mask: u32 = rng.gen();
            (a & mask) | (b & !mask)
        },
    )
}

#[test]
fn evolve_history_identical_at_1_2_and_8_threads() {
    let r1 = onemax_with_threads(1);
    let r2 = onemax_with_threads(2);
    let r8 = onemax_with_threads(8);
    assert_eq!(r1.best, r2.best);
    assert_eq!(r1.best, r8.best);
    assert_eq!(r1.best_fitness.to_bits(), r2.best_fitness.to_bits());
    assert_eq!(r1.best_fitness.to_bits(), r8.best_fitness.to_bits());
    assert_eq!(r1.evaluations, r2.evaluations);
    assert_eq!(r1.history, r2.history);
    assert_eq!(r1.history, r8.history);
}

fn tiny_config(device: DeviceKind, mode: LatencyMode, threads: usize) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = hgnas_predictor::PredictorConfig {
        train_samples: 60,
        val_samples: 20,
        epochs: 6,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 1,
    };
    cfg.eval_clouds = 20;
    cfg.latency_mode = mode;
    cfg.eval_threads = threads;
    cfg
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.best.genome, b.best.genome);
    assert_eq!(a.best.architecture, b.best.architecture);
    assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
    assert_eq!(
        a.best.supernet_accuracy.to_bits(),
        b.best.supernet_accuracy.to_bits()
    );
    assert_eq!(a.best.latency_ms.to_bits(), b.best.latency_ms.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "history time diverged");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "history score diverged");
    }
    assert_eq!(a.search_hours.to_bits(), b.search_hours.to_bits());
    assert_eq!(a.eval_stats, b.eval_stats);
}

#[test]
fn predictor_mode_search_is_bit_identical_serial_vs_4_threads() {
    let task = TaskConfig::tiny(5);
    let serial = Hgnas::new(
        task.clone(),
        tiny_config(DeviceKind::Rtx3080, LatencyMode::Predictor, 1),
    )
    .run();
    let parallel = Hgnas::new(
        task,
        tiny_config(DeviceKind::Rtx3080, LatencyMode::Predictor, 4),
    )
    .run();
    assert_outcomes_bit_identical(&serial, &parallel);
}

#[test]
fn measured_mode_search_is_bit_identical_serial_vs_4_threads() {
    let task = TaskConfig::tiny(7);
    let serial = Hgnas::new(
        task.clone(),
        tiny_config(DeviceKind::JetsonTx2, LatencyMode::Measured, 1),
    )
    .run();
    let parallel = Hgnas::new(
        task,
        tiny_config(DeviceKind::JetsonTx2, LatencyMode::Measured, 4),
    )
    .run();
    assert_outcomes_bit_identical(&serial, &parallel);
}

#[test]
fn search_reports_eval_stats() {
    let task = TaskConfig::tiny(5);
    let outcome = Hgnas::new(
        task,
        tiny_config(DeviceKind::Rtx3080, LatencyMode::Predictor, 2),
    )
    .run();
    let stats = outcome.eval_stats.expect("multi-stage search has stats");
    // population 6, 3 iterations with 3 elites -> 6 + 3×3 submissions.
    assert_eq!(stats.submitted, 15);
    assert_eq!(stats.hits + stats.misses, stats.submitted);
    assert!(stats.misses >= 1);
    assert_eq!(stats.batches, 4);
}
