//! End-to-end golden test for the lane port: a full supernet training run
//! (SPOS `train_epoch` — forwards, backwards, Adam steps — plus one-shot
//! genome evaluation) must produce bit-identical results on the AVX2 lane
//! path and the pure-scalar fallback.
//!
//! `with_path` flips a process-global override, so this file holds exactly
//! one test in its own integration-test binary: a concurrently running
//! override could mask a divergence between the paths.

use hgnas_core::Supernet;
use hgnas_nn::Optimizer;
use hgnas_ops::FunctionSet;
use hgnas_pointcloud::{DatasetConfig, SynthNet40};
use hgnas_tensor::simd::{with_path, LanePath};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains a tiny supernet for three epochs and evaluates a few random
/// paths, all under the given lane path. Everything RNG-dependent is
/// re-seeded identically per invocation.
fn train_and_eval(path: LanePath) -> (Vec<u32>, Vec<u64>, Vec<Vec<u32>>) {
    with_path(path, || {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(21));
        let mut rng = StdRng::seed_from_u64(21);
        let mut sn = Supernet::new(
            &mut rng,
            6,
            16,
            8,
            ds.classes,
            FunctionSet::dgcnn_like(16),
            FunctionSet::dgcnn_like(16),
            &[16],
        );
        let batches = SynthNet40::batches(&ds.train, 8);
        let mut opt = Optimizer::adam(3e-3);
        let losses: Vec<u32> = (0..3)
            .map(|_| sn.train_epoch(&batches, &mut opt, &mut rng).to_bits())
            .collect();
        let mut path_rng = StdRng::seed_from_u64(22);
        let accs: Vec<u64> = (0..4)
            .map(|_| {
                let genome = sn.random_genome(&mut path_rng);
                sn.eval_genome(&genome, &ds.test, 0).to_bits()
            })
            .collect();
        let weights: Vec<Vec<u32>> = sn
            .export_weights()
            .iter()
            .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        (losses, accs, weights)
    })
}

#[test]
fn supernet_training_is_bit_identical_scalar_vs_lane() {
    let (scalar_loss, scalar_acc, scalar_w) = train_and_eval(LanePath::Scalar);
    let (lane_loss, lane_acc, lane_w) = train_and_eval(LanePath::Avx2);
    assert_eq!(scalar_loss, lane_loss, "per-epoch losses diverged");
    assert_eq!(scalar_acc, lane_acc, "one-shot accuracies diverged");
    assert_eq!(scalar_w, lane_w, "trained weights diverged");
}
