//! Offline shim for the `crossbeam::scope` API, backed by
//! [`std::thread::scope`] (stabilised in Rust 1.63, so the external crate is
//! no longer needed for plain scoped threads).
//!
//! Differences from real crossbeam: a panicking child thread propagates the
//! panic out of [`scope`] (std semantics) instead of surfacing as `Err`, so
//! the `Result` returned here is always `Ok`. Callers that `.expect()` the
//! result behave identically either way.

use std::any::Any;
use std::thread::ScopedJoinHandle;

/// Scoped-thread handle passed to the [`scope`] closure. Mirrors
/// `crossbeam::thread::Scope`: `spawn` hands each child a reference to the
/// scope so it can spawn siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a child thread joined automatically at scope exit.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads can be
/// spawned; all children are joined before `scope` returns.
///
/// # Errors
///
/// Never returns `Err` in this shim (see module docs); the signature keeps
/// crossbeam compatibility.
///
/// # Panics
///
/// Panics if a spawned thread panicked (the payload is forwarded).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, matching the real crate's layout.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 64];
        super::scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = super::scope(|_| 41 + 1).unwrap();
        assert_eq!(r, 42);
    }
}
