//! Offline shim for the `crossbeam::scope` API, backed by
//! [`std::thread::scope`] (stabilised in Rust 1.63, so the external crate is
//! no longer needed for plain scoped threads).
//!
//! Differences from real crossbeam: a panicking child thread propagates the
//! panic out of [`scope`] (std semantics) instead of surfacing as `Err`, so
//! the `Result` returned here is always `Ok`. Callers that `.expect()` the
//! result behave identically either way.

use std::any::Any;
use std::thread::ScopedJoinHandle;

/// Scoped-thread handle passed to the [`scope`] closure. Mirrors
/// `crossbeam::thread::Scope`: `spawn` hands each child a reference to the
/// scope so it can spawn siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a child thread joined automatically at scope exit.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads can be
/// spawned; all children are joined before `scope` returns.
///
/// # Errors
///
/// Never returns `Err` in this shim (see module docs); the signature keeps
/// crossbeam compatibility.
///
/// # Panics
///
/// Panics if a spawned thread panicked (the payload is forwarded).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, matching the real crate's layout.
pub mod thread {
    pub use super::{scope, Scope};
}

/// Offline shim for `crossbeam::channel`: multi-producer *multi-consumer*
/// unbounded channels, backed by [`std::sync::mpsc`] with the receiver
/// shared behind a mutex so it can be cloned into a worker pool.
///
/// Differences from real crossbeam: no `select!`, no bounded channels, and
/// a blocked `recv` polls with a short timeout while holding the receiver
/// lock so sibling consumers interleave at millisecond granularity rather
/// than truly concurrently. The workspace's oracle workers batch requests,
/// so this costs nothing observable.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// The sending half; clone freely across producer threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message back when every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    /// The receiving half; clone it to share one queue between several
    /// consumers (each message is delivered to exactly one).
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and closed.
        ///
        /// # Panics
        ///
        /// Panics if a previous consumer panicked while holding the
        /// receiver lock.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                // Poll with a short timeout, releasing the lock between
                // rounds so sibling consumers sharing the queue get a turn.
                let rx = self.0.lock().unwrap();
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(t) => return Ok(t),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => return Err(RecvError),
                }
            }
        }

        /// Dequeues a message if one is ready.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when the channel is also closed.
        ///
        /// # Panics
        ///
        /// Panics if a previous consumer panicked while holding the
        /// receiver lock.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.0.lock().unwrap().try_recv() {
                Ok(t) => Ok(t),
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }

        /// A non-blocking iterator over the messages currently queued:
        /// stops at the first [`Receiver::try_recv`] miss (empty *or*
        /// disconnected), never waits.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }

        /// A blocking iterator: yields messages until the channel is empty
        /// and every sender is gone (the streaming-consumer loop).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Creates an unbounded multi-producer multi-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trips_in_order_single_consumer() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = super::channel::unbounded();
        let rx2 = rx.clone();
        let total = 200u64;
        let consumed = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for rx in [rx, rx2] {
                let consumed = &consumed;
                s.spawn(move |_| {
                    while rx.recv().is_ok() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
            for i in 0..total {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        // Every message is delivered to exactly one consumer.
        assert_eq!(consumed.load(std::sync::atomic::Ordering::SeqCst), total);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn try_iter_drains_ready_messages_without_blocking() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let drained: Vec<i32> = rx.try_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        // Channel still open: try_iter stops instead of waiting.
        assert_eq!(rx.try_iter().next(), None);
        tx.send(9).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn blocking_iter_ends_on_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        super::scope(|s| {
            s.spawn(move |_| {
                for i in 0..20 {
                    tx.send(i).unwrap();
                }
                // tx dropped here; iter() must terminate.
            });
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..20).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_hands_message_back() {
        let (tx, rx) = super::channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(42), Err(super::channel::SendError(42)));
    }

    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 64];
        super::scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = super::scope(|_| 41 + 1).unwrap();
        assert_eq!(r, 42);
    }
}
