//! Offline shim for the `crossbeam::scope` API, backed by
//! [`std::thread::scope`] (stabilised in Rust 1.63, so the external crate is
//! no longer needed for plain scoped threads).
//!
//! Differences from real crossbeam: a panicking child thread propagates the
//! panic out of [`scope`] (std semantics) instead of surfacing as `Err`, so
//! the `Result` returned here is always `Ok`. Callers that `.expect()` the
//! result behave identically either way.

use std::any::Any;
use std::thread::ScopedJoinHandle;

/// Scoped-thread handle passed to the [`scope`] closure. Mirrors
/// `crossbeam::thread::Scope`: `spawn` hands each child a reference to the
/// scope so it can spawn siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a child thread joined automatically at scope exit.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads can be
/// spawned; all children are joined before `scope` returns.
///
/// # Errors
///
/// Never returns `Err` in this shim (see module docs); the signature keeps
/// crossbeam compatibility.
///
/// # Panics
///
/// Panics if a spawned thread panicked (the payload is forwarded).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, matching the real crate's layout.
pub mod thread {
    pub use super::{scope, Scope};
}

/// Offline shim for `crossbeam::channel`: multi-producer *multi-consumer*
/// unbounded channels, backed by a `Mutex<VecDeque>` + `Condvar` queue.
///
/// Differences from real crossbeam: no `select!` and no bounded channels.
/// A blocked `recv` *sleeps on the condvar with the lock released* — a
/// send wakes exactly one waiter, and sibling consumers sharing the queue
/// interleave at the OS scheduler's granularity. (An earlier revision
/// polled `std::sync::mpsc` with a 1 ms timeout while holding the shared
/// receiver mutex, which serialized worker pools on multi-core hosts.)
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message queued.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Queue state behind the channel mutex.
    #[derive(Debug)]
    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The shared channel core.
    #[derive(Debug)]
    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled on every send (one waiter) and on the last sender
        /// hanging up (all waiters, so blocked `recv`s observe disconnect).
        ready: Condvar,
    }

    /// The sending half; clone freely across producer threads.
    #[derive(Debug)]
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Every blocked consumer must wake to report disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message back when every receiver has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.queue.push_back(t);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    /// The receiving half; clone it to share one queue between several
    /// consumers (each message is delivered to exactly one).
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone. The
        /// wait releases the channel lock, so sibling consumers run truly
        /// concurrently.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and closed.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Blocks like [`Receiver::recv`], but gives up once `timeout` has
        /// elapsed with nothing queued. The deadline is absolute (computed
        /// once up front), so spurious condvar wakeups do not extend the
        /// wait.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the deadline passes,
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty and
        /// every sender is gone.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now().checked_add(timeout);
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                // None: the deadline overflowed Instant — wait unbounded,
                // matching `recv` (effectively "forever").
                let Some(deadline) = deadline else {
                    st = self.0.ready.wait(st).unwrap();
                    continue;
                };
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self.0.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Dequeues a message if one is ready.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when the channel is also closed.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex was poisoned by a panicking peer.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(t) => Ok(t),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// A non-blocking iterator over the messages currently queued:
        /// stops at the first [`Receiver::try_recv`] miss (empty *or*
        /// disconnected), never waits.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }

        /// A blocking iterator: yields messages until the channel is empty
        /// and every sender is gone (the streaming-consumer loop).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Creates an unbounded multi-producer multi-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trips_in_order_single_consumer() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = super::channel::unbounded();
        let rx2 = rx.clone();
        let total = 200u64;
        let consumed = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for rx in [rx, rx2] {
                let consumed = &consumed;
                s.spawn(move |_| {
                    while rx.recv().is_ok() {
                        consumed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
            for i in 0..total {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        // Every message is delivered to exactly one consumer.
        assert_eq!(consumed.load(std::sync::atomic::Ordering::SeqCst), total);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn try_iter_drains_ready_messages_without_blocking() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let drained: Vec<i32> = rx.try_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        // Channel still open: try_iter stops instead of waiting.
        assert_eq!(rx.try_iter().next(), None);
        tx.send(9).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn blocking_iter_ends_on_disconnect() {
        let (tx, rx) = super::channel::unbounded();
        super::scope(|s| {
            s.spawn(move |_| {
                for i in 0..20 {
                    tx.send(i).unwrap();
                }
                // tx dropped here; iter() must terminate.
            });
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..20).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_hands_message_back() {
        let (tx, rx) = super::channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(42), Err(super::channel::SendError(42)));
    }

    #[test]
    fn parked_sibling_consumers_wake_one_per_message() {
        // Both consumers block on an empty queue first (no messages to
        // grab eagerly), then each send must wake exactly one of them —
        // the condvar handoff the old poll-under-lock recv serialized.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Barrier;
        let (tx, rx) = super::channel::unbounded();
        let rx2 = rx.clone();
        let parked = Barrier::new(3);
        let consumed = AtomicU64::new(0);
        super::scope(|s| {
            for rx in [rx, rx2] {
                let (consumed, parked) = (&consumed, &parked);
                s.spawn(move |_| {
                    parked.wait();
                    while rx.recv().is_ok() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            parked.wait();
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        assert_eq!(consumed.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn recv_timeout_returns_queued_message_immediately() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(5));
    }

    #[test]
    fn recv_timeout_times_out_on_open_empty_channel() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        let start = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        // The channel is still usable afterwards.
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(1));
    }

    #[test]
    fn recv_timeout_reports_disconnect_not_timeout() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_send_before_deadline() {
        let (tx, rx) = super::channel::unbounded();
        super::scope(|s| {
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                tx.send(77).unwrap();
            });
            // Far longer than the send delay: a condvar wakeup, not the
            // deadline, must deliver the message.
            assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(30)), Ok(77));
        })
        .unwrap();
    }

    #[test]
    fn sender_clone_and_drop_tracks_disconnect() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn scoped_threads_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 64];
        super::scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = super::scope(|_| 41 + 1).unwrap();
        assert_eq!(r, 42);
    }
}
