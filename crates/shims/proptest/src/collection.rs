//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Length specifications accepted by [`vec()`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoLenRange {
    /// Resolves to `[lo, hi)` bounds; `hi > lo`.
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
    let (lo, hi) = len.bounds();
    assert!(hi > lo, "empty length range");
    VecStrategy { element, lo, hi }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.hi - self.lo == 1 {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..10, 3usize..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn exact_len_and_map_compose(
            t in prop::collection::vec(-1.0f32..1.0, 6usize).prop_map(|v| (v.len(), v))
        ) {
            prop_assert_eq!(t.0, 6);
            prop_assert!(t.1.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
