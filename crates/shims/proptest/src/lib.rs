//! Offline mini-proptest.
//!
//! Provides the slice of the `proptest` API this workspace's property tests
//! use — the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! `prop::collection::vec` strategies, `prop_assert*` / `prop_assume!`, and
//! [`ProptestConfig`] — on top of the deterministic `rand` shim.
//!
//! Deliberate simplifications versus the real crate: inputs are drawn from a
//! fixed seed (no `PROPTEST_*` env handling) so failures reproduce exactly,
//! and there is no shrinking — a failing case reports its case index and
//! message only.

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Runtime re-exports used by the macro expansions; not public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Seed for every test's input stream: fixed so runs are reproducible.
    pub const SEED: u64 = 0x4852_4e41_5321; // "HGNAS!"
}

/// `prop::` namespace mirroring the real prelude's module re-export.
pub mod prop {
    pub use crate::collection;
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::SEED,
                );
                let mut passed: u32 = 0;
                // Rejection budget: 20× the case count, matching proptest's
                // default max_global_rejects order of magnitude.
                let mut attempts_left: u32 = config.cases.saturating_mul(20).max(20);
                while passed < config.cases && attempts_left > 0 {
                    attempts_left -= 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property '{}' failed at case {}: {}",
                                stringify!($name),
                                passed,
                                msg
                            );
                        }
                    }
                }
                assert!(
                    passed == config.cases,
                    "property '{}': too many rejected cases ({} of {} ran)",
                    stringify!($name),
                    passed,
                    config.cases
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts within a property body; failure fails the case (no panic until
/// the runner reports it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
