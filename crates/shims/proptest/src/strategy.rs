//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// A recipe for generating values of `Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Half-open ranges sample uniformly, matching proptest's `lo..hi` inputs.
impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
