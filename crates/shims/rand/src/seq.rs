//! Slice sampling helpers (the `rand::seq` subset the workspace uses).

use crate::{Rng, RngCore, SampleUniform};

/// Shuffling and choosing on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them when
    /// `amount >= len`), as an iterator of references.
    fn choose_multiple<R: RngCore>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: O(len) setup,
        // O(amount) draws, no bias.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut picked = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = usize::sample_range(rng, i, idx.len());
            idx.swap(i, j);
            picked.push(&self[idx[i]]);
        }
        picked.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying in order is ~impossible");
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "duplicates in {picked:?}");
        // Asking for more than len returns everything.
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 10);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
