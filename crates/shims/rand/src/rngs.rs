//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
///
/// Not cryptographic — chosen for speed, quality, and a tiny, portable
/// implementation so every platform reproduces identical streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The generator's full internal state. Together with
    /// [`StdRng::from_state`] this makes streams checkpointable: a consumer
    /// can persist the four words mid-stream and later resume producing the
    /// exact same sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`StdRng::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro256++ cannot leave (and
    /// [`SeedableRng::seed_from_u64`] can never produce).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "the all-zero state is not a valid xoshiro256++ state"
        );
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_resumes_identical_stream() {
        let mut a = StdRng::seed_from_u64(123);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        let tail_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let tail_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }
}
