//! Offline shim for the subset of the `rand` crate this workspace uses.
//!
//! The build container has no crates.io access, so this crate provides an
//! API-compatible stand-in: the [`Rng`] / [`SeedableRng`] traits,
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64, so streams are
//! fully deterministic and portable), and [`seq::SliceRandom`].
//!
//! The numeric streams differ from upstream `rand`'s ChaCha-based `StdRng`,
//! which is fine here: nothing in the workspace depends on upstream's exact
//! bit streams, only on determinism given a seed.

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](RngCore::next_u64), which for xoshiro-family generators
    /// are the better-mixed bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the `u64` constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// 53-bit uniform in `[0, 1)`.
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// 24-bit uniform in `[0, 1)`.
#[inline]
fn f32_from_bits(bits: u64) -> f32 {
    ((bits >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types samplable from the full-width uniform distribution (the shim's
/// equivalent of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f32_from_bits(rng.next_u64())
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

/// Element types uniformly samplable over a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift (Lemire) mapping: unbiased enough for
                // simulation purposes and branch-free.
                let hi128 = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                (lo as i128 + hi128 as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // `lo + (hi-lo)*u` can round up to exactly `hi` when ulp(hi)
        // exceeds the deficit; clamp to preserve the half-open contract.
        let v = lo + (hi - lo) * f32_from_bits(rng.next_u64());
        if v < hi {
            v
        } else {
            hi.next_down().max(lo)
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * f64_from_bits(rng.next_u64());
        if v < hi {
            v
        } else {
            hi.next_down().max(lo)
        }
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_range(rng, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.gen_range(5usize..17);
            assert!((5..17).contains(&i));
            let f = rng.gen_range(-2.0f32..3.5);
            assert!((-2.0..3.5).contains(&f));
            let neg = rng.gen_range(-8i32..-3);
            assert!((-8..-3).contains(&neg));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
    }
}
