//! Offline shim for the subset of `criterion` the workspace benches use.
//!
//! No statistics, plots or CLI — each benchmark is warmed up, then timed
//! over enough iterations to fill a small measurement budget, and the mean
//! wall-clock time per iteration is printed in criterion-like format.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_ITERS: u64 = 3;

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Warm up, then repeatedly run `f` and record the mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        // Calibrate a batch size from a single timed run, then measure.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    println!("{id:<40} time: [{}]", human(b.mean_ns));
}

/// Top-level bench context, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// Identifier `function_id/parameter` for parameterised benches.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark of the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Accepted for compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group (criterion requires the call; the shim reports
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a bench-group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
