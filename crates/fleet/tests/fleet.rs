//! Fleet acceptance tests: oracle transparency (fleet == serial per
//! device), checkpoint kill/resume bit-identity, warm-started predictors,
//! and artifact corruption rejection.

use hgnas_core::{
    Checkpoint, Hgnas, LatencyMode, RunOptions, SearchConfig, SearchOutcome, TaskConfig,
};
use hgnas_device::DeviceKind;
use hgnas_fleet::{
    predictor_fingerprint, run_fleet, ArtifactKey, ArtifactStore, FleetConfig, OracleConfig,
    StoreError,
};
use hgnas_predictor::PredictorConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tiny_config(device: DeviceKind, mode: LatencyMode) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = PredictorConfig {
        train_samples: 60,
        val_samples: 20,
        epochs: 6,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 2,
    };
    cfg.eval_clouds = 20;
    cfg.latency_mode = mode;
    cfg
}

/// A unique, self-cleaning store directory per test.
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let path =
            std::env::temp_dir().join(format!("hgnas-fleet-test-{tag}-{}-{n}", std::process::id()));
        TempStore { path }
    }

    fn open(&self) -> ArtifactStore {
        ArtifactStore::open(&self.path).expect("store dir")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.best.genome, b.best.genome);
    assert_eq!(a.best.architecture, b.best.architecture);
    assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
    assert_eq!(
        a.best.supernet_accuracy.to_bits(),
        b.best.supernet_accuracy.to_bits()
    );
    assert_eq!(a.best.latency_ms.to_bits(), b.best.latency_ms.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "history time diverged");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "history score diverged");
    }
    assert_eq!(a.search_hours.to_bits(), b.search_hours.to_bits());
    assert_eq!(a.eval_stats, b.eval_stats);
    assert_eq!(a.stage1_stats, b.stage1_stats);
    assert_eq!(a.predictor_stats, b.predictor_stats);
}

/// Acceptance: a fleet search over 3 devices through the async oracle
/// (with transient-fault injection enabled, so retries actually fire)
/// produces per device the identical outcome as serial single-device runs.
#[test]
fn measured_fleet_matches_serial_per_device() {
    let task = TaskConfig::tiny(7);
    let devices = [
        DeviceKind::Rtx3080,
        DeviceKind::JetsonTx2,
        DeviceKind::RaspberryPi3B,
    ];
    let base = tiny_config(devices[0], LatencyMode::Measured);
    let mut fleet = FleetConfig::new(devices.to_vec());
    fleet.oracle = OracleConfig {
        inject_busy_every: Some(3),
        ..OracleConfig::default()
    };
    let report = run_fleet(&task, &base, &fleet, None).expect("fleet run");
    assert_eq!(report.reports.len(), devices.len());

    let oracle_stats = report.oracle_stats.expect("measured mode has oracle stats");
    assert!(
        oracle_stats.requests > 0,
        "searches went through the oracle"
    );
    assert!(
        oracle_stats.injected_faults > 0 && oracle_stats.retries >= oracle_stats.injected_faults,
        "fault injection exercised the retry path: {oracle_stats:?}"
    );

    for (device, shard) in devices.iter().zip(&report.reports) {
        assert_eq!(shard.device, *device);
        let serial = Hgnas::new(task.clone(), tiny_config(*device, LatencyMode::Measured)).run();
        assert_outcomes_bit_identical(&shard.outcome, &serial);
    }

    // The shards genuinely target different devices: their reference
    // latencies differ wildly (Pi vs RTX3080).
    let ref_ms: Vec<f64> = report
        .reports
        .iter()
        .map(|r| r.outcome.reference_ms)
        .collect();
    assert!(
        ref_ms[2] > 10.0 * ref_ms[0],
        "Pi vs GPU reference: {ref_ms:?}"
    );
}

/// Acceptance: killing a search mid-generation and resuming from the
/// persisted checkpoint reproduces the uninterrupted outcome bit-for-bit
/// (checkpoint round-tripped through the on-disk codec).
#[test]
fn kill_and_resume_is_bit_identical() {
    let task = TaskConfig::tiny(5);
    let cfg = tiny_config(DeviceKind::JetsonTx2, LatencyMode::Predictor);
    let full = Hgnas::new(task.clone(), cfg.clone()).run();

    // "Kill" after generation 1 of 3, persisting checkpoints as we go.
    let temp = TempStore::new("resume");
    let store = temp.open();
    let key = ArtifactKey {
        device: DeviceKind::JetsonTx2,
        fingerprint: 0x5eed,
    };
    let mut persisted = 0usize;
    let mut sink = |cp: &Checkpoint| {
        let cp = cp.as_multi_stage().expect("multi-stage run, stage-2 cp");
        store.save_checkpoint(&key, &task, cp).expect("persist");
        persisted += 1;
    };
    let killed = Hgnas::new(task.clone(), cfg.clone()).run_with(RunOptions {
        checkpoint_sink: Some(&mut sink),
        abort_after_generation: Some(1),
        ..RunOptions::default()
    });
    assert!(killed.outcome.is_none(), "aborted run yields no outcome");
    let cp = killed.checkpoint.expect("aborted run yields a checkpoint");
    assert_eq!(cp.generation(), 1);
    assert!(persisted >= 2, "gen 0 and gen 1 were checkpointed");

    // Resume from the *disk* copy, not the in-memory one.
    let loaded = store
        .load_checkpoint(&key)
        .expect("load")
        .expect("checkpoint exists");
    assert_eq!(loaded.generation, 1);
    let resumed = Hgnas::new(task.clone(), cfg)
        .run_with(RunOptions {
            resume: Some(Checkpoint::MultiStage(loaded)),
            ..RunOptions::default()
        })
        .outcome
        .expect("resumed run completes");
    assert_outcomes_bit_identical(&resumed, &full);
}

/// Acceptance (ROADMAP gap closed): the one-stage baseline has the same
/// kill/resume story as Stage 2 — killing it mid-generation and resuming
/// from the persisted checkpoint reproduces the uninterrupted outcome
/// bit-for-bit, through the on-disk codec.
#[test]
fn one_stage_kill_and_resume_is_bit_identical() {
    let task = TaskConfig::tiny(6);
    let mut cfg = tiny_config(DeviceKind::I78700K, LatencyMode::Predictor);
    cfg.strategy = hgnas_core::Strategy::OneStage;
    let full = Hgnas::new(task.clone(), cfg.clone()).run();

    let temp = TempStore::new("onestage-resume");
    let store = temp.open();
    let key = ArtifactKey {
        device: DeviceKind::I78700K,
        fingerprint: 0x1057,
    };
    let mut persisted = 0usize;
    let mut sink = |cp: &Checkpoint| {
        let cp = cp.as_one_stage().expect("one-stage run, one-stage cp");
        store
            .save_one_stage_checkpoint(&key, &task, cp)
            .expect("persist");
        persisted += 1;
    };
    let killed = Hgnas::new(task.clone(), cfg.clone()).run_with(RunOptions {
        checkpoint_sink: Some(&mut sink),
        abort_after_generation: Some(1),
        ..RunOptions::default()
    });
    assert!(killed.outcome.is_none(), "aborted run yields no outcome");
    let cp = killed.checkpoint.expect("aborted run yields a checkpoint");
    assert_eq!(cp.generation(), 1);
    assert!(persisted >= 2, "gen 0 and gen 1 were checkpointed");

    let loaded = store
        .load_one_stage_checkpoint(&key)
        .expect("load")
        .expect("checkpoint exists");
    assert_eq!(loaded.generation, 1);
    let resumed = Hgnas::new(task.clone(), cfg)
        .run_with(RunOptions {
            resume: Some(Checkpoint::OneStage(loaded)),
            ..RunOptions::default()
        })
        .outcome
        .expect("resumed run completes");
    assert_outcomes_bit_identical(&resumed, &full);
}

/// Acceptance: importing a prior run's score cache (same seeds) leaves
/// the outcome and the final checkpoint's cache — hence the Pareto front
/// — bit-identical to a cold run, while `eval_stats.imported` records the
/// promotions and `misses` shrinks by exactly that amount. Also killed
/// mid-run: the warm remainder travels through the persisted checkpoint.
#[test]
fn warm_started_score_cache_is_bit_identical_to_cold() {
    let task = TaskConfig::tiny(17);
    let cfg = tiny_config(DeviceKind::JetsonTx2, LatencyMode::Predictor);

    // Donor run persists its score cache (what a prior fleet run leaves
    // in the store).
    let temp = TempStore::new("warmcache");
    let store = temp.open();
    let key = ArtifactKey {
        device: DeviceKind::JetsonTx2,
        fingerprint: 0xcafe,
    };
    let cold = Hgnas::new(task.clone(), cfg.clone()).run_with(RunOptions::default());
    let cold_cp = cold
        .checkpoint
        .as_ref()
        .and_then(Checkpoint::as_multi_stage)
        .expect("multi-stage checkpoint");
    store
        .save_score_cache(&key, &task, cold_cp.functions, &cold_cp.cache)
        .expect("persist donor cache");
    let cold_outcome = cold.outcome.as_ref().expect("cold run completes");
    let cold_stats = cold_outcome.eval_stats.expect("stats");
    assert_eq!(cold_stats.imported, 0, "cold runs import nothing");

    // Warm run: same task/config, imported cache, zero re-scoring of
    // known genomes.
    let imported = store
        .load_score_cache(&key)
        .expect("load")
        .expect("cache exists");
    let warm = Hgnas::new(task.clone(), cfg.clone()).run_with(RunOptions {
        imported_cache: Some(imported.clone()),
        ..RunOptions::default()
    });
    let warm_outcome = warm.outcome.expect("warm run completes");
    let warm_stats = warm_outcome.eval_stats.expect("stats");
    assert!(warm_stats.imported > 0, "imports were consumed");
    assert_eq!(
        warm_stats.misses + warm_stats.imported,
        cold_stats.misses,
        "every import replaces exactly one cold miss"
    );
    assert_eq!(warm_stats.hits, cold_stats.hits);
    assert_eq!(warm_stats.submitted, cold_stats.submitted);

    // Everything except the miss/imported split is bit-identical —
    // including the final cache (the Pareto front's source of truth).
    assert_eq!(warm_outcome.best.genome, cold_outcome.best.genome);
    assert_eq!(
        warm_outcome.best.score.to_bits(),
        cold_outcome.best.score.to_bits()
    );
    assert_eq!(warm_outcome.history.len(), cold_outcome.history.len());
    for (a, b) in warm_outcome.history.iter().zip(&cold_outcome.history) {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "simulated clock diverged");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "best trace diverged");
    }
    let warm_cp = warm
        .checkpoint
        .as_ref()
        .and_then(Checkpoint::as_multi_stage)
        .expect("multi-stage checkpoint");
    assert_eq!(warm_cp.cache.len(), cold_cp.cache.len());
    for ((ga, ca), (gb, cb)) in warm_cp.cache.iter().zip(&cold_cp.cache) {
        assert_eq!(ga, gb, "cache order diverged");
        assert_eq!(ca.score.to_bits(), cb.score.to_bits());
        assert_eq!(ca.latency_ms.to_bits(), cb.latency_ms.to_bits());
        assert_eq!(ca.accuracy.to_bits(), cb.accuracy.to_bits());
    }

    // Kill the warm run mid-way; the un-promoted imports ride along in
    // the checkpoint (through the codec) and the resumed run finishes
    // with the same stats split as the uninterrupted warm run.
    let cp_key = ArtifactKey {
        device: DeviceKind::JetsonTx2,
        fingerprint: 0xcafe + 1,
    };
    let mut sink = |cp: &Checkpoint| {
        let cp = cp.as_multi_stage().expect("stage-2 cp");
        store.save_checkpoint(&cp_key, &task, cp).expect("persist");
    };
    let killed = Hgnas::new(task.clone(), cfg.clone()).run_with(RunOptions {
        imported_cache: Some(imported),
        checkpoint_sink: Some(&mut sink),
        abort_after_generation: Some(1),
        ..RunOptions::default()
    });
    assert!(killed.outcome.is_none());
    let loaded = store
        .load_checkpoint(&cp_key)
        .expect("load")
        .expect("checkpoint exists");
    let resumed = Hgnas::new(task.clone(), cfg)
        .run_with(RunOptions {
            resume: Some(Checkpoint::MultiStage(loaded)),
            ..RunOptions::default()
        })
        .outcome
        .expect("resumed warm run completes");
    let resumed_stats = resumed.eval_stats.expect("stats");
    assert_eq!(resumed_stats, warm_stats, "kill/resume preserved the split");
    assert_eq!(resumed.best.genome, warm_outcome.best.genome);
    assert_eq!(
        resumed.search_hours.to_bits(),
        warm_outcome.search_hours.to_bits()
    );
}

/// Validating import (ROADMAP item): a tampered donor entry drifts under
/// the promotion-time re-score, condemning the whole import — the run
/// falls back cold with bit-identical results and counts the rejection in
/// `EvalStats`.
#[test]
fn poisoned_warm_import_is_rejected_and_run_stays_cold() {
    let task = TaskConfig::tiny(19);
    let cfg = tiny_config(DeviceKind::Rtx3080, LatencyMode::Predictor);
    let cold = Hgnas::new(task.clone(), cfg.clone()).run();
    let cold_stats = cold.eval_stats.expect("stats");

    // A genuine donor cache with its first entry's score poisoned — the
    // shape of an unsafe cross-seed / measured-mode transfer.
    let donor = Hgnas::new(task.clone(), cfg.clone()).run_with(RunOptions::default());
    let cp = donor.checkpoint.expect("checkpoint");
    let mut donated = cp.as_multi_stage().expect("stage-2 cp").cache.clone();
    donated[0].1.score += 0.125;

    let n_donated = donated.len() as u64;
    let warm = Hgnas::new(task.clone(), cfg)
        .run_with(RunOptions {
            imported_cache: Some(donated),
            ..RunOptions::default()
        })
        .outcome
        .expect("warm run completes");
    let warm_stats = warm.eval_stats.expect("stats");
    assert_eq!(warm_stats.imported, 0, "no poisoned entry served verbatim");
    assert_eq!(
        warm_stats.rejected, n_donated,
        "the whole import was condemned"
    );
    assert_eq!(warm_stats.misses, cold_stats.misses, "fell back fully cold");
    // And the searched result is exactly the cold one (stats aside — the
    // rejection counters legitimately differ from a cold run's zeros).
    assert_eq!(warm.best.genome, cold.best.genome);
    assert_eq!(warm.best.score.to_bits(), cold.best.score.to_bits());
    assert_eq!(warm.history.len(), cold.history.len());
    for (a, b) in warm.history.iter().zip(&cold.history) {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "simulated clock diverged");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "best trace diverged");
    }
    assert_eq!(warm.search_hours.to_bits(), cold.search_hours.to_bits());
}

/// The artifact store's GC: `prune` enforces a byte budget (oldest
/// artifacts and torn-write leftovers go first), `sweep_stale` drops every
/// fingerprint no live configuration references. Pruned slots are cold
/// starts, never errors.
#[test]
fn store_prune_and_stale_sweep_reclaim_space() {
    let task = TaskConfig::tiny(23);
    let base = tiny_config(DeviceKind::Rtx3080, LatencyMode::Predictor);
    let temp = TempStore::new("gc");
    let store = temp.open();
    let fleet = FleetConfig::new(vec![DeviceKind::Rtx3080, DeviceKind::JetsonTx2]);
    run_fleet(&task, &base, &fleet, Some(&store)).expect("seed the store");

    let total_bytes = || -> u64 {
        std::fs::read_dir(store.root())
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum()
    };
    let file_count = || std::fs::read_dir(store.root()).unwrap().count();
    let before_files = file_count();
    let before_bytes = total_bytes();
    assert!(before_files > 0);

    // A fresh temp file could be a concurrent writer mid write→rename:
    // prune must leave it alone. Aged past TMP_GC_AGE it is a torn
    // write's leftover and goes at any budget.
    let tmp = store.root().join("checkpoint-x.123.tmp");
    std::fs::write(&tmp, b"torn").unwrap();
    let report = store.prune(u64::MAX).expect("prune");
    assert_eq!(report.removed_files, 0, "young .tmp survives");
    std::fs::File::options()
        .write(true)
        .open(&tmp)
        .unwrap()
        .set_modified(std::time::SystemTime::now() - 2 * ArtifactStore::TMP_GC_AGE)
        .unwrap();
    let report = store.prune(u64::MAX).expect("prune");
    assert_eq!(report.removed_files, 1, "only the stale .tmp went");
    assert_eq!(report.retained_bytes, before_bytes);
    assert_eq!(file_count(), before_files);

    // The live-key sweep keeps every slot a current configuration owns.
    let live: Vec<ArtifactKey> = fleet
        .devices
        .iter()
        .map(|&device| {
            let mut cfg = base.clone();
            cfg.device = device;
            ArtifactKey {
                device,
                fingerprint: hgnas_fleet::search_fingerprint(&task, &cfg),
            }
        })
        .chain(fleet.devices.iter().map(|&device| {
            let mut cfg = base.clone();
            cfg.device = device;
            ArtifactKey {
                device,
                fingerprint: predictor_fingerprint(&task.predictor_context(), &cfg.predictor),
            }
        }))
        .collect();
    // Sessions are keyed by the device-free prefix fingerprint: one key
    // covers every device shard of the same task + base config.
    let live_sessions = [hgnas_fleet::PrefixKey {
        fingerprint: hgnas_fleet::prefix_fingerprint(&task, &base),
    }];
    let report = store.sweep_stale(&live, &live_sessions).expect("sweep");
    assert_eq!(report.removed_files, 0, "everything in the store is live");
    assert_eq!(report.retained_bytes, before_bytes);

    // Re-fingerprint the world (a config change): every old slot is stale.
    let mut changed = base.clone();
    changed.seed ^= 0xff;
    let stale_live = [ArtifactKey {
        device: DeviceKind::Rtx3080,
        fingerprint: hgnas_fleet::search_fingerprint(&task, &changed),
    }];
    let report = store.sweep_stale(&stale_live, &[]).expect("sweep");
    assert_eq!(report.removed_files, before_files);
    assert_eq!(report.retained_bytes, 0);
    assert_eq!(file_count(), 0);

    // Byte-budget prune: reseed, then shrink to a budget below the total —
    // the store ends under budget and a pruned slot reloads as None.
    run_fleet(&task, &base, &fleet, Some(&store)).expect("reseed the store");
    let full = total_bytes();
    let report = store.prune(full / 2).expect("prune");
    assert!(report.removed_files > 0);
    assert!(report.retained_bytes <= full / 2);
    assert_eq!(total_bytes(), report.retained_bytes);
    let report = store.prune(0).expect("prune all");
    assert_eq!(report.retained_bytes, 0);
    assert!(store
        .load_predictor(&live[2])
        .expect("a pruned slot is a cold start, not an error")
        .is_none());
}

/// Acceptance: with an artifact store, the second fleet run warm-starts —
/// zero predictor-training epochs, checkpoint resume at the final
/// generation — and still reports the identical outcome.
#[test]
fn second_fleet_run_warm_starts_with_zero_predictor_epochs() {
    let task = TaskConfig::tiny(9);
    let devices = [
        DeviceKind::Rtx3080,
        DeviceKind::I78700K,
        DeviceKind::JetsonTx2,
    ];
    let base = tiny_config(devices[0], LatencyMode::Predictor);
    let fleet = FleetConfig::new(devices.to_vec());
    let temp = TempStore::new("warm");
    let store = temp.open();

    let cold = run_fleet(&task, &base, &fleet, Some(&store)).expect("cold run");
    for shard in &cold.reports {
        assert!(!shard.warm_predictor, "first run trains from scratch");
        assert_eq!(shard.predictor_epochs_run, base.predictor.epochs);
        assert_eq!(shard.resumed_from_generation, None);
        // Cold fleet shards equal serial runs (predictor mode).
        let serial = Hgnas::new(
            task.clone(),
            tiny_config(shard.device, LatencyMode::Predictor),
        )
        .run();
        assert_outcomes_bit_identical(&shard.outcome, &serial);
        assert!(
            !shard.pareto.is_empty(),
            "{}: empty Pareto front",
            shard.device
        );
    }

    let warm = run_fleet(&task, &base, &fleet, Some(&store)).expect("warm run");
    for (c, w) in cold.reports.iter().zip(&warm.reports) {
        assert!(w.warm_predictor, "{}: predictor not warm-started", w.device);
        assert_eq!(
            w.predictor_epochs_run, 0,
            "{}: warm start must train zero epochs",
            w.device
        );
        assert_eq!(
            w.resumed_from_generation,
            Some(base.ea_stage2.iterations),
            "{}: warm run resumes at the completed generation",
            w.device
        );
        assert_outcomes_bit_identical(&c.outcome, &w.outcome);
    }

    // Pareto fronts are internally non-dominated.
    for shard in &warm.reports {
        for a in &shard.pareto {
            for b in &shard.pareto {
                let dominates = a.latency_ms <= b.latency_ms
                    && a.accuracy >= b.accuracy
                    && (a.latency_ms < b.latency_ms || a.accuracy > b.accuracy);
                assert!(!dominates, "{}: dominated point on front", shard.device);
            }
        }
    }
    println!("{}", warm.summary_table());
}

/// Codec acceptance: corrupt or truncated artifacts are rejected instead
/// of warm-starting a search from garbage.
#[test]
fn corrupt_and_truncated_artifacts_are_rejected() {
    let task = TaskConfig::tiny(3);
    let cfg = tiny_config(DeviceKind::RaspberryPi3B, LatencyMode::Predictor);
    let temp = TempStore::new("corrupt");
    let store = temp.open();

    // Produce a real predictor artifact via a (tiny) training run.
    let (p, stats) = hgnas_predictor::LatencyPredictor::train(
        DeviceKind::RaspberryPi3B,
        &task.predictor_context(),
        &cfg.predictor,
    );
    let key = ArtifactKey {
        device: DeviceKind::RaspberryPi3B,
        fingerprint: predictor_fingerprint(&task.predictor_context(), &cfg.predictor),
    };
    let path = store
        .save_predictor(&key, &p.snapshot(&stats))
        .expect("save");

    // Pristine artifact loads and reproduces predictions bit-for-bit.
    let snap = store.load_predictor(&key).expect("load").expect("exists");
    let (q, _) = hgnas_predictor::LatencyPredictor::from_snapshot(&snap);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for _ in 0..5 {
        let arch = hgnas_ops::Architecture::random(&mut rng, 6, 10, 4);
        assert_eq!(p.predict_ms(&arch).to_bits(), q.predict_ms(&arch).to_bits());
    }

    // A single flipped byte anywhere must be caught.
    let pristine = std::fs::read(&path).expect("read artifact");
    let mut corrupt = pristine.clone();
    corrupt[pristine.len() / 2] ^= 0x10;
    std::fs::write(&path, &corrupt).expect("write corrupt");
    match store.load_predictor(&key) {
        Err(StoreError::Codec(_)) => {}
        other => panic!("corrupt artifact accepted: {other:?}"),
    }

    // Truncation (a torn write) must be caught too.
    std::fs::write(&path, &pristine[..pristine.len() - 7]).expect("truncate");
    match store.load_predictor(&key) {
        Err(StoreError::Codec(_)) => {}
        other => panic!("truncated artifact accepted: {other:?}"),
    }

    // Restoring the pristine bytes restores loadability.
    std::fs::write(&path, &pristine).expect("restore");
    assert!(store.load_predictor(&key).expect("load").is_some());

    // An artifact from an older format version (version field rewritten,
    // CRC re-sealed so it is not corruption) is a cold start for its slot
    // — `Ok(None)` — not a run-killing error. This is what keeps a store
    // carrying pre-upgrade artifacts usable after a codec bump.
    let mut old = pristine.clone();
    old[4..6].copy_from_slice(&1u16.to_le_bytes());
    let n = old.len();
    let crc = hgnas_fleet::codec::crc32(&old[..n - 4]);
    old[n - 4..].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&path, &old).expect("write old-version artifact");
    assert!(
        store
            .load_predictor(&key)
            .expect("old version is not an error")
            .is_none(),
        "old-version artifact must cold-start, not decode"
    );
}

/// A one-stage fleet now enjoys the full artifact story: Pareto fronts
/// from the joint cache, predictor warm starts, and checkpoint resume at
/// the final generation on the second run.
#[test]
fn one_stage_fleet_with_store_completes_and_resumes() {
    let task = TaskConfig::tiny(13);
    let devices = [DeviceKind::Rtx3080, DeviceKind::JetsonTx2];
    let mut base = tiny_config(devices[0], LatencyMode::Predictor);
    base.strategy = hgnas_core::Strategy::OneStage;
    let temp = TempStore::new("onestage");
    let store = temp.open();

    let first = run_fleet(
        &task,
        &base,
        &FleetConfig::new(devices.to_vec()),
        Some(&store),
    )
    .expect("one-stage fleet runs");
    let second = run_fleet(
        &task,
        &base,
        &FleetConfig::new(devices.to_vec()),
        Some(&store),
    )
    .expect("one-stage fleet re-runs");
    for (a, b) in first.reports.iter().zip(&second.reports) {
        assert!(a.resumed_from_generation.is_none(), "first run is cold");
        assert!(
            !a.pareto.is_empty(),
            "{}: one-stage front from the joint cache",
            a.device
        );
        // Predictor warm start still works across runs, and the second
        // run resumes the persisted one-stage checkpoint at its final
        // generation.
        assert!(!a.warm_predictor);
        assert!(b.warm_predictor);
        assert_eq!(b.predictor_epochs_run, 0);
        assert_eq!(
            b.resumed_from_generation,
            Some(base.ea_stage2.iterations),
            "{}: one-stage resume at the completed generation",
            b.device
        );
        assert_outcomes_bit_identical(&a.outcome, &b.outcome);
    }
}

/// The standalone score-cache artifact round-trips bit-exactly.
#[test]
fn score_cache_round_trips() {
    let task = TaskConfig::tiny(11);
    let cfg = tiny_config(DeviceKind::I78700K, LatencyMode::Predictor);
    let out = Hgnas::new(task.clone(), cfg).run_with(RunOptions::default());
    let cp = out.checkpoint.expect("multi-stage run has a checkpoint");
    let cp = cp.as_multi_stage().expect("stage-2 checkpoint").clone();
    assert!(!cp.cache.is_empty());

    let temp = TempStore::new("cache");
    let store = temp.open();
    let key = ArtifactKey {
        device: DeviceKind::I78700K,
        fingerprint: 1,
    };
    store
        .save_score_cache(&key, &task, cp.functions, &cp.cache)
        .expect("save");
    let loaded = store.load_score_cache(&key).expect("load").expect("exists");
    assert_eq!(loaded.len(), cp.cache.len());
    for ((ga, ca), (gb, cb)) in cp.cache.iter().zip(&loaded) {
        assert_eq!(ga, gb);
        assert_eq!(ca.architecture, cb.architecture);
        assert_eq!(ca.score.to_bits(), cb.score.to_bits());
        assert_eq!(ca.accuracy.to_bits(), cb.accuracy.to_bits());
        assert_eq!(ca.latency_ms.to_bits(), cb.latency_ms.to_bits());
        assert_eq!(ca.cost_ms.to_bits(), cb.cost_ms.to_bits());
        assert_eq!(ca.valid, cb.valid);
    }

    // A missing slot is None, not an error.
    let empty_key = ArtifactKey {
        device: DeviceKind::V100,
        fingerprint: 2,
    };
    assert!(store.load_score_cache(&empty_key).expect("load").is_none());
}

/// Golden fingerprint values: the structured field-tagged hashes are a
/// persistence format (artifact file names embed them), so their values
/// for a fixed configuration are pinned here. If this test fails you
/// changed the fingerprint schema — bump [`hgnas_fleet::FINGERPRINT_SCHEMA`]
/// (or the codec version) deliberately and update the golden values, and
/// know that every existing artifact store goes cold.
#[test]
fn fingerprints_match_committed_golden_values() {
    let task = TaskConfig::tiny(42);
    let cfg = tiny_config(DeviceKind::JetsonTx2, LatencyMode::Predictor);

    let prefix = hgnas_fleet::prefix_fingerprint(&task, &cfg);
    let search = hgnas_fleet::search_fingerprint(&task, &cfg);
    let predictor = predictor_fingerprint(&task.predictor_context(), &cfg.predictor);

    assert_eq!(prefix, 0x005e_2678_ebcb_8339, "prefix fingerprint drifted");
    assert_eq!(search, 0x6679_f675_fecb_8751, "search fingerprint drifted");
    assert_eq!(
        predictor, 0xb59a_1ac7_f4b1_f545,
        "predictor fingerprint drifted"
    );
}

/// The prefix fingerprint covers exactly the inputs `prepare_session`
/// consumes: anything Stage 2 / objective / device-only must NOT move
/// it (those shards share a session), and every prefix-relevant field
/// must.
#[test]
fn prefix_fingerprint_ignores_exactly_the_non_prefix_fields() {
    let task = TaskConfig::tiny(42);
    let base = tiny_config(DeviceKind::JetsonTx2, LatencyMode::Predictor);
    let fp = |cfg: &SearchConfig| hgnas_fleet::prefix_fingerprint(&task, cfg);
    let baseline = fp(&base);

    // Not prefix-relevant: the session is shared across all of these.
    let mut c = base.clone();
    c.device = DeviceKind::RaspberryPi3B;
    assert_eq!(fp(&c), baseline, "device must not split sessions");
    let mut c = base.clone();
    c.alpha *= 2.0;
    c.beta *= 0.5;
    assert_eq!(fp(&c), baseline, "objective weights are stage-2 only");
    let mut c = base.clone();
    c.constraint_ms = Some(123.0);
    c.max_size_mb = Some(4.0);
    assert_eq!(fp(&c), baseline, "constraints are stage-2 only");
    let mut c = base.clone();
    c.ea_stage2.seed ^= 1;
    c.ea_stage2.population += 2;
    assert_eq!(fp(&c), baseline, "stage-2 EA params are not the prefix");
    let mut c = base.clone();
    c.latency_mode = LatencyMode::Measured;
    assert_eq!(fp(&c), baseline, "latency mode is eval-side only");
    let mut c = base.clone();
    c.predictor.epochs += 1;
    assert_eq!(fp(&c), baseline, "the latency predictor is not the prefix");
    let mut c = base.clone();
    c.eval_threads = 7;
    assert_eq!(fp(&c), baseline, "eval threads are an execution knob");

    // Prefix-relevant: any of these must produce a different session.
    let mut c = base.clone();
    c.seed ^= 1;
    assert_ne!(fp(&c), baseline, "the search seed derives the prefix RNG");
    let mut c = base.clone();
    c.ea_stage1.seed ^= 1;
    assert_ne!(fp(&c), baseline, "stage-1 EA seed");
    let mut c = base.clone();
    c.epochs_stage1 += 1;
    assert_ne!(fp(&c), baseline, "stage-1 epochs");
    let mut c = base.clone();
    c.epochs_stage2 += 1;
    assert_ne!(fp(&c), baseline, "pre-training epochs");
    let mut c = base.clone();
    c.eval_clouds += 1;
    assert_ne!(fp(&c), baseline, "eval cloud count feeds supernet eval");
    let other_task = TaskConfig::tiny(43);
    assert_ne!(
        hgnas_fleet::prefix_fingerprint(&other_task, &base),
        baseline,
        "the task is always prefix-relevant"
    );

    // The search fingerprint keeps full sensitivity where the prefix is
    // deliberately blind.
    let sfp = |cfg: &SearchConfig| hgnas_fleet::search_fingerprint(&task, cfg);
    let sbase = sfp(&base);
    let mut c = base.clone();
    c.device = DeviceKind::RaspberryPi3B;
    assert_ne!(sfp(&c), sbase, "checkpoints stay per-device");
    let mut c = base.clone();
    c.alpha *= 2.0;
    assert_ne!(sfp(&c), sbase);
    let mut c = base.clone();
    c.ea_stage2.seed ^= 1;
    assert_ne!(sfp(&c), sbase);
}

/// The [`hgnas_fleet::FieldHasher`] contract behind the golden values:
/// field *names* never enter the hash (a pure rename is free), while
/// *adding* a field — even one whose value is zero — changes it, as does
/// moving a value to a different tag or domain.
#[test]
fn field_hasher_is_rename_stable_and_addition_sensitive() {
    use hgnas_fleet::FieldHasher;

    // "Version A" of a struct hash…
    fn hash_with_old_names(population: u64, elite_fraction: f64) -> u64 {
        let mut h = FieldHasher::new("demo");
        h.uint(1, population);
        h.float64(2, elite_fraction);
        h.finish()
    }
    // …and the same struct after renaming both fields: only tags and
    // values feed the hasher, so the fingerprint cannot move.
    fn hash_with_new_names(pop_size: u64, elitism: f64) -> u64 {
        let mut h = FieldHasher::new("demo");
        h.uint(1, pop_size);
        h.float64(2, elitism);
        h.finish()
    }
    assert_eq!(
        hash_with_old_names(24, 0.25),
        hash_with_new_names(24, 0.25),
        "a pure rename must not invalidate stored artifacts"
    );

    // Adding a field changes the fingerprint even at a "default" value…
    let mut h = FieldHasher::new("demo");
    h.uint(1, 24);
    h.float64(2, 0.25);
    h.uint(3, 0);
    assert_ne!(h.finish(), hash_with_old_names(24, 0.25));

    // …as does re-tagging the same value, a type change at the same tag,
    // or the same fields under another domain.
    let mut h = FieldHasher::new("demo");
    h.uint(4, 24);
    h.float64(2, 0.25);
    assert_ne!(h.finish(), hash_with_old_names(24, 0.25));
    let mut h = FieldHasher::new("demo");
    h.uint(1, 24);
    h.float32(2, 0.25);
    assert_ne!(h.finish(), hash_with_old_names(24, 0.25));
    let mut h = FieldHasher::new("other");
    h.uint(1, 24);
    h.float64(2, 0.25);
    assert_ne!(h.finish(), hash_with_old_names(24, 0.25));

    // Option presence is a field of its own: None hashes differently
    // from an absent field and from Some(0.0).
    let absent = {
        let mut h = FieldHasher::new("demo");
        h.uint(1, 1);
        h.finish()
    };
    let none = {
        let mut h = FieldHasher::new("demo");
        h.uint(1, 1);
        h.opt_float64(2, None);
        h.finish()
    };
    let some_zero = {
        let mut h = FieldHasher::new("demo");
        h.uint(1, 1);
        h.opt_float64(2, Some(0.0));
        h.finish()
    };
    assert_ne!(absent, none);
    assert_ne!(none, some_zero);
}
