//! Property tests for the artifact codec (via the offline proptest shim):
//! arbitrary payloads round-trip bit-exactly, and arbitrary single-byte
//! corruption or truncation is always rejected with an error — never a
//! wrong decode that could warm-start a search from garbage.
//!
//! The same guarantees hold for the serve wire frames: round trips are
//! exact, truncation/corruption always reject, and a foreign protocol
//! version is refused even under a valid CRC.

use hgnas_fleet::codec::{crc32, ArtifactKind, Decoder, Encoder, FrameKind, PROTOCOL_VERSION};
use proptest::prelude::*;

/// Encodes an opaque byte payload as a sealed artifact.
fn encode(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new(kind);
    for &b in payload {
        e.put_u8(b);
    }
    e.finish()
}

/// Strategy for an arbitrary payload (possibly empty).
fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u32..256, 0usize..160)
        .prop_map(|v| v.into_iter().map(|x| x as u8).collect())
}

/// Strategy for an artifact kind.
fn kind() -> impl Strategy<Value = ArtifactKind> {
    (0usize..5).prop_map(|i| {
        [
            ArtifactKind::Predictor,
            ArtifactKind::Checkpoint,
            ArtifactKind::ScoreCache,
            ArtifactKind::OneStageCheckpoint,
            ArtifactKind::Session,
        ][i]
    })
}

/// Encodes an opaque byte payload as a sealed wire frame.
fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::frame(kind);
    for &b in payload {
        e.put_u8(b);
    }
    e.finish()
}

/// Strategy for a wire frame kind.
fn frame_kind() -> impl Strategy<Value = FrameKind> {
    (0usize..11).prop_map(|i| {
        [
            FrameKind::Hello,
            FrameKind::Submit,
            FrameKind::Attach,
            FrameKind::Bye,
            FrameKind::HelloAck,
            FrameKind::Accepted,
            FrameKind::Rejected,
            FrameKind::Event,
            FrameKind::Report,
            FrameKind::Pruned,
            FrameKind::Drain,
        ][i]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_payloads_round_trip(p in (kind(), payload())) {
        let (kind, payload) = p;
        let bytes = encode(kind, &payload);
        let mut d = Decoder::open(&bytes, kind).unwrap();
        for &b in &payload {
            prop_assert_eq!(d.take_u8().unwrap(), b);
        }
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn mixed_primitives_round_trip_bit_exactly(
        v in (0u64..u64::MAX, 0u32..u32::MAX, 0usize..1_000_000)
    ) {
        let (a, b, n) = v;
        let mut e = Encoder::new(ArtifactKind::Checkpoint);
        e.put_u64(a);
        // Arbitrary bit patterns (including NaNs and negative zero) must
        // survive the float round-trip exactly.
        e.put_f64(f64::from_bits(a));
        e.put_f32(f32::from_bits(b));
        e.put_usize(n);
        e.put_bool(n % 2 == 0);
        let bytes = e.finish();
        let mut d = Decoder::open(&bytes, ArtifactKind::Checkpoint).unwrap();
        prop_assert_eq!(d.take_u64().unwrap(), a);
        prop_assert_eq!(d.take_f64().unwrap().to_bits(), a);
        prop_assert_eq!(d.take_f32().unwrap().to_bits(), b);
        prop_assert_eq!(d.take_usize().unwrap(), n);
        prop_assert_eq!(d.take_bool().unwrap(), n % 2 == 0);
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn single_byte_corruption_is_always_rejected(
        c in (kind(), payload(), 0usize..4096, 1u32..256)
    ) {
        let (kind, payload, pos, flip) = c;
        let bytes = encode(kind, &payload);
        let mut bad = bytes.clone();
        let pos = pos % bad.len();
        bad[pos] ^= flip as u8; // flip != 0: the byte genuinely changes
        prop_assert!(
            Decoder::open(&bad, kind).is_err(),
            "flip 0x{:02x} at byte {} of {} accepted",
            flip,
            pos,
            bad.len()
        );
    }

    #[test]
    fn truncation_is_always_rejected(c in (kind(), payload(), 0usize..4096)) {
        let (kind, payload, cut) = c;
        let bytes = encode(kind, &payload);
        let cut = cut % bytes.len(); // strictly shorter than the artifact
        prop_assert!(
            Decoder::open(&bytes[..cut], kind).is_err(),
            "truncation to {} of {} bytes accepted",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn foreign_kind_is_always_rejected(c in (kind(), payload())) {
        let (kind, payload) = c;
        let bytes = encode(kind, &payload);
        let other = match kind {
            ArtifactKind::Predictor => ArtifactKind::Checkpoint,
            ArtifactKind::Checkpoint => ArtifactKind::ScoreCache,
            ArtifactKind::ScoreCache => ArtifactKind::OneStageCheckpoint,
            ArtifactKind::OneStageCheckpoint => ArtifactKind::Session,
            ArtifactKind::Session => ArtifactKind::Predictor,
        };
        prop_assert!(Decoder::open(&bytes, other).is_err());
    }

    #[test]
    fn arbitrary_frame_payloads_round_trip(p in (frame_kind(), payload())) {
        let (kind, payload) = p;
        let bytes = encode_frame(kind, &payload);
        let (got_kind, mut d) = Decoder::open_frame(&bytes).unwrap();
        prop_assert_eq!(got_kind, kind);
        for &b in &payload {
            prop_assert_eq!(d.take_u8().unwrap(), b);
        }
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn frame_truncation_is_always_rejected(c in (frame_kind(), payload(), 0usize..4096)) {
        let (kind, payload, cut) = c;
        let bytes = encode_frame(kind, &payload);
        let cut = cut % bytes.len(); // strictly shorter than the frame
        prop_assert!(
            Decoder::open_frame(&bytes[..cut]).is_err(),
            "truncation to {} of {} bytes accepted",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn frame_single_byte_corruption_is_always_rejected(
        c in (frame_kind(), payload(), 0usize..4096, 1u32..256)
    ) {
        let (kind, payload, pos, flip) = c;
        let bytes = encode_frame(kind, &payload);
        let mut bad = bytes.clone();
        let pos = pos % bad.len();
        bad[pos] ^= flip as u8; // flip != 0: the byte genuinely changes
        prop_assert!(
            Decoder::open_frame(&bad).is_err(),
            "flip 0x{:02x} at byte {} of {} accepted",
            flip,
            pos,
            bad.len()
        );
    }

    #[test]
    fn frame_foreign_protocol_version_is_always_rejected(
        c in (frame_kind(), payload(), 1u32..256)
    ) {
        let (kind, payload, bump) = c;
        // Patch the protocol byte to any *other* value and re-seal the
        // CRC, so only the version check can object.
        let sealed = encode_frame(kind, &payload);
        let mut bad = sealed[..sealed.len() - 4].to_vec();
        bad[4] = PROTOCOL_VERSION.wrapping_add(bump as u8);
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        match Decoder::open_frame(&bad) {
            Err(hgnas_fleet::CodecError::UnsupportedProtocol(v)) => {
                prop_assert_eq!(v, bad[4]);
            }
            other => prop_assert!(false, "expected UnsupportedProtocol, got {:?}", other.is_ok()),
        }
    }
}
