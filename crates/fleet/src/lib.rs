//! `hgnas-fleet` — the multi-device HGNAS search service.
//!
//! The paper's headline result is one architecture *per hardware target*;
//! this crate turns the single-device library into a service that searches
//! a whole device fleet at once:
//!
//! - [`oracle`]: an **asynchronous measurement oracle** — per-device worker
//!   pools behind request/response channels, with in-flight request
//!   batching, deterministic per-request RNG streams, and
//!   retry-with-backoff on transient [`hgnas_device::MeasureError`]s.
//!   Because generator state round-trips with each request, routing a
//!   search through the oracle is bit-transparent.
//! - [`scheduler`]: the **fleet scheduler** — multiplexes N search shards
//!   (possibly many per device: seeds, tasks, constraint sets) over a
//!   bounded kernel-thread budget with work-stealing, generation-granular
//!   preemptive time slices. Checkpoint/resume at slice boundaries makes
//!   preemption transparent: every cell of (shard count × thread budget ×
//!   stride) is bit-identical to serial runs. A budgeted **session
//!   cache** ([`SchedulerConfig::session_memory_budget`]) keeps each
//!   deterministic prefix — Stage-1 winners plus the pre-trained
//!   supernet — resident across slices, keyed by [`prefix_fingerprint`]
//!   so every shard sharing a prefix (same task + Stage-1 parameters,
//!   any device/objective/Stage-2 seed) shares one session. Builds are
//!   single-flight: concurrent claimants of the same prefix defer and
//!   run other shards while one build proceeds. Evicted sessions spill
//!   to the artifact store and restore without retraining.
//! - [`events`]: **streaming fleet reports** — the scheduler publishes
//!   [`FleetEvent`]s (shard started / generation done / Pareto updated /
//!   preempted / finished) over a channel; [`StreamingReporter`] folds
//!   them into incremental Table-1-style snapshots.
//! - [`driver`]: the **fleet driver** — the blocking one-shard-per-device
//!   API, a thin wrapper over the scheduler, merging per-device outcomes
//!   into a report with Pareto fronts and a cross-device summary table
//!   (the paper's Table 1 shape).
//! - [`artifacts`] + [`codec`]: the **cross-run artifact store** — a small
//!   versioned binary codec (no serde; the shims stay offline) persisting
//!   predictor weights, evaluator score caches and search checkpoints
//!   (multi-stage *and* one-stage), so a killed search resumes
//!   bit-identically, a second run on the same device skips predictor
//!   training entirely, and a later run can warm-start its evaluator from
//!   a prior run's score cache (`eval_stats.imported`) without changing
//!   the searched Pareto front.
//! - [`wire`]: the **serve wire protocol** — typed client/server frames
//!   (hello, submit, attach, streamed events, final reports) over the
//!   same CRC-sealed codec, with a one-byte protocol version checked
//!   before any payload is believed. The `hgnas-serve` daemon speaks
//!   this over an in-process duplex transport or TCP.
//!
//! # Example
//!
//! ```no_run
//! use hgnas_core::{SearchConfig, TaskConfig};
//! use hgnas_device::DeviceKind;
//! use hgnas_fleet::{run_fleet, ArtifactStore, FleetConfig};
//!
//! let task = TaskConfig::tiny(42);
//! let base = SearchConfig::fast(DeviceKind::Rtx3080);
//! let fleet = FleetConfig::new(vec![
//!     DeviceKind::Rtx3080,
//!     DeviceKind::JetsonTx2,
//!     DeviceKind::RaspberryPi3B,
//! ]);
//! let store = ArtifactStore::open("fleet-artifacts").unwrap();
//! let report = run_fleet(&task, &base, &fleet, Some(&store)).unwrap();
//! println!("{}", report.summary_table());
//! ```

pub mod artifacts;
pub mod codec;
pub mod driver;
pub mod events;
pub mod oracle;
pub mod scheduler;
pub mod wire;

pub use artifacts::{
    persona_predictor_fingerprint, predictor_fingerprint, prefix_fingerprint, search_fingerprint,
    ArtifactKey, ArtifactStore, FieldHasher, PrefixKey, PruneReport, StoreError,
    FINGERPRINT_SCHEMA,
};
pub use codec::{ArtifactKind, CodecError, FrameKind, PROTOCOL_VERSION, WIRE_MAGIC};
pub use driver::{
    cross_scenarios, run_fleet, run_fleet_with_events, DeviceReport, FleetConfig, FleetReport,
    ObjectiveSpec, ParetoPoint, ScenarioSpec,
};
pub use events::{channel as event_channel, FleetEvent, SessionAction, ShardId, StreamingReporter};
pub use oracle::{MeasurementOracle, OracleClient, OracleConfig, OracleStats, Ticket};
pub use scheduler::{
    PhaseTimings, Scheduler, SchedulerConfig, SchedulerReport, SessionCacheStats, ShardResult,
    ShardSpec,
};
pub use wire::{ClientFrame, ServerFrame, WireReport, WireShardReport};
