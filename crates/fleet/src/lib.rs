//! `hgnas-fleet` — the multi-device HGNAS search service.
//!
//! The paper's headline result is one architecture *per hardware target*;
//! this crate turns the single-device library into a service that searches
//! a whole device fleet at once:
//!
//! - [`oracle`]: an **asynchronous measurement oracle** — per-device worker
//!   pools behind request/response channels, with in-flight request
//!   batching, deterministic per-request RNG streams, and
//!   retry-with-backoff on transient [`hgnas_device::MeasureError`]s.
//!   Because generator state round-trips with each request, routing a
//!   search through the oracle is bit-transparent.
//! - [`driver`]: the **fleet driver** — shards a
//!   [`hgnas_core::SearchConfig`] across N [`hgnas_device::DeviceKind`]s,
//!   runs each shard's evolutionary search on its own thread against the
//!   shared oracle, and merges the per-device outcomes into a report with
//!   per-device Pareto fronts and a cross-device summary table (the
//!   paper's Table 1 shape).
//! - [`artifacts`] + [`codec`]: the **cross-run artifact store** — a small
//!   versioned binary codec (no serde; the shims stay offline) persisting
//!   predictor weights, evaluator score caches and search checkpoints, so
//!   a killed search resumes bit-identically and a second run on the same
//!   device skips predictor training entirely.
//!
//! # Example
//!
//! ```no_run
//! use hgnas_core::{SearchConfig, TaskConfig};
//! use hgnas_device::DeviceKind;
//! use hgnas_fleet::{run_fleet, ArtifactStore, FleetConfig};
//!
//! let task = TaskConfig::tiny(42);
//! let base = SearchConfig::fast(DeviceKind::Rtx3080);
//! let fleet = FleetConfig::new(vec![
//!     DeviceKind::Rtx3080,
//!     DeviceKind::JetsonTx2,
//!     DeviceKind::RaspberryPi3B,
//! ]);
//! let store = ArtifactStore::open("fleet-artifacts").unwrap();
//! let report = run_fleet(&task, &base, &fleet, Some(&store)).unwrap();
//! println!("{}", report.summary_table());
//! ```

pub mod artifacts;
pub mod codec;
pub mod driver;
pub mod oracle;

pub use artifacts::{
    predictor_fingerprint, search_fingerprint, ArtifactKey, ArtifactStore, StoreError,
};
pub use codec::{ArtifactKind, CodecError};
pub use driver::{run_fleet, DeviceReport, FleetConfig, FleetReport, ParetoPoint};
pub use oracle::{MeasurementOracle, OracleClient, OracleConfig, OracleStats, Ticket};
