//! The fleet driver: the blocking one-shard-per-device API, now a thin
//! wrapper over the [`crate::scheduler`].
//!
//! [`run_fleet`] shards one search configuration across N devices, runs
//! the shards through a [`Scheduler`] (shared measurement oracle in
//! measured mode, shared artifact store, optional preemptive time
//! slicing under a bounded thread budget) and blocks until the merged
//! [`FleetReport`] is ready. Every shard's outcome is bit-identical to a
//! serial single-device run of that configuration — the fleet adds
//! breadth, never noise. [`run_fleet_with_events`] is the same call with
//! a live [`FleetEvent`] stream for incremental reporting.

use crate::artifacts::{search_fingerprint, ArtifactKey, ArtifactStore, StoreError};
use crate::events::FleetEvent;
use crate::oracle::{OracleConfig, OracleStats};
use crate::scheduler::{Scheduler, SchedulerConfig, ShardSpec};
use crossbeam::channel::Sender;
use hgnas_core::{SearchConfig, SearchOutcome, Strategy, TaskConfig};
use hgnas_device::DeviceKind;
use hgnas_ops::OpType;
use std::fmt::Write as _;

/// Fleet-level configuration: which devices to shard over, how the shared
/// oracle behaves, and how the scheduler multiplexes the shards.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Target devices, one search shard each.
    pub devices: Vec<DeviceKind>,
    /// Oracle tuning (measured mode only).
    pub oracle: OracleConfig,
    /// Persist a checkpoint every N generations (1 = every boundary).
    /// Ignored without an artifact store (events still fire per boundary).
    pub checkpoint_every: usize,
    /// Total kernel-thread budget the scheduler multiplexes shards over.
    /// `0` (the default) keeps the legacy shape: one worker per shard,
    /// each with the base config's own `eval_threads`.
    pub threads: usize,
    /// Generations per scheduler time slice; `0` (the default) runs every
    /// shard to completion unpreempted. Results are bit-identical either
    /// way — slicing only changes scheduling.
    pub preemption_stride: usize,
    /// Warm-start each shard from the score cache a prior run *with this
    /// seed* persisted (per shard device, same task and configuration
    /// otherwise). Predictor-mode multi-stage fleets consume it
    /// bit-transparently; entries are reused verbatim, surfacing as
    /// `eval_stats.imported`. Needs an artifact store; a missing source
    /// cache is simply a cold start.
    pub warm_start_seed: Option<u64>,
    /// Approximate byte budget for the scheduler's session cache (the
    /// per-shard Stage-1 outcome + pre-trained supernet kept resident
    /// across preemption slices). `None` (the default) keeps every
    /// session; a budget evicts least-recently-used sessions — spilled to
    /// the artifact store when one is attached, replayed otherwise.
    /// Results are bit-identical at any budget; see
    /// [`crate::SchedulerConfig::session_memory_budget`].
    pub session_memory_budget: Option<u64>,
}

impl FleetConfig {
    /// Fleet over `devices` with default oracle settings, per-generation
    /// checkpointing, and no preemption.
    pub fn new(devices: impl Into<Vec<DeviceKind>>) -> Self {
        FleetConfig {
            devices: devices.into(),
            oracle: OracleConfig::default(),
            checkpoint_every: 1,
            threads: 0,
            preemption_stride: 0,
            warm_start_seed: None,
            session_memory_budget: None,
        }
    }
}

/// One point of a device's latency/accuracy Pareto front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Latency as the search saw it, ms.
    pub latency_ms: f64,
    /// One-shot supernet accuracy.
    pub accuracy: f64,
    /// The candidate's op-type genome.
    pub genome: Vec<OpType>,
}

/// Everything one device shard produced.
#[derive(Debug)]
pub struct DeviceReport {
    /// The shard's target device.
    pub device: DeviceKind,
    /// The shard's search outcome (identical to a serial run's).
    pub outcome: SearchOutcome,
    /// Latency/accuracy Pareto front over every constraint-satisfying
    /// candidate the shard scored, fastest first.
    pub pareto: Vec<ParetoPoint>,
    /// Predictor-training epochs this run actually executed (0 on a
    /// warm start from the artifact store).
    pub predictor_epochs_run: usize,
    /// Whether the predictor came from the artifact store.
    pub warm_predictor: bool,
    /// The generation this shard resumed from, when a checkpoint existed.
    pub resumed_from_generation: Option<usize>,
    /// Scheduler time slices the shard consumed (1 without preemption).
    pub slices: u64,
    /// How many times the shard's deterministic prefix (Stage 1 +
    /// supernet pre-training) was computed; 1 unless a session memory
    /// budget forced replays.
    pub prefix_builds: u64,
}

/// The merged fleet outcome.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-device reports, in [`FleetConfig::devices`] order.
    pub reports: Vec<DeviceReport>,
    /// Oracle counters (measured mode only).
    pub oracle_stats: Option<OracleStats>,
}

impl FleetReport {
    /// A cross-device summary in the shape of the paper's Table 1: per
    /// device, the found model against the DGCNN reference. "Hit %"
    /// counts both memo-cache hits and warm-start imports over total
    /// submissions.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>10} {:>8} {:>7} {:>8} {:>9} {:>7}",
            "Device", "Found ms", "DGCNN ms", "Speedup", "Acc", "Score", "Search h", "Hit %"
        );
        for r in &self.reports {
            let o = &r.outcome;
            let hit_pct = o.eval_stats.map_or(0.0, |e| {
                100.0 * (e.hits + e.imported) as f64 / e.submitted.max(1) as f64
            });
            let _ = writeln!(
                s,
                "{:<14} {:>10.2} {:>10.2} {:>7.1}x {:>7.3} {:>8.3} {:>9.2} {:>6.1}%",
                r.device.name(),
                o.best.latency_ms,
                o.reference_ms,
                o.reference_ms / o.best.latency_ms.max(1e-9),
                o.best.supernet_accuracy,
                o.best.score,
                o.search_hours,
                hit_pct
            );
        }
        s
    }
}

/// Shards `base` across `fleet.devices` and runs every shard through the
/// scheduler against the shared oracle (measured mode) and artifact
/// store, blocking until all of them finish.
///
/// Every shard's `SearchOutcome` is bit-identical to what a serial
/// `Hgnas::new(task, base-with-that-device).run()` produces: the oracle is
/// bit-transparent, warm-started predictors reproduce the trained ones
/// exactly, preemption resumes checkpoints bit-identically, and imported
/// score caches only skip re-scoring work.
///
/// # Errors
///
/// The first [`StoreError`] any shard hit (artifact I/O or a corrupt
/// artifact).
///
/// # Panics
///
/// Panics if `fleet.devices` is empty or a scheduler worker panics.
pub fn run_fleet(
    task: &TaskConfig,
    base: &SearchConfig,
    fleet: &FleetConfig,
    store: Option<&ArtifactStore>,
) -> Result<FleetReport, StoreError> {
    run_fleet_with_events(task, base, fleet, store, None)
}

/// [`run_fleet`] with a live event stream: every scheduler event is
/// forwarded to `events` as it happens, so a consumer thread (e.g. a
/// [`crate::StreamingReporter`] loop) can render incremental fleet
/// reports while the search is still running. Dropping the receiver
/// never blocks the fleet.
///
/// # Errors
///
/// As [`run_fleet`].
///
/// # Panics
///
/// As [`run_fleet`].
pub fn run_fleet_with_events(
    task: &TaskConfig,
    base: &SearchConfig,
    fleet: &FleetConfig,
    store: Option<&ArtifactStore>,
    events: Option<Sender<FleetEvent>>,
) -> Result<FleetReport, StoreError> {
    assert!(!fleet.devices.is_empty(), "fleet needs at least one device");
    let mut specs = Vec::with_capacity(fleet.devices.len());
    for &device in &fleet.devices {
        let mut cfg = base.clone();
        cfg.device = device;
        let imported_cache = match (fleet.warm_start_seed, store) {
            (Some(seed), Some(store)) if base.strategy == Strategy::MultiStage => {
                let mut source = cfg.clone();
                source.seed = seed;
                let key = ArtifactKey {
                    device,
                    fingerprint: search_fingerprint(task, &source),
                };
                store.load_score_cache(&key)?
            }
            _ => None,
        };
        specs.push(ShardSpec {
            task: task.clone(),
            config: cfg,
            imported_cache,
        });
    }
    let scheduler = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: fleet.threads,
            preemption_stride: fleet.preemption_stride,
            checkpoint_every: fleet.checkpoint_every,
            oracle: fleet.oracle.clone(),
            max_slices: None,
            session_memory_budget: fleet.session_memory_budget,
            stop: None,
        },
    );
    let report = scheduler.run(store, events)?;
    let reports = report
        .shards
        .into_iter()
        .map(|s| DeviceReport {
            device: s.device,
            outcome: s
                .outcome
                .expect("an unbudgeted scheduler runs every shard to completion"),
            pareto: s.pareto,
            predictor_epochs_run: s.predictor_epochs_run,
            warm_predictor: s.warm_predictor,
            resumed_from_generation: s.resumed_from_generation,
            slices: s.slices,
            prefix_builds: s.prefix_builds,
        })
        .collect();
    Ok(FleetReport {
        reports,
        oracle_stats: report.oracle_stats,
    })
}
