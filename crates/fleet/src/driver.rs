//! The fleet driver: shard one search configuration across N devices.
//!
//! Each device shard runs the full HGNAS pipeline on its own thread with
//! the *same* task and seed, so every shard's outcome is bit-identical to
//! a serial single-device run of that configuration — the fleet adds
//! breadth, never noise. Shards share the asynchronous measurement oracle
//! (measured mode) and the artifact store: predictors warm-start from
//! persisted weights, checkpoints persist at every generation boundary,
//! and interrupted shards resume where they were killed.

use crate::artifacts::{
    predictor_fingerprint, search_fingerprint, ArtifactKey, ArtifactStore, StoreError,
};
use crate::oracle::{MeasurementOracle, OracleConfig, OracleStats};
use hgnas_core::{
    pareto_front, Hgnas, LatencyMode, PretrainedPredictor, RunOptions, SearchCheckpoint,
    SearchConfig, SearchOutcome, Strategy, TaskConfig,
};
use hgnas_device::DeviceKind;
use hgnas_ops::OpType;
use hgnas_predictor::LatencyPredictor;
use hgnas_tensor::threads::with_kernel_threads;
use std::fmt::Write as _;
use std::sync::Arc;

/// Fleet-level configuration: which devices to shard over and how the
/// shared oracle behaves.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Target devices, one search shard each.
    pub devices: Vec<DeviceKind>,
    /// Oracle tuning (measured mode only).
    pub oracle: OracleConfig,
    /// Persist a checkpoint every N Stage-2 generations (1 = every
    /// boundary). Ignored without an artifact store.
    pub checkpoint_every: usize,
}

impl FleetConfig {
    /// Fleet over `devices` with default oracle settings and per-generation
    /// checkpointing.
    pub fn new(devices: impl Into<Vec<DeviceKind>>) -> Self {
        FleetConfig {
            devices: devices.into(),
            oracle: OracleConfig::default(),
            checkpoint_every: 1,
        }
    }
}

/// One point of a device's latency/accuracy Pareto front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Latency as the search saw it, ms.
    pub latency_ms: f64,
    /// One-shot supernet accuracy.
    pub accuracy: f64,
    /// The candidate's op-type genome.
    pub genome: Vec<OpType>,
}

/// Everything one device shard produced.
#[derive(Debug)]
pub struct DeviceReport {
    /// The shard's target device.
    pub device: DeviceKind,
    /// The shard's search outcome (identical to a serial run's).
    pub outcome: SearchOutcome,
    /// Latency/accuracy Pareto front over every constraint-satisfying
    /// candidate the shard scored, fastest first.
    pub pareto: Vec<ParetoPoint>,
    /// Predictor-training epochs this run actually executed (0 on a
    /// warm start from the artifact store).
    pub predictor_epochs_run: usize,
    /// Whether the predictor came from the artifact store.
    pub warm_predictor: bool,
    /// The generation this shard resumed from, when a checkpoint existed.
    pub resumed_from_generation: Option<usize>,
}

/// The merged fleet outcome.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-device reports, in [`FleetConfig::devices`] order.
    pub reports: Vec<DeviceReport>,
    /// Oracle counters (measured mode only).
    pub oracle_stats: Option<OracleStats>,
}

impl FleetReport {
    /// A cross-device summary in the shape of the paper's Table 1: per
    /// device, the found model against the DGCNN reference.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>10} {:>8} {:>7} {:>8} {:>9} {:>7}",
            "Device", "Found ms", "DGCNN ms", "Speedup", "Acc", "Score", "Search h", "Hit %"
        );
        for r in &self.reports {
            let o = &r.outcome;
            let hit_pct = o.eval_stats.map_or(0.0, |e| {
                100.0 * e.hits as f64 / (e.hits + e.misses).max(1) as f64
            });
            let _ = writeln!(
                s,
                "{:<14} {:>10.2} {:>10.2} {:>7.1}x {:>7.3} {:>8.3} {:>9.2} {:>6.1}%",
                r.device.name(),
                o.best.latency_ms,
                o.reference_ms,
                o.reference_ms / o.best.latency_ms.max(1e-9),
                o.best.supernet_accuracy,
                o.best.score,
                o.search_hours,
                hit_pct
            );
        }
        s
    }
}

/// Builds a shard's Pareto front from its final score cache: every valid
/// scored candidate competes on (latency, accuracy).
fn pareto_of(cp: &SearchCheckpoint) -> Vec<ParetoPoint> {
    let valid: Vec<_> = cp.cache.iter().filter(|(_, c)| c.valid).collect();
    let points: Vec<(f64, f64)> = valid
        .iter()
        .map(|(_, c)| (c.latency_ms, c.accuracy))
        .collect();
    let mut front: Vec<ParetoPoint> = pareto_front(&points)
        .into_iter()
        .map(|i| ParetoPoint {
            latency_ms: valid[i].1.latency_ms,
            accuracy: valid[i].1.accuracy,
            genome: valid[i].0.clone(),
        })
        .collect();
    front.sort_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms));
    front
}

/// Runs one device shard end to end (predictor warm-start, resume,
/// checkpoint persistence, the search itself).
fn run_shard(
    task: &TaskConfig,
    base: &SearchConfig,
    device: DeviceKind,
    fleet: &FleetConfig,
    store: Option<&ArtifactStore>,
    oracle: Option<&MeasurementOracle>,
) -> Result<DeviceReport, StoreError> {
    let mut cfg = base.clone();
    cfg.device = device;

    // Predictor: artifact store first, training (then persisting) second.
    let mut warm_predictor = false;
    let mut predictor_epochs_run = 0;
    let mut pretrained = None;
    if cfg.latency_mode == LatencyMode::Predictor {
        let key = ArtifactKey {
            device,
            fingerprint: predictor_fingerprint(&task.predictor_context(), &cfg.predictor),
        };
        if let Some(store) = store {
            if let Some(snap) = store.load_predictor(&key)? {
                let (p, stats) = LatencyPredictor::from_snapshot(&snap);
                pretrained = Some(PretrainedPredictor {
                    predictor: Arc::new(p),
                    stats,
                });
                warm_predictor = true;
            }
        }
        if pretrained.is_none() {
            // Training runs under the shard's full thread budget, exactly
            // like the in-search training path, so `PredictorConfig::batch`
            // parallelism applies to fleet cold starts too (bit-identical
            // either way).
            let (p, stats) = with_kernel_threads(cfg.eval_threads, || {
                LatencyPredictor::train(device, &task.predictor_context(), &cfg.predictor)
            });
            predictor_epochs_run = cfg.predictor.epochs;
            if let Some(store) = store {
                store.save_predictor(&key, &p.snapshot(&stats))?;
            }
            pretrained = Some(PretrainedPredictor {
                predictor: Arc::new(p),
                stats,
            });
        }
    }

    // Checkpoint persistence and resume only exist for the multi-stage
    // strategy; a one-stage fleet still shares the oracle and store-backed
    // predictors but runs each shard start-to-finish.
    let checkpointing = store.is_some() && cfg.strategy == Strategy::MultiStage;
    let search_key = ArtifactKey {
        device,
        fingerprint: search_fingerprint(task, &cfg),
    };
    let resume = match store {
        Some(store) if checkpointing => store.load_checkpoint(&search_key)?,
        _ => None,
    };
    let resumed_from_generation = resume.as_ref().map(|cp| cp.generation);

    let mut sink_err: Option<StoreError> = None;
    let mut sink = |cp: &SearchCheckpoint| {
        if sink_err.is_some() {
            return;
        }
        if let Some(store) = store {
            if let Err(e) = store.save_checkpoint(&search_key, task, cp) {
                sink_err = Some(e);
            }
        }
    };

    let opts = RunOptions {
        backend: oracle.map(|o| Arc::new(o.client(device)) as Arc<dyn hgnas_core::MeasureBackend>),
        predictor: pretrained,
        resume,
        checkpoint_sink: checkpointing
            .then_some(&mut sink as &mut dyn for<'a> FnMut(&'a SearchCheckpoint)),
        checkpoint_every: fleet.checkpoint_every,
        abort_after_generation: None,
    };
    let out = Hgnas::new(task.clone(), cfg).run_with(opts);
    if let Some(e) = sink_err {
        return Err(e);
    }
    let outcome = out
        .outcome
        .expect("fleet shards run to completion (no abort hook)");
    let pareto = out.checkpoint.as_ref().map(pareto_of).unwrap_or_default();
    if let (Some(store), Some(cp)) = (store, &out.checkpoint) {
        store.save_checkpoint(&search_key, task, cp)?;
        store.save_score_cache(&search_key, task, cp.functions, &cp.cache)?;
    }
    Ok(DeviceReport {
        device,
        outcome,
        pareto,
        predictor_epochs_run,
        warm_predictor,
        resumed_from_generation,
    })
}

/// Shards `base` across `fleet.devices` and runs every shard concurrently
/// against the shared oracle (measured mode) and artifact store.
///
/// Every shard's `SearchOutcome` is bit-identical to what a serial
/// `Hgnas::new(task, base-with-that-device).run()` produces: the oracle is
/// bit-transparent and warm-started predictors reproduce the trained ones
/// exactly.
///
/// # Errors
///
/// The first [`StoreError`] any shard hit (artifact I/O or a corrupt
/// artifact).
///
/// # Panics
///
/// Panics if `fleet.devices` is empty or a shard thread panics.
pub fn run_fleet(
    task: &TaskConfig,
    base: &SearchConfig,
    fleet: &FleetConfig,
    store: Option<&ArtifactStore>,
) -> Result<FleetReport, StoreError> {
    assert!(!fleet.devices.is_empty(), "fleet needs at least one device");
    let oracle = (base.latency_mode == LatencyMode::Measured)
        .then(|| MeasurementOracle::start(&fleet.devices, &fleet.oracle));

    let results: Vec<Result<DeviceReport, StoreError>> = crossbeam::scope(|s| {
        let handles: Vec<_> = fleet
            .devices
            .iter()
            .map(|&device| {
                let oracle = oracle.as_ref();
                s.spawn(move |_| run_shard(task, base, device, fleet, store, oracle))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("fleet shard thread panicked");

    let oracle_stats = oracle.map(MeasurementOracle::shutdown);
    let reports = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(FleetReport {
        reports,
        oracle_stats,
    })
}
