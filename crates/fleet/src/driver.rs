//! The fleet driver: the blocking one-shard-per-device API, now a thin
//! wrapper over the [`crate::scheduler`].
//!
//! [`run_fleet`] shards one search configuration across N devices, runs
//! the shards through a [`Scheduler`] (shared measurement oracle in
//! measured mode, shared artifact store, optional preemptive time
//! slicing under a bounded thread budget) and blocks until the merged
//! [`FleetReport`] is ready. Every shard's outcome is bit-identical to a
//! serial single-device run of that configuration — the fleet adds
//! breadth, never noise. [`run_fleet_with_events`] is the same call with
//! a live [`FleetEvent`] stream for incremental reporting.

use crate::artifacts::{search_fingerprint, ArtifactKey, ArtifactStore, StoreError};
use crate::events::FleetEvent;
use crate::oracle::{OracleConfig, OracleStats};
use crate::scheduler::{Scheduler, SchedulerConfig, ShardSpec};
use crossbeam::channel::Sender;
use hgnas_core::{SearchConfig, SearchOutcome, Strategy, TaskConfig};
use hgnas_device::{DeviceKind, DevicePersona};
use hgnas_ops::OpType;
use hgnas_pointcloud::TaskKind;
use std::fmt::Write as _;

/// One named {task × objective × persona} cell of a fleet: a complete
/// task + search configuration pair with a display label. When
/// [`FleetConfig::scenarios`] is non-empty the fleet runs one shard per
/// scenario instead of one per device.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Display label (shows up in reports and the summary table).
    pub label: String,
    /// The scenario's task (kind, dataset, geometry).
    pub task: TaskConfig,
    /// The scenario's full search configuration (device/persona,
    /// objective weights, constraints, seeds).
    pub config: SearchConfig,
}

impl ScenarioSpec {
    /// A scenario from explicit parts.
    pub fn new(label: impl Into<String>, task: TaskConfig, config: SearchConfig) -> Self {
        ScenarioSpec {
            label: label.into(),
            task,
            config,
        }
    }
}

/// A named multi-metric objective: the Eq. (3) weights plus the optional
/// hard caps, applied onto a base [`SearchConfig`] by
/// [`cross_scenarios`]. Zero `gamma`/`delta` and `None` caps leave the
/// base's legacy α·acc − β·lat scoring untouched.
#[derive(Debug, Clone)]
pub struct ObjectiveSpec {
    /// Display label.
    pub label: String,
    /// Accuracy weight α.
    pub alpha: f64,
    /// Latency weight β.
    pub beta: f64,
    /// Energy weight γ (0 disables the energy term).
    pub gamma: f64,
    /// Peak-memory weight δ (0 disables the memory term).
    pub delta: f64,
    /// Hard model-size cap, MB.
    pub max_size_mb: Option<f64>,
    /// Hard per-inference energy cap, mJ.
    pub max_energy_mj: Option<f64>,
    /// Hard peak-memory cap, MB.
    pub max_peak_mem_mb: Option<f64>,
}

impl ObjectiveSpec {
    /// The classic accuracy/latency objective with no extra axes.
    pub fn accuracy_latency(label: impl Into<String>, alpha: f64, beta: f64) -> Self {
        ObjectiveSpec {
            label: label.into(),
            alpha,
            beta,
            gamma: 0.0,
            delta: 0.0,
            max_size_mb: None,
            max_energy_mj: None,
            max_peak_mem_mb: None,
        }
    }

    /// Adds an energy term (weight γ, optional hard cap in mJ).
    pub fn with_energy(mut self, gamma: f64, max_energy_mj: Option<f64>) -> Self {
        self.gamma = gamma;
        self.max_energy_mj = max_energy_mj;
        self
    }

    /// Adds a peak-memory term (weight δ, optional hard cap in MB).
    pub fn with_peak_mem(mut self, delta: f64, max_peak_mem_mb: Option<f64>) -> Self {
        self.delta = delta;
        self.max_peak_mem_mb = max_peak_mem_mb;
        self
    }

    /// Applies this objective onto a base config, leaving everything else
    /// (EA budgets, seeds, latency mode) untouched.
    pub fn apply(&self, base: &SearchConfig) -> SearchConfig {
        let mut cfg = base.clone();
        cfg.alpha = self.alpha;
        cfg.beta = self.beta;
        cfg.gamma = self.gamma;
        cfg.delta = self.delta;
        cfg.max_size_mb = self.max_size_mb;
        cfg.max_energy_mj = self.max_energy_mj;
        cfg.max_peak_mem_mb = self.max_peak_mem_mb;
        cfg
    }
}

/// Builds the full {task × objective × persona} cross product over a base
/// task/config pair: every tuple becomes one labelled [`ScenarioSpec`]
/// (label `task/objective/persona`), in row-major order (tasks outermost,
/// personas innermost). This is the data-driven replacement for the
/// hard-coded one-shard-per-`DeviceKind` fleet shape.
pub fn cross_scenarios(
    base_task: &TaskConfig,
    base: &SearchConfig,
    tasks: &[TaskKind],
    objectives: &[ObjectiveSpec],
    personas: &[DevicePersona],
) -> Vec<ScenarioSpec> {
    let mut out = Vec::with_capacity(tasks.len() * objectives.len() * personas.len());
    for &kind in tasks {
        let mut task = base_task.clone();
        task.task_kind = kind;
        for obj in objectives {
            let cfg = obj.apply(base);
            for persona in personas {
                let label = format!("{}/{}/{}", kind.name(), obj.label, persona.name);
                out.push(ScenarioSpec::new(
                    label,
                    task.clone(),
                    cfg.clone().with_persona(persona.clone()),
                ));
            }
        }
    }
    out
}

/// Fleet-level configuration: which devices or scenarios to shard over,
/// how the shared oracle behaves, and how the scheduler multiplexes the
/// shards.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Target devices, one search shard each (the legacy fleet shape;
    /// ignored when `scenarios` is non-empty).
    pub devices: Vec<DeviceKind>,
    /// Explicit {task × objective × persona} scenarios, one shard each.
    /// When non-empty this wins over `devices`, and each scenario's own
    /// task/config override the base pair passed to [`run_fleet`].
    /// Usually built with [`cross_scenarios`].
    pub scenarios: Vec<ScenarioSpec>,
    /// Oracle tuning (measured mode only).
    pub oracle: OracleConfig,
    /// Persist a checkpoint every N generations (1 = every boundary).
    /// Ignored without an artifact store (events still fire per boundary).
    pub checkpoint_every: usize,
    /// Total kernel-thread budget the scheduler multiplexes shards over.
    /// `0` (the default) keeps the legacy shape: one worker per shard,
    /// each with the base config's own `eval_threads`.
    pub threads: usize,
    /// Generations per scheduler time slice; `0` (the default) runs every
    /// shard to completion unpreempted. Results are bit-identical either
    /// way — slicing only changes scheduling.
    pub preemption_stride: usize,
    /// Warm-start each shard from the score cache a prior run *with this
    /// seed* persisted (per shard device, same task and configuration
    /// otherwise). Predictor-mode multi-stage fleets consume it
    /// bit-transparently; entries are reused verbatim, surfacing as
    /// `eval_stats.imported`. Needs an artifact store; a missing source
    /// cache is simply a cold start.
    pub warm_start_seed: Option<u64>,
    /// Approximate byte budget for the scheduler's session cache (the
    /// per-shard Stage-1 outcome + pre-trained supernet kept resident
    /// across preemption slices). `None` (the default) keeps every
    /// session; a budget evicts least-recently-used sessions — spilled to
    /// the artifact store when one is attached, replayed otherwise.
    /// Results are bit-identical at any budget; see
    /// [`crate::SchedulerConfig::session_memory_budget`].
    pub session_memory_budget: Option<u64>,
}

impl FleetConfig {
    /// Fleet over `devices` with default oracle settings, per-generation
    /// checkpointing, and no preemption.
    pub fn new(devices: impl Into<Vec<DeviceKind>>) -> Self {
        FleetConfig {
            devices: devices.into(),
            scenarios: Vec::new(),
            oracle: OracleConfig::default(),
            checkpoint_every: 1,
            threads: 0,
            preemption_stride: 0,
            warm_start_seed: None,
            session_memory_budget: None,
        }
    }

    /// Fleet over explicit scenarios (see [`cross_scenarios`]) with the
    /// same defaults as [`FleetConfig::new`].
    pub fn over_scenarios(scenarios: impl Into<Vec<ScenarioSpec>>) -> Self {
        let mut cfg = FleetConfig::new(Vec::new());
        cfg.scenarios = scenarios.into();
        cfg
    }
}

/// One point of a shard's Pareto front. Always carries the latency and
/// accuracy axes; energy and peak memory join exactly when the shard's
/// objective priced them (then the front is the N-dimensional
/// non-dominated set over all present axes).
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// Latency as the search saw it, ms.
    pub latency_ms: f64,
    /// One-shot supernet accuracy.
    pub accuracy: f64,
    /// Modelled per-inference energy, mJ (objectives pricing energy only).
    pub energy_mj: Option<f64>,
    /// Modelled peak working-set, MB (objectives pricing memory only).
    pub peak_mem_mb: Option<f64>,
    /// The candidate's op-type genome.
    pub genome: Vec<OpType>,
}

/// Everything one device shard produced.
#[derive(Debug)]
pub struct DeviceReport {
    /// The shard's scenario label (the device name on the legacy
    /// one-shard-per-device path).
    pub scenario: String,
    /// The shard's target device (a persona's base kind when the scenario
    /// pinned a persona).
    pub device: DeviceKind,
    /// The shard's search outcome (identical to a serial run's).
    pub outcome: SearchOutcome,
    /// Latency/accuracy Pareto front over every constraint-satisfying
    /// candidate the shard scored, fastest first.
    pub pareto: Vec<ParetoPoint>,
    /// Predictor-training epochs this run actually executed (0 on a
    /// warm start from the artifact store).
    pub predictor_epochs_run: usize,
    /// Whether the predictor came from the artifact store.
    pub warm_predictor: bool,
    /// The generation this shard resumed from, when a checkpoint existed.
    pub resumed_from_generation: Option<usize>,
    /// Scheduler time slices the shard consumed (1 without preemption).
    pub slices: u64,
    /// How many times the shard's deterministic prefix (Stage 1 +
    /// supernet pre-training) was computed; 1 unless a session memory
    /// budget forced replays.
    pub prefix_builds: u64,
}

/// The merged fleet outcome.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-device reports, in [`FleetConfig::devices`] order.
    pub reports: Vec<DeviceReport>,
    /// Oracle counters (measured mode only).
    pub oracle_stats: Option<OracleStats>,
}

impl FleetReport {
    /// A cross-device summary in the shape of the paper's Table 1: per
    /// device, the found model against the DGCNN reference. "Hit %"
    /// counts both memo-cache hits and warm-start imports over total
    /// submissions.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<36} {:>10} {:>10} {:>8} {:>7} {:>8} {:>8} {:>8} {:>9} {:>7}",
            "Scenario",
            "Found ms",
            "DGCNN ms",
            "Speedup",
            "Acc",
            "mJ",
            "MemMB",
            "Score",
            "Search h",
            "Hit %"
        );
        for r in &self.reports {
            let o = &r.outcome;
            let hit_pct = o.eval_stats.map_or(0.0, |e| {
                100.0 * (e.hits + e.imported) as f64 / e.submitted.max(1) as f64
            });
            // The extra axes live on the scored candidates, not the best
            // model itself: show them when the best genome sits on the
            // front (it does whenever it is constraint-valid and
            // non-dominated), dashes otherwise.
            let best_point = r.pareto.iter().find(|p| p.genome == o.best.genome);
            let fmt_axis = |v: Option<f64>| match v {
                Some(v) => format!("{v:>8.2}"),
                None => format!("{:>8}", "-"),
            };
            let _ = writeln!(
                s,
                "{:<36} {:>10.2} {:>10.2} {:>7.1}x {:>7.3} {} {} {:>8.3} {:>9.2} {:>6.1}%",
                r.scenario,
                o.best.latency_ms,
                o.reference_ms,
                o.reference_ms / o.best.latency_ms.max(1e-9),
                o.best.supernet_accuracy,
                fmt_axis(best_point.and_then(|p| p.energy_mj)),
                fmt_axis(best_point.and_then(|p| p.peak_mem_mb)),
                o.best.score,
                o.search_hours,
                hit_pct
            );
        }
        s
    }
}

/// Shards `base` across `fleet.devices` and runs every shard through the
/// scheduler against the shared oracle (measured mode) and artifact
/// store, blocking until all of them finish.
///
/// Every shard's `SearchOutcome` is bit-identical to what a serial
/// `Hgnas::new(task, base-with-that-device).run()` produces: the oracle is
/// bit-transparent, warm-started predictors reproduce the trained ones
/// exactly, preemption resumes checkpoints bit-identically, and imported
/// score caches only skip re-scoring work.
///
/// # Errors
///
/// The first [`StoreError`] any shard hit (artifact I/O or a corrupt
/// artifact).
///
/// # Panics
///
/// Panics if `fleet` names no devices and no scenarios, or a scheduler
/// worker panics.
pub fn run_fleet(
    task: &TaskConfig,
    base: &SearchConfig,
    fleet: &FleetConfig,
    store: Option<&ArtifactStore>,
) -> Result<FleetReport, StoreError> {
    run_fleet_with_events(task, base, fleet, store, None)
}

/// [`run_fleet`] with a live event stream: every scheduler event is
/// forwarded to `events` as it happens, so a consumer thread (e.g. a
/// [`crate::StreamingReporter`] loop) can render incremental fleet
/// reports while the search is still running. Dropping the receiver
/// never blocks the fleet.
///
/// # Errors
///
/// As [`run_fleet`].
///
/// # Panics
///
/// As [`run_fleet`].
pub fn run_fleet_with_events(
    task: &TaskConfig,
    base: &SearchConfig,
    fleet: &FleetConfig,
    store: Option<&ArtifactStore>,
    events: Option<Sender<FleetEvent>>,
) -> Result<FleetReport, StoreError> {
    // Scenario cells win over the legacy one-shard-per-device shape; each
    // carries its own task/config, with `task`/`base` only supplying the
    // legacy path.
    let cells: Vec<(String, TaskConfig, SearchConfig)> = if fleet.scenarios.is_empty() {
        assert!(!fleet.devices.is_empty(), "fleet needs at least one device");
        fleet
            .devices
            .iter()
            .map(|&device| {
                let mut cfg = base.clone();
                cfg.device = device;
                (device.name().to_string(), task.clone(), cfg)
            })
            .collect()
    } else {
        fleet
            .scenarios
            .iter()
            .map(|s| (s.label.clone(), s.task.clone(), s.config.clone()))
            .collect()
    };
    let mut specs = Vec::with_capacity(cells.len());
    for (label, task, cfg) in cells {
        let imported_cache = match (fleet.warm_start_seed, store) {
            (Some(seed), Some(store)) if cfg.strategy == Strategy::MultiStage => {
                let mut source = cfg.clone();
                source.seed = seed;
                let key = ArtifactKey {
                    device: cfg.device,
                    fingerprint: search_fingerprint(&task, &source),
                };
                store.load_score_cache(&key)?
            }
            _ => None,
        };
        specs.push(ShardSpec {
            scenario: label,
            task,
            config: cfg,
            imported_cache,
        });
    }
    let scheduler = Scheduler::new(
        specs,
        SchedulerConfig {
            threads: fleet.threads,
            preemption_stride: fleet.preemption_stride,
            checkpoint_every: fleet.checkpoint_every,
            oracle: fleet.oracle.clone(),
            max_slices: None,
            session_memory_budget: fleet.session_memory_budget,
            stop: None,
        },
    );
    let report = scheduler.run(store, events)?;
    let reports = report
        .shards
        .into_iter()
        .map(|s| DeviceReport {
            scenario: s.scenario,
            device: s.device,
            outcome: s
                .outcome
                .expect("an unbudgeted scheduler runs every shard to completion"),
            pareto: s.pareto,
            predictor_epochs_run: s.predictor_epochs_run,
            warm_predictor: s.warm_predictor,
            resumed_from_generation: s.resumed_from_generation,
            slices: s.slices,
            prefix_builds: s.prefix_builds,
        })
        .collect();
    Ok(FleetReport {
        reports,
        oracle_stats: report.oracle_stats,
    })
}
