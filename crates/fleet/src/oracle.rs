//! The asynchronous measurement oracle: a per-device worker pool behind
//! request/response channels.
//!
//! Searches submit latency queries to the oracle instead of invoking the
//! device simulator inline. Each device gets its own queue and worker
//! pool; workers drain several in-flight requests per wake (batching the
//! way a real deployment harness amortises its board round-trip) and retry
//! transient failures with exponential backoff. Measurement noise comes
//! from a generator state that travels with the request and returns with
//! the response, so routing through the oracle is *bit-transparent*: a
//! search sees exactly the latencies an inline measurement would have
//! produced, no matter how many workers race or how requests interleave
//! across shards.

use crossbeam::channel::{unbounded, Receiver, Sender};
use hgnas_core::MeasureBackend;
use hgnas_device::{DeviceKind, DeviceProfile, ExecutionReport, MeasureError, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Oracle tuning knobs.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Worker threads per device queue.
    pub workers_per_device: usize,
    /// Measurement attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `n` waits `n × backoff`.
    /// Zero (the default) skips sleeping — simulated boards clear
    /// instantly.
    pub backoff: Duration,
    /// Most requests a worker drains per wake (in-flight batching).
    pub max_batch: usize,
    /// Fault injection: every Nth request transiently fails its first
    /// attempt, exercising the retry path. Requires `max_attempts ≥ 2` to
    /// stay bit-transparent (the retry then succeeds with untouched noise
    /// draws). `None` (the default) injects nothing.
    pub inject_busy_every: Option<u64>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            workers_per_device: 2,
            max_attempts: 3,
            backoff: Duration::ZERO,
            max_batch: 8,
            inject_busy_every: None,
        }
    }
}

/// One queued measurement: the workload, the caller's generator state, and
/// where to send the answer.
#[derive(Debug)]
struct Request {
    workload: Workload,
    rng: StdRng,
    reply: Sender<Reply>,
}

/// What travels on a device queue: work, or a shutdown pill (one per
/// worker, so join never waits on a client that outlives the oracle).
#[derive(Debug)]
enum Job {
    Measure(Request),
    Shutdown,
}

/// A served measurement: the report (or terminal error) plus the advanced
/// generator state (retry counts live in the oracle stats).
#[derive(Debug)]
struct Reply {
    result: Result<ExecutionReport, MeasureError>,
    rng: StdRng,
}

#[derive(Debug, Default)]
struct StatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    retries: AtomicU64,
    injected_faults: AtomicU64,
}

/// Aggregate oracle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleStats {
    /// Requests served.
    pub requests: u64,
    /// Worker wakes (each serving one in-flight batch).
    pub batches: u64,
    /// Largest in-flight batch one wake drained.
    pub max_batch: u64,
    /// Retry attempts across all requests.
    pub retries: u64,
    /// Transient faults injected by [`OracleConfig::inject_busy_every`].
    pub injected_faults: u64,
}

/// The measurement service. Owns one queue + worker pool per *distinct
/// device profile* — two personas calibrated from the same base kind get
/// separate pools, since their simulated hardware differs — dropped (or
/// [`MeasurementOracle::shutdown`]), it closes the queues and joins every
/// worker.
#[derive(Debug)]
pub struct MeasurementOracle {
    senders: Vec<(DeviceProfile, Sender<Job>)>,
    workers: Vec<JoinHandle<()>>,
    workers_per_device: usize,
    stats: Arc<StatsInner>,
}

impl MeasurementOracle {
    /// Starts workers for every (distinct) device in `devices`, using each
    /// device's builtin profile. See [`MeasurementOracle::start_profiles`]
    /// for calibrated personas.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty, `workers_per_device == 0`,
    /// `max_attempts == 0`, or fault injection is enabled without retry
    /// headroom (`max_attempts < 2`).
    pub fn start(devices: &[DeviceKind], cfg: &OracleConfig) -> Self {
        let profiles: Vec<DeviceProfile> = devices.iter().map(|d| d.profile()).collect();
        Self::start_profiles(&profiles, cfg)
    }

    /// Starts workers for every (distinct) profile in `profiles` — the
    /// persona-aware generalisation of [`MeasurementOracle::start`].
    ///
    /// # Panics
    ///
    /// As [`MeasurementOracle::start`].
    pub fn start_profiles(profiles: &[DeviceProfile], cfg: &OracleConfig) -> Self {
        assert!(!profiles.is_empty(), "oracle needs at least one device");
        assert!(cfg.workers_per_device > 0, "need at least one worker");
        assert!(cfg.max_attempts > 0, "need at least one attempt");
        assert!(
            cfg.inject_busy_every.is_none() || cfg.max_attempts >= 2,
            "fault injection without retries would surface injected errors"
        );
        let stats = Arc::new(StatsInner::default());
        let mut senders: Vec<(DeviceProfile, Sender<Job>)> = Vec::new();
        let mut workers = Vec::new();
        for profile in profiles {
            if senders.iter().any(|(p, _)| p == profile) {
                continue;
            }
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            for _ in 0..cfg.workers_per_device {
                let rx = rx.clone();
                let cfg = cfg.clone();
                let stats = Arc::clone(&stats);
                let profile = profile.clone();
                workers.push(std::thread::spawn(move || {
                    worker_loop(&profile, &rx, &cfg, &stats);
                }));
            }
            senders.push((profile.clone(), tx));
        }
        MeasurementOracle {
            senders,
            workers,
            workers_per_device: cfg.workers_per_device,
            stats,
        }
    }

    /// A client bound to `device`'s builtin-profile queue.
    ///
    /// # Panics
    ///
    /// Panics if the oracle was not started with `device`.
    pub fn client(&self, device: DeviceKind) -> OracleClient {
        self.client_for(&device.profile())
    }

    /// A client bound to the queue serving exactly `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the oracle was not started with this profile.
    pub fn client_for(&self, profile: &DeviceProfile) -> OracleClient {
        let tx = self
            .senders
            .iter()
            .find(|(p, _)| p == profile)
            .unwrap_or_else(|| panic!("oracle has no workers for {} profile", profile.kind))
            .1
            .clone();
        OracleClient {
            device: profile.kind,
            tx,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            requests: self.stats.requests.load(Ordering::SeqCst),
            batches: self.stats.batches.load(Ordering::SeqCst),
            max_batch: self.stats.max_batch.load(Ordering::SeqCst),
            retries: self.stats.retries.load(Ordering::SeqCst),
            injected_faults: self.stats.injected_faults.load(Ordering::SeqCst),
        }
    }

    /// Stops the workers (outstanding requests are still served first)
    /// and joins them. Clients that outlive the oracle get a transient
    /// error on their next call.
    pub fn shutdown(mut self) -> OracleStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        for (_, tx) in &self.senders {
            for _ in 0..self.workers_per_device {
                let _ = tx.send(Job::Shutdown);
            }
        }
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for MeasurementOracle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    profile: &DeviceProfile,
    rx: &Receiver<Job>,
    cfg: &OracleConfig,
    stats: &StatsInner,
) {
    let mut running = true;
    while running {
        let first = match rx.recv() {
            Ok(Job::Measure(r)) => r,
            Ok(Job::Shutdown) | Err(_) => break,
        };
        // In-flight batching: drain whatever else is already queued, up to
        // the batch cap, before touching the (simulated) board.
        let mut batch = vec![first];
        while batch.len() < cfg.max_batch {
            match rx.try_recv() {
                Ok(Job::Measure(r)) => batch.push(r),
                Ok(Job::Shutdown) => {
                    running = false;
                    break;
                }
                Err(_) => break,
            }
        }
        stats.batches.fetch_add(1, Ordering::SeqCst);
        stats
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::SeqCst);
        for req in batch {
            serve(profile, req, cfg, stats);
        }
    }
}

fn serve(profile: &DeviceProfile, mut req: Request, cfg: &OracleConfig, stats: &StatsInner) {
    let id = stats.requests.fetch_add(1, Ordering::SeqCst) + 1;
    let mut attempts = 0u32;
    let result = loop {
        attempts += 1;
        let backoff_ms = cfg.backoff.as_secs_f64() * 1e3 * f64::from(attempts);
        // Injected transport contention: fails before any noise is drawn,
        // so the retry reproduces the inline measurement exactly.
        let injected = attempts == 1 && cfg.inject_busy_every.is_some_and(|n| id.is_multiple_of(n));
        let outcome = if injected {
            stats.injected_faults.fetch_add(1, Ordering::SeqCst);
            Err(MeasureError::Busy {
                retry_in_ms: backoff_ms,
            })
        } else {
            // Attempt on a scratch state; commit it only on resolution so
            // a (hypothetical) transient failure inside `measure` cannot
            // leak half-consumed draws into the next attempt.
            let mut rng = req.rng.clone();
            let r = profile.measure(&req.workload, &mut rng);
            if r.is_ok() || !r.as_ref().is_err_and(MeasureError::is_transient) {
                req.rng = rng;
            }
            r
        };
        match outcome {
            Ok(r) => break Ok(r),
            Err(e) if e.is_transient() && attempts < cfg.max_attempts => {
                stats.retries.fetch_add(1, Ordering::SeqCst);
                if cfg.backoff > Duration::ZERO {
                    std::thread::sleep(cfg.backoff * attempts);
                }
            }
            Err(e) => break Err(e),
        }
    };
    // A dropped client (its search died) is not the oracle's problem.
    let _ = req.reply.send(Reply {
        result,
        rng: req.rng,
    });
}

/// A handle submitting measurements to one device's queue. Cloneable and
/// cheap; implements [`MeasureBackend`] so it plugs straight into
/// `hgnas_core::RunOptions::backend`.
#[derive(Debug, Clone)]
pub struct OracleClient {
    device: DeviceKind,
    tx: Sender<Job>,
}

/// An in-flight asynchronous measurement; redeem with [`Ticket::wait`].
pub struct Ticket {
    rx: Receiver<Reply>,
}

/// Error for submissions the oracle never answered (it was shut down).
fn oracle_gone() -> MeasureError {
    MeasureError::Busy { retry_in_ms: 0.0 }
}

impl Ticket {
    /// Blocks until the oracle answers.
    ///
    /// # Errors
    ///
    /// The measurement's own [`MeasureError`], or a transient error when
    /// the oracle shut down before answering.
    pub fn wait(self) -> Result<ExecutionReport, MeasureError> {
        match self.rx.recv() {
            Ok(reply) => reply.result,
            Err(_) => Err(oracle_gone()),
        }
    }
}

impl OracleClient {
    /// The device this client measures on.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// Fire-and-forget submission with a deterministic per-request noise
    /// stream derived from `stream` (callers typically pass a request
    /// index). Pipelining submissions is how a caller keeps every worker
    /// busy; results are independent of completion order because each
    /// request owns its stream.
    pub fn submit(&self, workload: Workload, stream: u64) -> Ticket {
        let (reply, rx) = unbounded();
        let _ = self.tx.send(Job::Measure(Request {
            workload,
            rng: StdRng::seed_from_u64(stream),
            reply,
        }));
        Ticket { rx }
    }
}

impl MeasureBackend for OracleClient {
    /// Round-trips the caller's generator state through the oracle: the
    /// returned report *and* the state `rng` is left in match an inline
    /// `profile.measure(workload, rng)` call exactly.
    fn measure(
        &self,
        workload: &Workload,
        rng: &mut StdRng,
    ) -> Result<ExecutionReport, MeasureError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Job::Measure(Request {
                workload: workload.clone(),
                rng: rng.clone(),
                reply,
            }))
            .map_err(|_| oracle_gone())?;
        match rx.recv() {
            Ok(r) => {
                *rng = r.rng;
                r.result
            }
            Err(_) => Err(oracle_gone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_device::WorkloadOp;

    fn toy_workload(n: usize) -> Workload {
        let mut w = Workload::new();
        w.push(WorkloadOp::knn("knn", n, 16, 3));
        w.push(WorkloadOp::linear("mlp", n, 16, 32));
        w
    }

    #[test]
    fn backend_is_bit_transparent() {
        let devices = [DeviceKind::JetsonTx2, DeviceKind::RaspberryPi3B];
        let oracle = MeasurementOracle::start(&devices, &OracleConfig::default());
        for device in devices {
            let client = oracle.client(device);
            let w = toy_workload(128);
            let mut inline_rng = StdRng::seed_from_u64(99);
            let mut oracle_rng = StdRng::seed_from_u64(99);
            for _ in 0..10 {
                let inline = device.profile().measure(&w, &mut inline_rng).unwrap();
                let via = client.measure(&w, &mut oracle_rng).unwrap();
                assert_eq!(inline, via);
            }
            assert_eq!(inline_rng, oracle_rng, "generator state diverged");
        }
        let stats = oracle.shutdown();
        assert_eq!(stats.requests, 20);
    }

    #[test]
    fn injected_faults_are_retried_transparently() {
        let cfg = OracleConfig {
            inject_busy_every: Some(2),
            ..OracleConfig::default()
        };
        let oracle = MeasurementOracle::start(&[DeviceKind::I78700K], &cfg);
        let client = oracle.client(DeviceKind::I78700K);
        let w = toy_workload(96);
        let mut inline_rng = StdRng::seed_from_u64(5);
        let mut oracle_rng = StdRng::seed_from_u64(5);
        for _ in 0..8 {
            let inline = DeviceKind::I78700K
                .profile()
                .measure(&w, &mut inline_rng)
                .unwrap();
            let via = client.measure(&w, &mut oracle_rng).unwrap();
            assert_eq!(inline, via, "retry changed the measurement");
        }
        let stats = oracle.shutdown();
        assert_eq!(stats.injected_faults, 4, "every 2nd of 8 requests faults");
        assert!(stats.retries >= stats.injected_faults);
    }

    #[test]
    fn oom_is_not_retried() {
        let mut w = Workload::new();
        w.push(WorkloadOp::linear("huge", 4_000_000, 256, 256));
        w.peak_live_bytes = 4e9;
        let oracle =
            MeasurementOracle::start(&[DeviceKind::RaspberryPi3B], &OracleConfig::default());
        let client = oracle.client(DeviceKind::RaspberryPi3B);
        let mut rng = StdRng::seed_from_u64(1);
        let rng_before = rng.clone();
        match client.measure(&w, &mut rng) {
            Err(MeasureError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
        // Terminal errors consume no noise draws, exactly like inline.
        assert_eq!(rng, rng_before);
        let stats = oracle.shutdown();
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn pipelined_submissions_match_sequential_results() {
        let oracle = MeasurementOracle::start(&[DeviceKind::Rtx3080], &OracleConfig::default());
        let client = oracle.client(DeviceKind::Rtx3080);
        let w = toy_workload(200);
        // Submit 32 requests before collecting any response.
        let tickets: Vec<Ticket> = (0..32).map(|i| client.submit(w.clone(), i)).collect();
        let async_lat: Vec<u64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().latency_ms.to_bits())
            .collect();
        let serial_lat: Vec<u64> = (0..32)
            .map(|i| {
                DeviceKind::Rtx3080
                    .profile()
                    .measure_seeded(&w, i)
                    .unwrap()
                    .latency_ms
                    .to_bits()
            })
            .collect();
        assert_eq!(async_lat, serial_lat);
        let stats = oracle.shutdown();
        assert_eq!(stats.requests, 32);
        assert!(stats.batches <= 32);
    }

    #[test]
    #[should_panic(expected = "no workers for")]
    fn unknown_device_client_panics() {
        let oracle = MeasurementOracle::start(&[DeviceKind::Rtx3080], &OracleConfig::default());
        let _ = oracle.client(DeviceKind::V100);
    }
}
