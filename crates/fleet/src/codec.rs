//! A small self-contained versioned binary codec for on-disk artifacts.
//!
//! No serde — the shims stay offline. Every artifact is
//!
//! ```text
//! magic "HGNA" · version u16 · kind u16 · payload · crc32(all preceding)
//! ```
//!
//! with all integers little-endian and floats stored as raw IEEE-754 bits,
//! so round-trips are bit-exact (the property the resume and warm-start
//! guarantees rest on). The trailing CRC makes truncated or corrupted
//! artifacts fail loudly at open time instead of resuming a search from
//! garbage.
//!
//! The same machinery frames the `hgnas-serve` wire protocol:
//!
//! ```text
//! magic "HGNW" · protocol u8 · kind u16 · payload · crc32(all preceding)
//! ```
//!
//! built by [`Encoder::frame`] and validated by [`Decoder::open_frame`].
//! Distinct magics keep the two namespaces apart; the single protocol byte
//! is checked before anything in the payload is believed.

use std::fmt;

/// File magic: "HGNA".
pub const MAGIC: [u8; 4] = *b"HGNA";

/// Current format version. Readers reject anything else.
///
/// History: v2 added `EvalStats::imported`, the warm-start remainder in
/// Stage-2 checkpoints, and one-stage checkpoints; v3 added the
/// warm-import validation counters (`EvalStats::validated`/`rejected`)
/// and the [`ArtifactKind::Session`] spill (pre-trained supernet weights
/// plus the Stage-1 outcome); v4 re-keyed [`ArtifactKind::Session`]
/// spills by the device-free *prefix* fingerprint (structured
/// field-tagged hashing replaced the Debug-string FNV throughout), so
/// shards sharing a deterministic prefix share one spilled supernet; v5
/// added the multi-metric axes — cached candidates carry optional
/// energy/peak-memory metrics, tasks carry a task-kind code, and search
/// configs carry the energy/memory objective weights plus an optional
/// device persona. Old artifacts are rejected as
/// [`CodecError::UnsupportedVersion`] — a safe cold start, never a wrong
/// decode.
pub const VERSION: u16 = 5;

/// What an artifact contains (stored in the header so a predictor file can
/// never be mistaken for a checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Trained latency-predictor weights.
    Predictor,
    /// A mid-search Stage-2 checkpoint.
    Checkpoint,
    /// A standalone evaluator score cache.
    ScoreCache,
    /// A one-stage (joint baseline) checkpoint.
    OneStageCheckpoint,
    /// A spilled search session: the Stage-1 outcome plus pre-trained
    /// supernet weights, so an evicted session resumes without replaying
    /// the deterministic prefix.
    Session,
}

impl ArtifactKind {
    fn code(self) -> u16 {
        match self {
            ArtifactKind::Predictor => 1,
            ArtifactKind::Checkpoint => 2,
            ArtifactKind::ScoreCache => 3,
            ArtifactKind::OneStageCheckpoint => 4,
            ArtifactKind::Session => 5,
        }
    }

    fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(ArtifactKind::Predictor),
            2 => Some(ArtifactKind::Checkpoint),
            3 => Some(ArtifactKind::ScoreCache),
            4 => Some(ArtifactKind::OneStageCheckpoint),
            5 => Some(ArtifactKind::Session),
            _ => None,
        }
    }
}

/// Wire-frame magic: "HGNW". Distinct from the artifact [`MAGIC`] so a
/// frame pasted into the store (or an artifact replayed at a socket) is
/// rejected by the first four bytes, before any payload is trusted.
pub const WIRE_MAGIC: [u8; 4] = *b"HGNW";

/// Current wire-protocol version, carried as a single byte in every frame
/// header. Readers reject anything else as
/// [`CodecError::UnsupportedProtocol`] — a daemon never half-decodes a
/// frame from a newer client.
pub const PROTOCOL_VERSION: u8 = 1;

/// What a wire frame carries (stored in the frame header, mirroring
/// [`ArtifactKind`] for on-disk artifacts).
///
/// Codes 1–4 are client→server, 5–11 server→client. Codes are part of the
/// protocol: never reuse a retired number.
///
/// # Examples
///
/// ```
/// use hgnas_fleet::codec::{Decoder, Encoder, FrameKind};
///
/// let mut e = Encoder::frame(FrameKind::Hello);
/// e.put_u8(3); // priority
/// let bytes = e.finish();
/// let (kind, _payload) = Decoder::open_frame(&bytes).unwrap();
/// assert_eq!(kind, FrameKind::Hello);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client introduces itself: tenant name + priority.
    Hello,
    /// Client submits a search request.
    Submit,
    /// Client re-attaches to an earlier request after a disconnect.
    Attach,
    /// Client is done; the server may close the connection.
    Bye,
    /// Server accepts a Hello.
    HelloAck,
    /// Server accepted a Submit and assigned a request id.
    Accepted,
    /// Server refused a frame (bad tenant, unknown request, drain, …).
    Rejected,
    /// One streamed `FleetEvent`, tagged with request id + sequence number.
    Event,
    /// The final per-request report (outcomes + Pareto fronts).
    Report,
    /// The idle-loop garbage collector ran; carries the `PruneReport`.
    Pruned,
    /// The daemon is draining: lists the request ids parked at shutdown.
    Drain,
}

impl FrameKind {
    fn code(self) -> u16 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Submit => 2,
            FrameKind::Attach => 3,
            FrameKind::Bye => 4,
            FrameKind::HelloAck => 5,
            FrameKind::Accepted => 6,
            FrameKind::Rejected => 7,
            FrameKind::Event => 8,
            FrameKind::Report => 9,
            FrameKind::Pruned => 10,
            FrameKind::Drain => 11,
        }
    }

    fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Submit),
            3 => Some(FrameKind::Attach),
            4 => Some(FrameKind::Bye),
            5 => Some(FrameKind::HelloAck),
            6 => Some(FrameKind::Accepted),
            7 => Some(FrameKind::Rejected),
            8 => Some(FrameKind::Event),
            9 => Some(FrameKind::Report),
            10 => Some(FrameKind::Pruned),
            11 => Some(FrameKind::Drain),
            _ => None,
        }
    }
}

/// Why an artifact failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended mid-value (truncated file).
    UnexpectedEof,
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// A wire frame's protocol byte is not [`PROTOCOL_VERSION`].
    UnsupportedProtocol(u8),
    /// A wire frame's kind code is not in the [`FrameKind`] table.
    UnknownFrame(u16),
    /// The header names a different artifact kind than the caller expected.
    WrongKind {
        /// What the caller asked for.
        expected: u16,
        /// What the header says.
        found: u16,
    },
    /// The trailing CRC does not match the content (corruption).
    BadChecksum,
    /// A decoded value is out of its domain (e.g. an enum index past the
    /// table, a length that cannot fit).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "artifact truncated"),
            CodecError::BadMagic => write!(f, "not an HGNAS artifact (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported artifact version {v}"),
            CodecError::UnsupportedProtocol(v) => {
                write!(f, "unsupported wire protocol version {v}")
            }
            CodecError::UnknownFrame(code) => write!(f, "unknown wire frame kind {code}"),
            CodecError::WrongKind { expected, found } => {
                write!(f, "artifact kind {found} where {expected} was expected")
            }
            CodecError::BadChecksum => write!(f, "artifact checksum mismatch (corrupted)"),
            CodecError::Invalid(what) => write!(f, "invalid artifact field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only artifact writer.
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts an artifact of the given kind (header written immediately).
    pub fn new(kind: ArtifactKind) -> Self {
        let mut e = Encoder { buf: Vec::new() };
        e.buf.extend_from_slice(&MAGIC);
        e.put_u16(VERSION);
        e.put_u16(kind.code());
        e
    }

    /// Starts a wire frame of the given kind: `WIRE_MAGIC · protocol u8 ·
    /// kind u16 · payload · crc32`, sealed by the same [`Encoder::finish`]
    /// as artifacts.
    pub fn frame(kind: FrameKind) -> Self {
        let mut e = Encoder { buf: Vec::new() };
        e.buf.extend_from_slice(&WIRE_MAGIC);
        e.put_u8(PROTOCOL_VERSION);
        e.put_u16(kind.code());
        e
    }

    /// Seals the artifact: appends the CRC and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a usize as u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an f32 as raw bits.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an f64 as raw bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a usize slice as length + elements.
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Writes a byte blob as length + raw bytes (strings go through this
    /// as UTF-8).
    pub fn put_blob(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a string as a UTF-8 blob.
    pub fn put_str(&mut self, s: &str) {
        self.put_blob(s.as_bytes());
    }
}

/// Checked artifact reader over a validated payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Validates header + checksum and positions the reader at the payload.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] the header/trailer checks produce.
    pub fn open(bytes: &'a [u8], kind: ArtifactKind) -> Result<Self, CodecError> {
        // magic(4) + version(2) + kind(2) + crc(4)
        if bytes.len() < 12 {
            return Err(CodecError::UnexpectedEof);
        }
        let (content, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(content) != stored {
            return Err(CodecError::BadChecksum);
        }
        let mut d = Decoder {
            bytes: content,
            pos: 0,
        };
        let magic = d.take_bytes(4)?;
        if magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = d.take_u16()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let code = d.take_u16()?;
        match ArtifactKind::from_code(code) {
            Some(k) if k == kind => Ok(d),
            _ => Err(CodecError::WrongKind {
                expected: kind.code(),
                found: code,
            }),
        }
    }

    /// Validates a wire frame (CRC, magic, protocol byte, kind table) and
    /// returns its kind plus a reader positioned at the payload.
    ///
    /// Unlike [`Decoder::open`], the kind is returned instead of demanded:
    /// a connection loop dispatches on whatever arrives.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`]/[`CodecError::BadChecksum`] on
    /// truncation or corruption, [`CodecError::BadMagic`] when the frame
    /// does not start with [`WIRE_MAGIC`],
    /// [`CodecError::UnsupportedProtocol`] on a foreign protocol byte, and
    /// [`CodecError::UnknownFrame`] on an unassigned kind code.
    pub fn open_frame(bytes: &'a [u8]) -> Result<(FrameKind, Self), CodecError> {
        // magic(4) + protocol(1) + kind(2) + crc(4)
        if bytes.len() < 11 {
            return Err(CodecError::UnexpectedEof);
        }
        let (content, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(content) != stored {
            return Err(CodecError::BadChecksum);
        }
        let mut d = Decoder {
            bytes: content,
            pos: 0,
        };
        let magic = d.take_bytes(4)?;
        if magic != WIRE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let protocol = d.take_u8()?;
        if protocol != PROTOCOL_VERSION {
            return Err(CodecError::UnsupportedProtocol(protocol));
        }
        let code = d.take_u16()?;
        let kind = FrameKind::from_code(code).ok_or(CodecError::UnknownFrame(code))?;
        Ok((kind, d))
    }

    /// Whether every payload byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] past the payload end (also below).
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Reads a u16.
    #[allow(clippy::missing_errors_doc)]
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_bytes(2)?.try_into().unwrap()))
    }

    /// Reads a u32.
    #[allow(clippy::missing_errors_doc)]
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    /// Reads a u64.
    #[allow(clippy::missing_errors_doc)]
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    /// Reads a usize (stored as u64).
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when the value does not fit a usize.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.take_u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads a bool.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on anything but 0 or 1.
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool out of range")),
        }
    }

    /// Reads an f32 from raw bits.
    #[allow(clippy::missing_errors_doc)]
    pub fn take_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an f64 from raw bits.
    #[allow(clippy::missing_errors_doc)]
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a usize vector (length + elements).
    #[allow(clippy::missing_errors_doc)]
    pub fn take_usize_vec(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.take_usize()?;
        (0..n).map(|_| self.take_usize()).collect()
    }

    /// Reads a byte blob (length + raw bytes).
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] when the declared length runs past
    /// the payload end.
    pub fn take_blob(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.take_usize()?;
        Ok(self.take_bytes(n)?.to_vec())
    }

    /// Reads a UTF-8 string (blob-encoded).
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when the bytes are not valid UTF-8.
    pub fn take_string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.take_blob()?).map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }
}

/// FNV-1a 64-bit hash; the store keys artifacts by configuration
/// fingerprints computed with this.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut e = Encoder::new(ArtifactKind::ScoreCache);
        e.put_u8(7);
        e.put_u16(300);
        e.put_u32(70_000);
        e.put_u64(1 << 40);
        e.put_usize(99);
        e.put_bool(true);
        e.put_f32(-0.0);
        e.put_f64(f64::MIN_POSITIVE);
        e.put_usize_slice(&[1, 2, 3]);
        let bytes = e.finish();

        let mut d = Decoder::open(&bytes, ArtifactKind::ScoreCache).unwrap();
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u16().unwrap(), 300);
        assert_eq!(d.take_u32().unwrap(), 70_000);
        assert_eq!(d.take_u64().unwrap(), 1 << 40);
        assert_eq!(d.take_usize().unwrap(), 99);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.take_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(d.take_usize_vec().unwrap(), vec![1, 2, 3]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn corruption_detected_at_every_byte() {
        let mut e = Encoder::new(ArtifactKind::Predictor);
        e.put_u64(0xdead_beef);
        e.put_f64(1.25);
        let bytes = e.finish();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Decoder::open(&bad, ArtifactKind::Predictor).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let mut e = Encoder::new(ArtifactKind::Checkpoint);
        e.put_u64(42);
        let bytes = e.finish();
        for len in 0..bytes.len() {
            assert!(
                Decoder::open(&bytes[..len], ArtifactKind::Checkpoint).is_err(),
                "truncation to {len} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn wrong_kind_rejected() {
        let bytes = Encoder::new(ArtifactKind::Predictor).finish();
        match Decoder::open(&bytes, ArtifactKind::Checkpoint) {
            Err(CodecError::WrongKind { expected, found }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn reading_past_payload_is_eof_not_panic() {
        let bytes = Encoder::new(ArtifactKind::ScoreCache).finish();
        let mut d = Decoder::open(&bytes, ArtifactKind::ScoreCache).unwrap();
        assert_eq!(d.take_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn frame_round_trips_kind_and_payload() {
        let mut e = Encoder::frame(FrameKind::Submit);
        e.put_str("tenant-a");
        e.put_u64(42);
        let bytes = e.finish();
        let (kind, mut d) = Decoder::open_frame(&bytes).unwrap();
        assert_eq!(kind, FrameKind::Submit);
        assert_eq!(d.take_string().unwrap(), "tenant-a");
        assert_eq!(d.take_u64().unwrap(), 42);
        assert!(d.is_exhausted());
    }

    #[test]
    fn frame_kind_codes_round_trip() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Submit,
            FrameKind::Attach,
            FrameKind::Bye,
            FrameKind::HelloAck,
            FrameKind::Accepted,
            FrameKind::Rejected,
            FrameKind::Event,
            FrameKind::Report,
            FrameKind::Pruned,
            FrameKind::Drain,
        ] {
            assert_eq!(FrameKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(FrameKind::from_code(0), None);
        assert_eq!(FrameKind::from_code(12), None);
    }

    #[test]
    fn frame_rejects_foreign_protocol_version() {
        let bytes = Encoder::frame(FrameKind::Hello).finish();
        // Patch the protocol byte (offset 4) and re-seal the CRC so only
        // the version check can object.
        let mut bad = bytes[..bytes.len() - 4].to_vec();
        bad[4] = PROTOCOL_VERSION + 1;
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Decoder::open_frame(&bad).unwrap_err(),
            CodecError::UnsupportedProtocol(PROTOCOL_VERSION + 1)
        );
    }

    #[test]
    fn frame_rejects_unknown_kind_code() {
        let bytes = Encoder::frame(FrameKind::Hello).finish();
        let mut bad = bytes[..bytes.len() - 4].to_vec();
        bad[5..7].copy_from_slice(&999u16.to_le_bytes());
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Decoder::open_frame(&bad).unwrap_err(),
            CodecError::UnknownFrame(999)
        );
    }

    #[test]
    fn frame_and_artifact_magics_are_mutually_exclusive() {
        let mut e = Encoder::frame(FrameKind::Report);
        e.put_u64(0); // payload so the frame clears the artifact min length
        let frame = e.finish();
        assert_eq!(
            Decoder::open(&frame, ArtifactKind::Checkpoint).unwrap_err(),
            CodecError::BadMagic
        );
        let artifact = Encoder::new(ArtifactKind::Checkpoint).finish();
        assert_eq!(
            Decoder::open_frame(&artifact).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn blob_truncation_is_eof_not_panic() {
        let mut e = Encoder::frame(FrameKind::Hello);
        e.put_usize(1 << 40); // declared blob length far past the payload
        let bytes = e.finish();
        let (_, mut d) = Decoder::open_frame(&bytes).unwrap();
        assert_eq!(d.take_blob(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE test vector).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
