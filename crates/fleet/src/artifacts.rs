//! The cross-run artifact store: predictor weights, search checkpoints and
//! evaluator score caches persisted to a directory via the versioned
//! binary [`crate::codec`].
//!
//! Most artifacts are keyed by `(device, configuration fingerprint)` so a
//! store can hold many tasks and search configurations side by side;
//! writes go through a temp file + rename, so a kill mid-write can never
//! leave a half-written artifact under a live name (and the codec's
//! checksum rejects any other corruption at load time).
//!
//! # Fingerprints: prefix vs. search
//!
//! Two structured fingerprints partition the configuration space:
//!
//! - [`search_fingerprint`] covers **everything that shapes a search
//!   outcome** (minus the bit-transparent thread budget). Checkpoints,
//!   score caches and one-stage checkpoints are keyed by it, per device:
//!   two shards share a checkpoint slot only when they would run the
//!   byte-identical search.
//! - [`prefix_fingerprint`] covers **exactly the inputs
//!   `Hgnas::prepare_session` consumes**: the task, the strategy, the
//!   Stage-1 EA settings, the Stage-1/Stage-2 epoch counts, the base seed
//!   (the prefix RNG derivations all flow from it) and the eval-cloud
//!   budget. It deliberately excludes the device (Stage-1 scoring never
//!   reads it — clock costing uses a fixed reference profile), α/β
//!   weights, constraints, the Stage-2 EA, the latency mode and the
//!   predictor settings, because the session a prefix build produces is
//!   bit-identical across all of them. [`ArtifactKind::Session`] spills
//!   and the scheduler's resident session LRU are keyed by it (via
//!   [`PrefixKey`]), so N shards differing only in Stage-2 seed, α/β, or
//!   eval budget share **one** pre-trained supernet instead of N.
//!
//! The session-sharing rule, in one line: a session may serve any shard
//! whose `(task, SearchConfig::prefix_params())` matches the builder's —
//! which is exactly what `SessionState::validate` re-checks at run time.
//!
//! Fingerprints are *structured*, not Debug-string hashes: every field is
//! folded with a stable numeric tag and type code through [`FieldHasher`],
//! so a pure Rust field rename (or doc churn) never re-keys a warm store,
//! while adding or removing a hashed field — or bumping
//! [`FINGERPRINT_SCHEMA`] — always does (a cache miss, never a wrong hit).
//! Golden-value tests pin the exact values.

use crate::codec::{ArtifactKind, CodecError, Decoder, Encoder};
use hgnas_core::{
    EaConfig, EaSnapshot, EvalStats, JointGenome, LatencyMode, OneStageCheckpoint, ScoredCandidate,
    SearchCheckpoint, SearchConfig, SearchedModel, SessionSnapshot, Strategy, TaskConfig,
};
use hgnas_device::{DeviceKind, DevicePersona, DeviceProfile};
use hgnas_ops::{Aggregator, Architecture, ConnectFn, FunctionSet, MessageType, OpType, SampleFn};
use hgnas_predictor::{PredictorConfig, PredictorContext, PredictorSnapshot, TrainStats};
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors the store surfaces.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The artifact exists but failed to decode (truncated/corrupt/foreign).
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "artifact decode error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Identifies one artifact slot: a device plus a configuration
/// fingerprint (see [`predictor_fingerprint`] / [`search_fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactKey {
    /// The device the artifact belongs to.
    pub device: DeviceKind,
    /// Configuration fingerprint disambiguating tasks/configs.
    pub fingerprint: u64,
}

impl ArtifactKey {
    /// The `-{device}-{fingerprint}.hgart` suffix every artifact of this
    /// key's slots carries, whatever the kind prefix — what the
    /// stale-fingerprint sweep matches on.
    fn file_suffix(&self) -> String {
        let slug: String = self
            .device
            .name()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!("-{slug}-{:016x}.hgart", self.fingerprint)
    }

    fn file_name(&self, prefix: &str) -> String {
        format!("{prefix}{}", self.file_suffix())
    }
}

/// Identifies one *shared* session slot: the device-free prefix
/// fingerprint (see [`prefix_fingerprint`]). [`ArtifactKind::Session`]
/// spills and the scheduler's resident session LRU use this key, so
/// shards that agree on the deterministic prefix share one supernet
/// whatever their device, Stage-2 seed, or objective weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixKey {
    /// The prefix fingerprint.
    pub fingerprint: u64,
}

impl PrefixKey {
    /// The `-shared-{fingerprint}.hgart` suffix of this key's session
    /// artifact. "shared" can never collide with a device slug
    /// (device names are alphanumeric, and none slugifies to it), so the
    /// stale sweep can tell prefix-keyed files from device-keyed ones.
    fn file_suffix(&self) -> String {
        format!("-shared-{:016x}.hgart", self.fingerprint)
    }

    fn file_name(&self) -> String {
        format!("session{}", self.file_suffix())
    }
}

/// Version of the fingerprint *schema* — the tag assignment and field
/// coverage below. Folded into every fingerprint, so bumping it re-keys
/// every artifact at once (the escape hatch when coverage must change
/// without any Rust field changing).
///
/// History: v2 added the task-kind code to the hashed task fields and
/// the multi-metric objective fields (γ/δ weights, energy/peak-memory
/// caps) plus the optional device persona to [`search_fingerprint`].
pub const FINGERPRINT_SCHEMA: u16 = 2;

/// Incremental FNV-1a hasher folding `(tag, type-code, payload)` triples.
///
/// This is what makes the fingerprints *structural* rather than textual:
/// field **names never enter the hash** — only the stable numeric tag the
/// caller assigns (protobuf-style) plus a type code and the value's
/// little-endian bytes. Renaming a Rust field therefore keeps its
/// fingerprint, while adding a field (a new tag) or changing a value
/// always changes it. Each fingerprint function below owns a tag
/// namespace; tags are append-only and must never be reused for a
/// different meaning — retire a field's tag with the field.
#[derive(Debug, Clone)]
pub struct FieldHasher {
    hash: u64,
}

impl FieldHasher {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher for one fingerprint domain (e.g. `"prefix"`); the domain
    /// string and [`FINGERPRINT_SCHEMA`] are folded first, so equal field
    /// sequences in different domains can never collide by construction.
    pub fn new(domain: &str) -> Self {
        let mut h = FieldHasher {
            hash: Self::FNV_OFFSET,
        };
        h.raw(&FINGERPRINT_SCHEMA.to_le_bytes());
        h.raw(domain.as_bytes());
        h
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(Self::FNV_PRIME);
        }
    }

    fn field(&mut self, tag: u16, type_code: u8, payload: &[u8]) {
        self.raw(&tag.to_le_bytes());
        self.raw(&[type_code]);
        self.raw(payload);
    }

    /// Folds an unsigned integer field (usize values widen losslessly).
    pub fn uint(&mut self, tag: u16, v: u64) {
        self.field(tag, 1, &v.to_le_bytes());
    }

    /// Folds an `f64` field by IEEE-754 bit pattern.
    pub fn float64(&mut self, tag: u16, v: f64) {
        self.field(tag, 2, &v.to_bits().to_le_bytes());
    }

    /// Folds an `f32` field by IEEE-754 bit pattern.
    pub fn float32(&mut self, tag: u16, v: f32) {
        self.field(tag, 3, &v.to_bits().to_le_bytes());
    }

    /// Folds a bool field.
    pub fn boolean(&mut self, tag: u16, v: bool) {
        self.field(tag, 4, &[u8::from(v)]);
    }

    /// Folds an enum discriminant. Callers must pass a *stable* code (an
    /// explicit match, or an index into a frozen table) — never a compiler
    /// discriminant that variant reordering could move.
    pub fn code(&mut self, tag: u16, v: u32) {
        self.field(tag, 5, &v.to_le_bytes());
    }

    /// Folds an optional `f64` (presence byte, then the bits if present).
    pub fn opt_float64(&mut self, tag: u16, v: Option<f64>) {
        match v {
            None => self.field(tag, 6, &[0]),
            Some(x) => {
                let mut payload = [0u8; 9];
                payload[0] = 1;
                payload[1..].copy_from_slice(&x.to_bits().to_le_bytes());
                self.field(tag, 6, &payload);
            }
        }
    }

    /// Folds a length-prefixed UTF-8 string (persona names and other
    /// user-chosen labels; the length prefix keeps adjacent text fields
    /// unambiguous).
    pub fn text(&mut self, tag: u16, v: &str) {
        let mut payload = Vec::with_capacity(8 + v.len());
        payload.extend_from_slice(&(v.len() as u64).to_le_bytes());
        payload.extend_from_slice(v.as_bytes());
        self.field(tag, 8, &payload);
    }

    /// Folds a length-prefixed slice of unsigned integers.
    pub fn uint_slice(&mut self, tag: u16, v: &[usize]) {
        let mut payload = Vec::with_capacity(8 * (v.len() + 1));
        payload.extend_from_slice(&(v.len() as u64).to_le_bytes());
        for &x in v {
            payload.extend_from_slice(&(x as u64).to_le_bytes());
        }
        self.field(tag, 7, &payload);
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// Tags 1–6: the dataset; 10–14: the supernet geometry; 15: the task
/// kind. Shared by the prefix and search fingerprints (same tags — the
/// task means the same thing in both domains).
fn hash_task(h: &mut FieldHasher, task: &TaskConfig) {
    h.uint(1, task.dataset.classes as u64);
    h.uint(2, task.dataset.points as u64);
    h.uint(3, task.dataset.train_per_class as u64);
    h.uint(4, task.dataset.test_per_class as u64);
    h.float32(5, task.dataset.noise);
    h.uint(6, task.dataset.seed);
    h.uint(10, task.positions as u64);
    h.uint(11, task.k as u64);
    h.uint(12, task.supernet_hidden as u64);
    h.uint_slice(13, &task.head_hidden);
    h.uint(14, task.seed);
    h.code(15, u32::from(task.task_kind.code()));
}

/// Folds one EA config at tags `base..base+4`.
fn hash_ea(h: &mut FieldHasher, base: u16, ea: &EaConfig) {
    h.uint(base, ea.population as u64);
    h.uint(base + 1, ea.iterations as u64);
    h.float64(base + 2, ea.elite_fraction);
    h.float64(base + 3, ea.mutation_prob);
    h.uint(base + 4, ea.seed);
}

/// Stable wire code for a strategy (not the compiler discriminant).
fn strategy_code(s: Strategy) -> u32 {
    match s {
        Strategy::MultiStage => 0,
        Strategy::OneStage => 1,
    }
}

/// Fingerprint of exactly the inputs `Hgnas::prepare_session` consumes —
/// see the module docs for the field inventory and the sharing rule it
/// encodes. Two configurations with equal prefix fingerprints build
/// bit-identical [`hgnas_core::SessionState`]s, so either can use a
/// session the other built, resident or spilled.
pub fn prefix_fingerprint(task: &TaskConfig, cfg: &SearchConfig) -> u64 {
    let mut h = FieldHasher::new("prefix");
    hash_task(&mut h, task);
    let p = cfg.prefix_params();
    h.code(20, strategy_code(p.strategy));
    hash_ea(&mut h, 30, &p.ea_stage1);
    h.uint(40, p.epochs_stage1 as u64);
    h.uint(41, p.epochs_stage2 as u64);
    h.uint(42, p.seed);
    h.uint(43, p.eval_clouds as u64);
    h.finish()
}

/// Fingerprint of everything that shapes a search outcome: the task and
/// the search configuration *minus* the thread budget, which is
/// bit-transparent by construction and must not split the artifact space.
/// (The device is hashed too even though the key carries it — the
/// fingerprint alone identifies the configuration.)
pub fn search_fingerprint(task: &TaskConfig, cfg: &SearchConfig) -> u64 {
    let mut h = FieldHasher::new("search");
    hash_task(&mut h, task);
    h.code(20, strategy_code(cfg.strategy));
    hash_ea(&mut h, 30, &cfg.ea_stage1);
    hash_ea(&mut h, 35, &cfg.ea_stage2);
    h.uint(40, cfg.epochs_stage1 as u64);
    h.uint(41, cfg.epochs_stage2 as u64);
    h.uint(42, cfg.seed);
    h.uint(43, cfg.eval_clouds as u64);
    h.code(50, cfg.device.index() as u32);
    h.float64(51, cfg.alpha);
    h.float64(52, cfg.beta);
    h.opt_float64(53, cfg.constraint_ms);
    h.opt_float64(54, cfg.max_size_mb);
    h.code(
        55,
        match cfg.latency_mode {
            LatencyMode::Predictor => 0,
            LatencyMode::Measured => 1,
        },
    );
    h.float64(56, cfg.gamma);
    h.float64(57, cfg.delta);
    h.opt_float64(58, cfg.max_energy_mj);
    h.opt_float64(59, cfg.max_peak_mem_mb);
    hash_predictor_config(&mut h, 60, &cfg.predictor);
    // Tags 70+: the optional device persona. A calibrated/spec-loaded
    // persona changes every predicted latency, so it must re-key the
    // search artifacts; a `None` persona hashes as plain absence, keeping
    // builtin-device configs on their own stable fingerprints.
    h.boolean(70, cfg.persona.is_some());
    if let Some(p) = &cfg.persona {
        h.text(71, &p.name);
        hash_profile(&mut h, 72, &p.profile);
    }
    h.finish()
}

/// Folds a device profile at tags `base..base+15`: the base device code,
/// then every roofline parameter by bit pattern.
fn hash_profile(h: &mut FieldHasher, base: u16, p: &DeviceProfile) {
    h.code(base, p.kind.index() as u32);
    for (i, r) in p.rates.iter().enumerate() {
        h.float64(base + 1 + 2 * i as u16, r.gflops);
        h.float64(base + 2 + 2 * i as u16, r.gbps);
    }
    h.float64(base + 9, p.overhead_us);
    h.float64(base + 10, p.base_mem_mb);
    h.float64(base + 11, p.mem_factor);
    h.float64(base + 12, p.avail_mem_mb);
    h.float64(base + 13, p.noise_sigma);
    h.float64(base + 14, p.measurement_roundtrip_ms);
    h.float64(base + 15, p.power_w);
}

/// Folds a predictor config at tags `base..base+8`.
fn hash_predictor_config(h: &mut FieldHasher, base: u16, cfg: &PredictorConfig) {
    h.uint(base, cfg.train_samples as u64);
    h.uint(base + 1, cfg.val_samples as u64);
    h.uint(base + 2, cfg.epochs as u64);
    h.float32(base + 3, cfg.lr);
    h.uint_slice(base + 4, &cfg.gcn_dims);
    h.uint_slice(base + 5, &cfg.mlp_hidden);
    h.uint(base + 6, cfg.seed);
    h.boolean(base + 7, cfg.global_node);
    h.uint(base + 8, cfg.batch as u64);
}

/// Fingerprint of everything that shapes predictor training: the task
/// context and the full predictor configuration. Two runs with equal
/// fingerprints train bit-identical predictors, so one can reuse the
/// other's weights (the target device lives in the [`ArtifactKey`]).
pub fn predictor_fingerprint(ctx: &PredictorContext, cfg: &PredictorConfig) -> u64 {
    let mut h = FieldHasher::new("predictor");
    h.uint(1, ctx.positions as u64);
    h.uint(2, ctx.points as u64);
    h.uint(3, ctx.k as u64);
    h.uint(4, ctx.classes as u64);
    h.uint_slice(5, &ctx.head_hidden);
    hash_predictor_config(&mut h, 10, cfg);
    h.finish()
}

/// Persona-aware predictor fingerprint: the plain
/// [`predictor_fingerprint`] when no persona is pinned (or the persona's
/// profile is exactly its base kind's builtin), re-keyed by the calibrated
/// profile otherwise. Predictors learn the *profile's* latencies, so two
/// personas sharing a base [`DeviceKind`] must never share weights, while
/// a persona that merely names the builtin profile keeps the device-keyed
/// artifacts warm.
pub fn persona_predictor_fingerprint(
    ctx: &PredictorContext,
    cfg: &PredictorConfig,
    persona: Option<&DevicePersona>,
) -> u64 {
    let base = predictor_fingerprint(ctx, cfg);
    match persona {
        Some(p) if p.profile != DeviceProfile::builtin(p.profile.kind) => {
            let mut h = FieldHasher::new("predictor-persona");
            h.uint(1, base);
            hash_profile(&mut h, 10, &p.profile);
            h.finish()
        }
        _ => base,
    }
}

/// A directory of HGNAS artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Temp files younger than this survive [`ArtifactStore::prune`]: they
    /// may belong to a concurrent writer between its `write` and `rename`.
    /// Any real write completes in well under a minute; anything older is
    /// a torn write's leftover.
    pub const TMP_GC_AGE: std::time::Duration = std::time::Duration::from_secs(60);

    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        Ok(ArtifactStore {
            root: root.as_ref().to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
        // The temp name is unique per writer: concurrent shards (e.g. a
        // fleet configured with the same device twice) may persist the
        // same artifact slot at the same time, and interleaved writes to
        // one shared temp file would rename torn bytes into place.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let w = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let final_path = self.root.join(name);
        let tmp = self
            .root
            .join(format!("{name}.{}-{w}.tmp", std::process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &final_path)?;
        Ok(final_path)
    }

    fn read_optional(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.root.join(name)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Opens a decoder over `bytes`, mapping a version mismatch to `None`:
    /// an artifact written by an older (or newer) format is a safe cold
    /// start for its slot — the documented versioning contract — not a
    /// run-killing error. Anything else (corruption, wrong kind) still
    /// fails loudly.
    fn open_current<'a>(
        bytes: &'a [u8],
        kind: ArtifactKind,
    ) -> Result<Option<Decoder<'a>>, StoreError> {
        match Decoder::open(bytes, kind) {
            Ok(d) => Ok(Some(d)),
            Err(CodecError::UnsupportedVersion(_)) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Persists trained predictor weights.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_predictor(
        &self,
        key: &ArtifactKey,
        snap: &PredictorSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::Predictor);
        put_predictor(&mut e, snap);
        Ok(self.write_atomic(&key.file_name("predictor"), &e.finish())?)
    }

    /// Loads predictor weights if the slot holds any.
    ///
    /// # Errors
    ///
    /// Filesystem failures, or [`StoreError::Codec`] when the artifact is
    /// corrupt (a missing artifact is `Ok(None)`, not an error).
    pub fn load_predictor(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<PredictorSnapshot>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("predictor"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::Predictor)? else {
            return Ok(None);
        };
        Ok(Some(take_predictor(&mut d)?))
    }

    /// Persists a Stage-2 search checkpoint. `task` supplies the
    /// architecture-rebuild parameters (`k`, classes) the compact encoding
    /// needs at load time, plus a fingerprint cross-check.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_checkpoint(
        &self,
        key: &ArtifactKey,
        task: &TaskConfig,
        cp: &SearchCheckpoint,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::Checkpoint);
        put_checkpoint(&mut e, task, cp);
        Ok(self.write_atomic(&key.file_name("checkpoint"), &e.finish())?)
    }

    /// Loads a search checkpoint if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    pub fn load_checkpoint(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<SearchCheckpoint>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("checkpoint"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::Checkpoint)? else {
            return Ok(None);
        };
        Ok(Some(take_checkpoint(&mut d)?))
    }

    /// Persists a one-stage (joint baseline) checkpoint. The counterpart
    /// of [`ArtifactStore::save_checkpoint`] for `Strategy::OneStage`
    /// runs; the two kinds live in separate slots and can never be
    /// mistaken for each other (distinct [`ArtifactKind`]s).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_one_stage_checkpoint(
        &self,
        key: &ArtifactKey,
        task: &TaskConfig,
        cp: &OneStageCheckpoint,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::OneStageCheckpoint);
        put_one_stage_checkpoint(&mut e, task, cp);
        Ok(self.write_atomic(&key.file_name("onestage"), &e.finish())?)
    }

    /// Loads a one-stage checkpoint if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    pub fn load_one_stage_checkpoint(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<OneStageCheckpoint>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("onestage"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::OneStageCheckpoint)? else {
            return Ok(None);
        };
        Ok(Some(take_one_stage_checkpoint(&mut d)?))
    }

    /// Persists a finished run's evaluator score cache as a standalone
    /// artifact. These are what [`hgnas_core::RunOptions::imported_cache`]
    /// warm starts consume: a later run with the same configuration
    /// fingerprint can promote the stored scores instead of recomputing
    /// them, even when its checkpoint is gone.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_score_cache(
        &self,
        key: &ArtifactKey,
        task: &TaskConfig,
        functions: (FunctionSet, FunctionSet),
        entries: &[(Vec<OpType>, ScoredCandidate)],
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::ScoreCache);
        e.put_usize(task.k);
        e.put_usize(task.classes());
        put_function_set(&mut e, &functions.0);
        put_function_set(&mut e, &functions.1);
        put_cache_entries(&mut e, entries);
        Ok(self.write_atomic(&key.file_name("scorecache"), &e.finish())?)
    }

    /// Loads a score cache if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    #[allow(clippy::type_complexity)]
    pub fn load_score_cache(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<Vec<(Vec<OpType>, ScoredCandidate)>>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("scorecache"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::ScoreCache)? else {
            return Ok(None);
        };
        let k = d.take_usize()?;
        let classes = d.take_usize()?;
        let upper = take_function_set(&mut d)?;
        let lower = take_function_set(&mut d)?;
        Ok(Some(take_cache_entries(&mut d, upper, lower, k, classes)?))
    }

    /// Persists a spilled session (`hgnas_core::SessionState::export`):
    /// the Stage-1 outcome plus the pre-trained supernet weights. What the
    /// scheduler's session cache writes when a memory budget evicts a
    /// parked shard's session, so the next slice restores it instead of
    /// replaying Stage 1 + pre-training. Keyed by [`PrefixKey`] — no
    /// device — so any shard sharing the prefix restores it (see the
    /// module docs for the sharing rule).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_session(
        &self,
        key: &PrefixKey,
        snap: &SessionSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::Session);
        put_function_set(&mut e, &snap.functions.0);
        put_function_set(&mut e, &snap.functions.1);
        put_eval_stats(&mut e, &snap.stage1_stats);
        e.put_f64(snap.clock_ms);
        e.put_usize(snap.weights.len());
        for w in &snap.weights {
            put_tensor(&mut e, w);
        }
        Ok(self.write_atomic(&key.file_name(), &e.finish())?)
    }

    /// Loads a spilled session if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    pub fn load_session(&self, key: &PrefixKey) -> Result<Option<SessionSnapshot>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name())? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::Session)? else {
            return Ok(None);
        };
        let upper = take_function_set(&mut d)?;
        let lower = take_function_set(&mut d)?;
        let stage1_stats = take_eval_stats(&mut d)?;
        let clock_ms = d.take_f64()?;
        let n = d.take_usize()?;
        let weights = (0..n)
            .map(|_| take_tensor(&mut d))
            .collect::<Result<_, _>>()?;
        Ok(Some(SessionSnapshot {
            functions: (upper, lower),
            stage1_stats,
            clock_ms,
            weights,
        }))
    }

    /// Deletes leftover temp files (torn writes) and then the
    /// oldest-modified artifacts until the store holds at most `max_bytes`
    /// — the size-budget half of the GC story for long-lived fleet hosts,
    /// whose stores otherwise only grow. Dropping an artifact is always
    /// safe: the next run that wants it cold-starts that slot. Only temp
    /// files older than [`ArtifactStore::TMP_GC_AGE`] are touched, so a GC
    /// pass can run alongside a live fleet without racing an in-flight
    /// `write → rename` out of its temp file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn prune(&self, max_bytes: u64) -> Result<PruneReport, StoreError> {
        let now = std::time::SystemTime::now();
        let mut report = PruneReport::default();
        let mut artifacts: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // A torn write's leftovers are garbage at any budget — but
                // a *young* temp file may be a concurrent writer mid
                // `write → rename`; deleting it would fail that save.
                let stale = now
                    .duration_since(meta.modified()?)
                    .is_ok_and(|age| age >= Self::TMP_GC_AGE);
                if stale {
                    fs::remove_file(&path)?;
                    report.removed_files += 1;
                    report.removed_bytes += meta.len();
                }
            } else if name.ends_with(".hgart") {
                artifacts.push((path, meta.len(), meta.modified()?));
            }
        }
        // Oldest first; the name tie-break keeps the order deterministic
        // under coarse filesystem mtime granularity.
        artifacts.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut total: u64 = artifacts.iter().map(|a| a.1).sum();
        for (path, len, _) in &artifacts {
            if total <= max_bytes {
                break;
            }
            fs::remove_file(path)?;
            report.removed_files += 1;
            report.removed_bytes += len;
            total -= len;
        }
        report.retained_bytes = total;
        Ok(report)
    }

    /// Deletes every artifact (all kinds) whose `(device, fingerprint)`
    /// key is not in `live` and whose prefix key is not in
    /// `live_sessions` — the stale-fingerprint sweep: a task or
    /// configuration change re-fingerprints its slots and strands the old
    /// artifacts forever, since nothing will ever look them up again.
    /// Session artifacts are device-free ([`PrefixKey`]), hence the
    /// second live list.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn sweep_stale(
        &self,
        live: &[ArtifactKey],
        live_sessions: &[PrefixKey],
    ) -> Result<PruneReport, StoreError> {
        let mut suffixes: Vec<String> = live.iter().map(ArtifactKey::file_suffix).collect();
        suffixes.extend(live_sessions.iter().map(PrefixKey::file_suffix));
        let mut report = PruneReport::default();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.ends_with(".hgart") {
                continue;
            }
            if suffixes.iter().any(|s| name.ends_with(s.as_str())) {
                report.retained_bytes += meta.len();
            } else {
                fs::remove_file(&path)?;
                report.removed_files += 1;
                report.removed_bytes += meta.len();
            }
        }
        Ok(report)
    }
}

/// What a GC pass ([`ArtifactStore::prune`] / [`ArtifactStore::sweep_stale`])
/// removed and kept.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneReport {
    /// Files deleted.
    pub removed_files: usize,
    /// Bytes reclaimed.
    pub removed_bytes: u64,
    /// Artifact bytes still in the store after the pass.
    pub retained_bytes: u64,
}

// ---- value encoders/decoders -------------------------------------------

pub(crate) fn put_device(e: &mut Encoder, d: DeviceKind) {
    e.put_u8(d.index() as u8);
}

pub(crate) fn take_device(d: &mut Decoder) -> Result<DeviceKind, CodecError> {
    let i = usize::from(d.take_u8()?);
    DeviceKind::ALL
        .get(i)
        .copied()
        .ok_or(CodecError::Invalid("device index"))
}

pub(crate) fn put_opt_f64(e: &mut Encoder, v: Option<f64>) {
    e.put_bool(v.is_some());
    if let Some(v) = v {
        e.put_f64(v);
    }
}

pub(crate) fn take_opt_f64(d: &mut Decoder) -> Result<Option<f64>, CodecError> {
    Ok(if d.take_bool()? {
        Some(d.take_f64()?)
    } else {
        None
    })
}

pub(crate) fn put_genome(e: &mut Encoder, genome: &[OpType]) {
    e.put_usize(genome.len());
    for &op in genome {
        e.put_u8(op.index() as u8);
    }
}

pub(crate) fn take_genome(d: &mut Decoder) -> Result<Vec<OpType>, CodecError> {
    let n = d.take_usize()?;
    (0..n)
        .map(|_| {
            let i = usize::from(d.take_u8()?);
            OpType::ALL
                .get(i)
                .copied()
                .ok_or(CodecError::Invalid("op type index"))
        })
        .collect()
}

pub(crate) fn put_function_set(e: &mut Encoder, fs: &FunctionSet) {
    e.put_u8(fs.aggregator.index() as u8);
    e.put_u8(fs.message.index() as u8);
    e.put_u8(fs.sample.index() as u8);
    e.put_u8(fs.connect.index() as u8);
    e.put_usize(fs.combine_dim);
}

pub(crate) fn take_function_set(d: &mut Decoder) -> Result<FunctionSet, CodecError> {
    fn pick<T: Copy>(table: &[T], i: u8, what: &'static str) -> Result<T, CodecError> {
        table
            .get(usize::from(i))
            .copied()
            .ok_or(CodecError::Invalid(what))
    }
    Ok(FunctionSet {
        aggregator: pick(&Aggregator::ALL, d.take_u8()?, "aggregator index")?,
        message: pick(&MessageType::ALL, d.take_u8()?, "message index")?,
        sample: pick(&SampleFn::ALL, d.take_u8()?, "sample index")?,
        connect: pick(&ConnectFn::ALL, d.take_u8()?, "connect index")?,
        combine_dim: d.take_usize()?,
    })
}

fn put_tensor(e: &mut Encoder, t: &Tensor) {
    e.put_usize_slice(t.dims());
    e.put_usize(t.data().len());
    for &v in t.data() {
        e.put_f32(v);
    }
}

fn take_tensor(d: &mut Decoder) -> Result<Tensor, CodecError> {
    let dims = d.take_usize_vec()?;
    let n = d.take_usize()?;
    if n != dims.iter().product::<usize>() {
        return Err(CodecError::Invalid("tensor element count"));
    }
    let data = (0..n)
        .map(|_| d.take_f32())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Tensor::from_vec(data, &dims))
}

pub(crate) fn put_train_stats(e: &mut Encoder, s: &TrainStats) {
    e.put_f64(s.train_mape);
    e.put_f64(s.val_mape);
    e.put_f64(s.val_within_10pct);
    e.put_usize(s.train_size);
}

pub(crate) fn take_train_stats(d: &mut Decoder) -> Result<TrainStats, CodecError> {
    Ok(TrainStats {
        train_mape: d.take_f64()?,
        val_mape: d.take_f64()?,
        val_within_10pct: d.take_f64()?,
        train_size: d.take_usize()?,
    })
}

fn put_context(e: &mut Encoder, c: &PredictorContext) {
    e.put_usize(c.positions);
    e.put_usize(c.points);
    e.put_usize(c.k);
    e.put_usize(c.classes);
    e.put_usize_slice(&c.head_hidden);
}

fn take_context(d: &mut Decoder) -> Result<PredictorContext, CodecError> {
    Ok(PredictorContext {
        positions: d.take_usize()?,
        points: d.take_usize()?,
        k: d.take_usize()?,
        classes: d.take_usize()?,
        head_hidden: d.take_usize_vec()?,
    })
}

fn put_predictor(e: &mut Encoder, s: &PredictorSnapshot) {
    put_device(e, s.device);
    put_context(e, &s.context);
    e.put_bool(s.global_node);
    e.put_usize_slice(&s.gcn_dims);
    e.put_usize_slice(&s.mlp_hidden);
    e.put_f64(s.scale_ms);
    put_train_stats(e, &s.stats);
    e.put_usize(s.weights.len());
    for w in &s.weights {
        put_tensor(e, w);
    }
}

fn take_predictor(d: &mut Decoder) -> Result<PredictorSnapshot, CodecError> {
    Ok(PredictorSnapshot {
        device: take_device(d)?,
        context: take_context(d)?,
        global_node: d.take_bool()?,
        gcn_dims: d.take_usize_vec()?,
        mlp_hidden: d.take_usize_vec()?,
        scale_ms: d.take_f64()?,
        stats: take_train_stats(d)?,
        weights: {
            let n = d.take_usize()?;
            (0..n).map(|_| take_tensor(d)).collect::<Result<_, _>>()?
        },
    })
}

pub(crate) fn put_ea_config(e: &mut Encoder, c: &EaConfig) {
    e.put_usize(c.population);
    e.put_usize(c.iterations);
    e.put_f64(c.elite_fraction);
    e.put_f64(c.mutation_prob);
    e.put_u64(c.seed);
}

pub(crate) fn take_ea_config(d: &mut Decoder) -> Result<EaConfig, CodecError> {
    Ok(EaConfig {
        population: d.take_usize()?,
        iterations: d.take_usize()?,
        elite_fraction: d.take_f64()?,
        mutation_prob: d.take_f64()?,
        seed: d.take_u64()?,
    })
}

pub(crate) fn put_eval_stats(e: &mut Encoder, s: &EvalStats) {
    e.put_u64(s.hits);
    e.put_u64(s.misses);
    e.put_u64(s.imported);
    e.put_u64(s.validated);
    e.put_u64(s.rejected);
    e.put_u64(s.batches);
    e.put_u64(s.submitted);
}

pub(crate) fn take_eval_stats(d: &mut Decoder) -> Result<EvalStats, CodecError> {
    Ok(EvalStats {
        hits: d.take_u64()?,
        misses: d.take_u64()?,
        imported: d.take_u64()?,
        validated: d.take_u64()?,
        rejected: d.take_u64()?,
        batches: d.take_u64()?,
        submitted: d.take_u64()?,
    })
}

fn put_rng(e: &mut Encoder, rng: &StdRng) {
    for w in rng.state() {
        e.put_u64(w);
    }
}

fn take_rng(d: &mut Decoder) -> Result<StdRng, CodecError> {
    let mut s = [0u64; 4];
    for w in &mut s {
        *w = d.take_u64()?;
    }
    if s.iter().all(|&w| w == 0) {
        return Err(CodecError::Invalid("all-zero rng state"));
    }
    Ok(StdRng::from_state(s))
}

/// Encodes an EA snapshot; `put_g` encodes one genome (the snapshot is
/// generic over it: op genomes for Stage 2, joint genomes for one-stage).
fn put_ea_with<G>(e: &mut Encoder, ea: &EaSnapshot<G>, put_g: impl Fn(&mut Encoder, &G)) {
    put_rng(e, &ea.rng);
    e.put_usize(ea.scored.len());
    for (g, f) in &ea.scored {
        put_g(e, g);
        e.put_f64(*f);
    }
    put_g(e, &ea.best.0);
    e.put_f64(ea.best.1);
    e.put_usize(ea.evaluations);
    e.put_usize(ea.history.len());
    for &(i, f) in &ea.history {
        e.put_usize(i);
        e.put_f64(f);
    }
    e.put_usize(ea.generation);
}

fn take_ea_with<G>(
    d: &mut Decoder,
    take_g: impl Fn(&mut Decoder) -> Result<G, CodecError>,
) -> Result<EaSnapshot<G>, CodecError> {
    let rng = take_rng(d)?;
    let n = d.take_usize()?;
    let scored = (0..n)
        .map(|_| Ok((take_g(d)?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let best = (take_g(d)?, d.take_f64()?);
    let evaluations = d.take_usize()?;
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_usize()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let generation = d.take_usize()?;
    Ok(EaSnapshot {
        rng,
        scored,
        best,
        evaluations,
        history,
        generation,
    })
}

fn put_joint_genome(e: &mut Encoder, g: &JointGenome) {
    put_function_set(e, &g.0);
    put_function_set(e, &g.1);
    put_genome(e, &g.2);
}

fn take_joint_genome(d: &mut Decoder) -> Result<JointGenome, CodecError> {
    let upper = take_function_set(d)?;
    let lower = take_function_set(d)?;
    let genome = take_genome(d)?;
    if genome.is_empty() {
        return Err(CodecError::Invalid("empty joint genome"));
    }
    Ok((upper, lower, genome))
}

/// Cache entries are stored without their `Architecture`: the genome plus
/// the run's function sets and task geometry rebuild it exactly
/// (`Architecture::from_genome` is how the search built it in the first
/// place), which keeps checkpoints compact.
fn put_cache_entries(e: &mut Encoder, entries: &[(Vec<OpType>, ScoredCandidate)]) {
    e.put_usize(entries.len());
    for (genome, c) in entries {
        put_genome(e, genome);
        e.put_f64(c.score);
        e.put_f64(c.accuracy);
        e.put_f64(c.latency_ms);
        e.put_f64(c.cost_ms);
        e.put_bool(c.valid);
        put_opt_f64(e, c.energy_mj);
        put_opt_f64(e, c.peak_mem_mb);
    }
}

fn take_cache_entries(
    d: &mut Decoder,
    upper: FunctionSet,
    lower: FunctionSet,
    k: usize,
    classes: usize,
) -> Result<Vec<(Vec<OpType>, ScoredCandidate)>, CodecError> {
    let n = d.take_usize()?;
    (0..n)
        .map(|_| {
            let genome = take_genome(d)?;
            if genome.is_empty() {
                return Err(CodecError::Invalid("empty genome"));
            }
            let candidate = ScoredCandidate {
                architecture: Architecture::from_genome(&genome, upper, lower, k, classes),
                score: d.take_f64()?,
                accuracy: d.take_f64()?,
                latency_ms: d.take_f64()?,
                cost_ms: d.take_f64()?,
                valid: d.take_bool()?,
                energy_mj: take_opt_f64(d)?,
                peak_mem_mb: take_opt_f64(d)?,
            };
            Ok((genome, candidate))
        })
        .collect()
}

fn put_checkpoint(e: &mut Encoder, task: &TaskConfig, cp: &SearchCheckpoint) {
    e.put_u64(cp.seed);
    put_device(e, cp.device);
    e.put_usize(task.k);
    e.put_usize(task.classes());
    put_function_set(e, &cp.functions.0);
    put_function_set(e, &cp.functions.1);
    put_ea_config(e, &cp.ea_config);
    e.put_usize(cp.generation);
    put_ea_with(e, &cp.ea, |e, g: &Vec<OpType>| put_genome(e, g));
    put_eval_stats(e, &cp.eval_stats);
    put_cache_entries(e, &cp.cache);
    put_cache_entries(e, &cp.warm_cache);
    e.put_f64(cp.clock_ms);
    e.put_usize(cp.history.len());
    for &(t, s) in &cp.history {
        e.put_f64(t);
        e.put_f64(s);
    }
    match &cp.best {
        None => e.put_bool(false),
        Some((model, valid)) => {
            e.put_bool(true);
            put_genome(e, &model.genome);
            e.put_f64(model.score);
            e.put_f64(model.supernet_accuracy);
            e.put_f64(model.latency_ms);
            e.put_bool(*valid);
        }
    }
}

fn take_checkpoint(d: &mut Decoder) -> Result<SearchCheckpoint, CodecError> {
    let seed = d.take_u64()?;
    let device = take_device(d)?;
    let k = d.take_usize()?;
    let classes = d.take_usize()?;
    let upper = take_function_set(d)?;
    let lower = take_function_set(d)?;
    let ea_config = take_ea_config(d)?;
    let generation = d.take_usize()?;
    let ea = take_ea_with(d, take_genome)?;
    let eval_stats = take_eval_stats(d)?;
    let cache = take_cache_entries(d, upper, lower, k, classes)?;
    let warm_cache = take_cache_entries(d, upper, lower, k, classes)?;
    let clock_ms = d.take_f64()?;
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_f64()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let best = if d.take_bool()? {
        let genome = take_genome(d)?;
        if genome.is_empty() {
            return Err(CodecError::Invalid("empty best genome"));
        }
        let architecture = Architecture::from_genome(&genome, upper, lower, k, classes);
        let model = SearchedModel {
            architecture,
            genome,
            functions: (upper, lower),
            score: d.take_f64()?,
            supernet_accuracy: d.take_f64()?,
            latency_ms: d.take_f64()?,
        };
        let valid = d.take_bool()?;
        Some((model, valid))
    } else {
        None
    };
    Ok(SearchCheckpoint {
        seed,
        device,
        functions: (upper, lower),
        ea_config,
        generation,
        ea,
        eval_stats,
        cache,
        warm_cache,
        clock_ms,
        history,
        best,
    })
}

/// One-stage cache entries carry each candidate's own function sets (the
/// joint genome), which is also what rebuilds the architecture at load
/// time.
fn put_joint_cache_entries(e: &mut Encoder, entries: &[(JointGenome, ScoredCandidate)]) {
    e.put_usize(entries.len());
    for (genome, c) in entries {
        put_joint_genome(e, genome);
        e.put_f64(c.score);
        e.put_f64(c.accuracy);
        e.put_f64(c.latency_ms);
        e.put_f64(c.cost_ms);
        e.put_bool(c.valid);
        put_opt_f64(e, c.energy_mj);
        put_opt_f64(e, c.peak_mem_mb);
    }
}

fn take_joint_cache_entries(
    d: &mut Decoder,
    k: usize,
    classes: usize,
) -> Result<Vec<(JointGenome, ScoredCandidate)>, CodecError> {
    let n = d.take_usize()?;
    (0..n)
        .map(|_| {
            let genome = take_joint_genome(d)?;
            let candidate = ScoredCandidate {
                architecture: Architecture::from_genome(&genome.2, genome.0, genome.1, k, classes),
                score: d.take_f64()?,
                accuracy: d.take_f64()?,
                latency_ms: d.take_f64()?,
                cost_ms: d.take_f64()?,
                valid: d.take_bool()?,
                energy_mj: take_opt_f64(d)?,
                peak_mem_mb: take_opt_f64(d)?,
            };
            Ok((genome, candidate))
        })
        .collect()
}

fn put_one_stage_checkpoint(e: &mut Encoder, task: &TaskConfig, cp: &OneStageCheckpoint) {
    e.put_u64(cp.seed);
    put_device(e, cp.device);
    e.put_usize(task.k);
    e.put_usize(task.classes());
    put_ea_config(e, &cp.ea_config);
    e.put_usize(cp.generation);
    put_ea_with(e, &cp.ea, put_joint_genome);
    put_eval_stats(e, &cp.eval_stats);
    put_joint_cache_entries(e, &cp.cache);
    e.put_f64(cp.clock_ms);
    e.put_usize(cp.history.len());
    for &(t, s) in &cp.history {
        e.put_f64(t);
        e.put_f64(s);
    }
    match &cp.best {
        None => e.put_bool(false),
        Some((model, valid)) => {
            e.put_bool(true);
            // The one-stage best carries its own function sets (every
            // candidate evolves them), unlike the Stage-2 best which
            // shares the checkpoint-level pair.
            put_function_set(e, &model.functions.0);
            put_function_set(e, &model.functions.1);
            put_genome(e, &model.genome);
            e.put_f64(model.score);
            e.put_f64(model.supernet_accuracy);
            e.put_f64(model.latency_ms);
            e.put_bool(*valid);
        }
    }
}

fn take_one_stage_checkpoint(d: &mut Decoder) -> Result<OneStageCheckpoint, CodecError> {
    let seed = d.take_u64()?;
    let device = take_device(d)?;
    let k = d.take_usize()?;
    let classes = d.take_usize()?;
    let ea_config = take_ea_config(d)?;
    let generation = d.take_usize()?;
    let ea = take_ea_with(d, take_joint_genome)?;
    let eval_stats = take_eval_stats(d)?;
    let cache = take_joint_cache_entries(d, k, classes)?;
    let clock_ms = d.take_f64()?;
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_f64()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let best = if d.take_bool()? {
        let upper = take_function_set(d)?;
        let lower = take_function_set(d)?;
        let genome = take_genome(d)?;
        if genome.is_empty() {
            return Err(CodecError::Invalid("empty best genome"));
        }
        let architecture = Architecture::from_genome(&genome, upper, lower, k, classes);
        let model = SearchedModel {
            architecture,
            genome,
            functions: (upper, lower),
            score: d.take_f64()?,
            supernet_accuracy: d.take_f64()?,
            latency_ms: d.take_f64()?,
        };
        let valid = d.take_bool()?;
        Some((model, valid))
    } else {
        None
    };
    Ok(OneStageCheckpoint {
        seed,
        device,
        ea_config,
        generation,
        ea,
        eval_stats,
        cache,
        clock_ms,
        history,
        best,
    })
}
