//! The cross-run artifact store: predictor weights, search checkpoints and
//! evaluator score caches persisted to a directory via the versioned
//! binary [`crate::codec`].
//!
//! Artifacts are keyed by `(device, configuration fingerprint)` so a store
//! can hold many tasks and search configurations side by side; writes go
//! through a temp file + rename, so a kill mid-write can never leave a
//! half-written artifact under a live name (and the codec's checksum
//! rejects any other corruption at load time).

use crate::codec::{fnv1a, ArtifactKind, CodecError, Decoder, Encoder};
use hgnas_core::{
    EaConfig, EaSnapshot, EvalStats, JointGenome, OneStageCheckpoint, ScoredCandidate,
    SearchCheckpoint, SearchConfig, SearchedModel, SessionSnapshot, TaskConfig,
};
use hgnas_device::DeviceKind;
use hgnas_ops::{Aggregator, Architecture, ConnectFn, FunctionSet, MessageType, OpType, SampleFn};
use hgnas_predictor::{PredictorConfig, PredictorContext, PredictorSnapshot, TrainStats};
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors the store surfaces.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The artifact exists but failed to decode (truncated/corrupt/foreign).
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "artifact decode error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Identifies one artifact slot: a device plus a configuration
/// fingerprint (see [`predictor_fingerprint`] / [`search_fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactKey {
    /// The device the artifact belongs to.
    pub device: DeviceKind,
    /// Configuration fingerprint disambiguating tasks/configs.
    pub fingerprint: u64,
}

impl ArtifactKey {
    /// The `-{device}-{fingerprint}.hgart` suffix every artifact of this
    /// key's slots carries, whatever the kind prefix — what the
    /// stale-fingerprint sweep matches on.
    fn file_suffix(&self) -> String {
        let slug: String = self
            .device
            .name()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!("-{slug}-{:016x}.hgart", self.fingerprint)
    }

    fn file_name(&self, prefix: &str) -> String {
        format!("{prefix}{}", self.file_suffix())
    }
}

/// Fingerprint of everything that shapes predictor training: the task
/// context and the full predictor configuration. Two runs with equal
/// fingerprints train bit-identical predictors, so one can reuse the
/// other's weights.
pub fn predictor_fingerprint(ctx: &PredictorContext, cfg: &PredictorConfig) -> u64 {
    // Debug formatting covers every field; cheap, deterministic, and new
    // fields automatically invalidate old artifacts (a cache miss, never a
    // wrong hit).
    fnv1a(format!("{ctx:?}|{cfg:?}").as_bytes())
}

/// Fingerprint of everything that shapes a search outcome: the task and
/// the search configuration *minus* the thread budget, which is
/// bit-transparent by construction and must not split the artifact space.
pub fn search_fingerprint(task: &TaskConfig, cfg: &SearchConfig) -> u64 {
    let mut normalised = cfg.clone();
    normalised.eval_threads = 1;
    fnv1a(format!("{task:?}|{normalised:?}").as_bytes())
}

/// A directory of HGNAS artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Temp files younger than this survive [`ArtifactStore::prune`]: they
    /// may belong to a concurrent writer between its `write` and `rename`.
    /// Any real write completes in well under a minute; anything older is
    /// a torn write's leftover.
    pub const TMP_GC_AGE: std::time::Duration = std::time::Duration::from_secs(60);

    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        Ok(ArtifactStore {
            root: root.as_ref().to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
        // The temp name is unique per writer: concurrent shards (e.g. a
        // fleet configured with the same device twice) may persist the
        // same artifact slot at the same time, and interleaved writes to
        // one shared temp file would rename torn bytes into place.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let w = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let final_path = self.root.join(name);
        let tmp = self
            .root
            .join(format!("{name}.{}-{w}.tmp", std::process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &final_path)?;
        Ok(final_path)
    }

    fn read_optional(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.root.join(name)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Opens a decoder over `bytes`, mapping a version mismatch to `None`:
    /// an artifact written by an older (or newer) format is a safe cold
    /// start for its slot — the documented versioning contract — not a
    /// run-killing error. Anything else (corruption, wrong kind) still
    /// fails loudly.
    fn open_current<'a>(
        bytes: &'a [u8],
        kind: ArtifactKind,
    ) -> Result<Option<Decoder<'a>>, StoreError> {
        match Decoder::open(bytes, kind) {
            Ok(d) => Ok(Some(d)),
            Err(CodecError::UnsupportedVersion(_)) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Persists trained predictor weights.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_predictor(
        &self,
        key: &ArtifactKey,
        snap: &PredictorSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::Predictor);
        put_predictor(&mut e, snap);
        Ok(self.write_atomic(&key.file_name("predictor"), &e.finish())?)
    }

    /// Loads predictor weights if the slot holds any.
    ///
    /// # Errors
    ///
    /// Filesystem failures, or [`StoreError::Codec`] when the artifact is
    /// corrupt (a missing artifact is `Ok(None)`, not an error).
    pub fn load_predictor(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<PredictorSnapshot>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("predictor"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::Predictor)? else {
            return Ok(None);
        };
        Ok(Some(take_predictor(&mut d)?))
    }

    /// Persists a Stage-2 search checkpoint. `task` supplies the
    /// architecture-rebuild parameters (`k`, classes) the compact encoding
    /// needs at load time, plus a fingerprint cross-check.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_checkpoint(
        &self,
        key: &ArtifactKey,
        task: &TaskConfig,
        cp: &SearchCheckpoint,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::Checkpoint);
        put_checkpoint(&mut e, task, cp);
        Ok(self.write_atomic(&key.file_name("checkpoint"), &e.finish())?)
    }

    /// Loads a search checkpoint if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    pub fn load_checkpoint(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<SearchCheckpoint>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("checkpoint"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::Checkpoint)? else {
            return Ok(None);
        };
        Ok(Some(take_checkpoint(&mut d)?))
    }

    /// Persists a one-stage (joint baseline) checkpoint. The counterpart
    /// of [`ArtifactStore::save_checkpoint`] for `Strategy::OneStage`
    /// runs; the two kinds live in separate slots and can never be
    /// mistaken for each other (distinct [`ArtifactKind`]s).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_one_stage_checkpoint(
        &self,
        key: &ArtifactKey,
        task: &TaskConfig,
        cp: &OneStageCheckpoint,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::OneStageCheckpoint);
        put_one_stage_checkpoint(&mut e, task, cp);
        Ok(self.write_atomic(&key.file_name("onestage"), &e.finish())?)
    }

    /// Loads a one-stage checkpoint if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    pub fn load_one_stage_checkpoint(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<OneStageCheckpoint>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("onestage"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::OneStageCheckpoint)? else {
            return Ok(None);
        };
        Ok(Some(take_one_stage_checkpoint(&mut d)?))
    }

    /// Persists a finished run's evaluator score cache as a standalone
    /// artifact. These are what [`hgnas_core::RunOptions::imported_cache`]
    /// warm starts consume: a later run with the same configuration
    /// fingerprint can promote the stored scores instead of recomputing
    /// them, even when its checkpoint is gone.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_score_cache(
        &self,
        key: &ArtifactKey,
        task: &TaskConfig,
        functions: (FunctionSet, FunctionSet),
        entries: &[(Vec<OpType>, ScoredCandidate)],
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::ScoreCache);
        e.put_usize(task.k);
        e.put_usize(task.classes());
        put_function_set(&mut e, &functions.0);
        put_function_set(&mut e, &functions.1);
        put_cache_entries(&mut e, entries);
        Ok(self.write_atomic(&key.file_name("scorecache"), &e.finish())?)
    }

    /// Loads a score cache if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    #[allow(clippy::type_complexity)]
    pub fn load_score_cache(
        &self,
        key: &ArtifactKey,
    ) -> Result<Option<Vec<(Vec<OpType>, ScoredCandidate)>>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("scorecache"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::ScoreCache)? else {
            return Ok(None);
        };
        let k = d.take_usize()?;
        let classes = d.take_usize()?;
        let upper = take_function_set(&mut d)?;
        let lower = take_function_set(&mut d)?;
        Ok(Some(take_cache_entries(&mut d, upper, lower, k, classes)?))
    }

    /// Persists a spilled session (`hgnas_core::SessionState::export`):
    /// the Stage-1 outcome plus the pre-trained supernet weights. What the
    /// scheduler's session cache writes when a memory budget evicts a
    /// parked shard's session, so the next slice restores it instead of
    /// replaying Stage 1 + pre-training.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save_session(
        &self,
        key: &ArtifactKey,
        snap: &SessionSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let mut e = Encoder::new(ArtifactKind::Session);
        put_function_set(&mut e, &snap.functions.0);
        put_function_set(&mut e, &snap.functions.1);
        put_eval_stats(&mut e, &snap.stage1_stats);
        e.put_f64(snap.clock_ms);
        e.put_usize(snap.weights.len());
        for w in &snap.weights {
            put_tensor(&mut e, w);
        }
        Ok(self.write_atomic(&key.file_name("session"), &e.finish())?)
    }

    /// Loads a spilled session if the slot holds one.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::load_predictor`].
    pub fn load_session(&self, key: &ArtifactKey) -> Result<Option<SessionSnapshot>, StoreError> {
        let Some(bytes) = self.read_optional(&key.file_name("session"))? else {
            return Ok(None);
        };
        let Some(mut d) = Self::open_current(&bytes, ArtifactKind::Session)? else {
            return Ok(None);
        };
        let upper = take_function_set(&mut d)?;
        let lower = take_function_set(&mut d)?;
        let stage1_stats = take_eval_stats(&mut d)?;
        let clock_ms = d.take_f64()?;
        let n = d.take_usize()?;
        let weights = (0..n)
            .map(|_| take_tensor(&mut d))
            .collect::<Result<_, _>>()?;
        Ok(Some(SessionSnapshot {
            functions: (upper, lower),
            stage1_stats,
            clock_ms,
            weights,
        }))
    }

    /// Deletes leftover temp files (torn writes) and then the
    /// oldest-modified artifacts until the store holds at most `max_bytes`
    /// — the size-budget half of the GC story for long-lived fleet hosts,
    /// whose stores otherwise only grow. Dropping an artifact is always
    /// safe: the next run that wants it cold-starts that slot. Only temp
    /// files older than [`ArtifactStore::TMP_GC_AGE`] are touched, so a GC
    /// pass can run alongside a live fleet without racing an in-flight
    /// `write → rename` out of its temp file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn prune(&self, max_bytes: u64) -> Result<PruneReport, StoreError> {
        let now = std::time::SystemTime::now();
        let mut report = PruneReport::default();
        let mut artifacts: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                // A torn write's leftovers are garbage at any budget — but
                // a *young* temp file may be a concurrent writer mid
                // `write → rename`; deleting it would fail that save.
                let stale = now
                    .duration_since(meta.modified()?)
                    .is_ok_and(|age| age >= Self::TMP_GC_AGE);
                if stale {
                    fs::remove_file(&path)?;
                    report.removed_files += 1;
                    report.removed_bytes += meta.len();
                }
            } else if name.ends_with(".hgart") {
                artifacts.push((path, meta.len(), meta.modified()?));
            }
        }
        // Oldest first; the name tie-break keeps the order deterministic
        // under coarse filesystem mtime granularity.
        artifacts.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut total: u64 = artifacts.iter().map(|a| a.1).sum();
        for (path, len, _) in &artifacts {
            if total <= max_bytes {
                break;
            }
            fs::remove_file(path)?;
            report.removed_files += 1;
            report.removed_bytes += len;
            total -= len;
        }
        report.retained_bytes = total;
        Ok(report)
    }

    /// Deletes every artifact (all kinds) whose `(device, fingerprint)`
    /// key is not in `live` — the stale-fingerprint sweep: a task or
    /// configuration change re-fingerprints its slots and strands the old
    /// artifacts forever, since nothing will ever look them up again.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn sweep_stale(&self, live: &[ArtifactKey]) -> Result<PruneReport, StoreError> {
        let suffixes: Vec<String> = live.iter().map(ArtifactKey::file_suffix).collect();
        let mut report = PruneReport::default();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.ends_with(".hgart") {
                continue;
            }
            if suffixes.iter().any(|s| name.ends_with(s.as_str())) {
                report.retained_bytes += meta.len();
            } else {
                fs::remove_file(&path)?;
                report.removed_files += 1;
                report.removed_bytes += meta.len();
            }
        }
        Ok(report)
    }
}

/// What a GC pass ([`ArtifactStore::prune`] / [`ArtifactStore::sweep_stale`])
/// removed and kept.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneReport {
    /// Files deleted.
    pub removed_files: usize,
    /// Bytes reclaimed.
    pub removed_bytes: u64,
    /// Artifact bytes still in the store after the pass.
    pub retained_bytes: u64,
}

// ---- value encoders/decoders -------------------------------------------

fn put_device(e: &mut Encoder, d: DeviceKind) {
    e.put_u8(d.index() as u8);
}

fn take_device(d: &mut Decoder) -> Result<DeviceKind, CodecError> {
    let i = usize::from(d.take_u8()?);
    DeviceKind::ALL
        .get(i)
        .copied()
        .ok_or(CodecError::Invalid("device index"))
}

fn put_genome(e: &mut Encoder, genome: &[OpType]) {
    e.put_usize(genome.len());
    for &op in genome {
        e.put_u8(op.index() as u8);
    }
}

fn take_genome(d: &mut Decoder) -> Result<Vec<OpType>, CodecError> {
    let n = d.take_usize()?;
    (0..n)
        .map(|_| {
            let i = usize::from(d.take_u8()?);
            OpType::ALL
                .get(i)
                .copied()
                .ok_or(CodecError::Invalid("op type index"))
        })
        .collect()
}

fn put_function_set(e: &mut Encoder, fs: &FunctionSet) {
    e.put_u8(fs.aggregator.index() as u8);
    e.put_u8(fs.message.index() as u8);
    e.put_u8(fs.sample.index() as u8);
    e.put_u8(fs.connect.index() as u8);
    e.put_usize(fs.combine_dim);
}

fn take_function_set(d: &mut Decoder) -> Result<FunctionSet, CodecError> {
    fn pick<T: Copy>(table: &[T], i: u8, what: &'static str) -> Result<T, CodecError> {
        table
            .get(usize::from(i))
            .copied()
            .ok_or(CodecError::Invalid(what))
    }
    Ok(FunctionSet {
        aggregator: pick(&Aggregator::ALL, d.take_u8()?, "aggregator index")?,
        message: pick(&MessageType::ALL, d.take_u8()?, "message index")?,
        sample: pick(&SampleFn::ALL, d.take_u8()?, "sample index")?,
        connect: pick(&ConnectFn::ALL, d.take_u8()?, "connect index")?,
        combine_dim: d.take_usize()?,
    })
}

fn put_tensor(e: &mut Encoder, t: &Tensor) {
    e.put_usize_slice(t.dims());
    e.put_usize(t.data().len());
    for &v in t.data() {
        e.put_f32(v);
    }
}

fn take_tensor(d: &mut Decoder) -> Result<Tensor, CodecError> {
    let dims = d.take_usize_vec()?;
    let n = d.take_usize()?;
    if n != dims.iter().product::<usize>() {
        return Err(CodecError::Invalid("tensor element count"));
    }
    let data = (0..n)
        .map(|_| d.take_f32())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Tensor::from_vec(data, &dims))
}

fn put_train_stats(e: &mut Encoder, s: &TrainStats) {
    e.put_f64(s.train_mape);
    e.put_f64(s.val_mape);
    e.put_f64(s.val_within_10pct);
    e.put_usize(s.train_size);
}

fn take_train_stats(d: &mut Decoder) -> Result<TrainStats, CodecError> {
    Ok(TrainStats {
        train_mape: d.take_f64()?,
        val_mape: d.take_f64()?,
        val_within_10pct: d.take_f64()?,
        train_size: d.take_usize()?,
    })
}

fn put_context(e: &mut Encoder, c: &PredictorContext) {
    e.put_usize(c.positions);
    e.put_usize(c.points);
    e.put_usize(c.k);
    e.put_usize(c.classes);
    e.put_usize_slice(&c.head_hidden);
}

fn take_context(d: &mut Decoder) -> Result<PredictorContext, CodecError> {
    Ok(PredictorContext {
        positions: d.take_usize()?,
        points: d.take_usize()?,
        k: d.take_usize()?,
        classes: d.take_usize()?,
        head_hidden: d.take_usize_vec()?,
    })
}

fn put_predictor(e: &mut Encoder, s: &PredictorSnapshot) {
    put_device(e, s.device);
    put_context(e, &s.context);
    e.put_bool(s.global_node);
    e.put_usize_slice(&s.gcn_dims);
    e.put_usize_slice(&s.mlp_hidden);
    e.put_f64(s.scale_ms);
    put_train_stats(e, &s.stats);
    e.put_usize(s.weights.len());
    for w in &s.weights {
        put_tensor(e, w);
    }
}

fn take_predictor(d: &mut Decoder) -> Result<PredictorSnapshot, CodecError> {
    Ok(PredictorSnapshot {
        device: take_device(d)?,
        context: take_context(d)?,
        global_node: d.take_bool()?,
        gcn_dims: d.take_usize_vec()?,
        mlp_hidden: d.take_usize_vec()?,
        scale_ms: d.take_f64()?,
        stats: take_train_stats(d)?,
        weights: {
            let n = d.take_usize()?;
            (0..n).map(|_| take_tensor(d)).collect::<Result<_, _>>()?
        },
    })
}

fn put_ea_config(e: &mut Encoder, c: &EaConfig) {
    e.put_usize(c.population);
    e.put_usize(c.iterations);
    e.put_f64(c.elite_fraction);
    e.put_f64(c.mutation_prob);
    e.put_u64(c.seed);
}

fn take_ea_config(d: &mut Decoder) -> Result<EaConfig, CodecError> {
    Ok(EaConfig {
        population: d.take_usize()?,
        iterations: d.take_usize()?,
        elite_fraction: d.take_f64()?,
        mutation_prob: d.take_f64()?,
        seed: d.take_u64()?,
    })
}

fn put_eval_stats(e: &mut Encoder, s: &EvalStats) {
    e.put_u64(s.hits);
    e.put_u64(s.misses);
    e.put_u64(s.imported);
    e.put_u64(s.validated);
    e.put_u64(s.rejected);
    e.put_u64(s.batches);
    e.put_u64(s.submitted);
}

fn take_eval_stats(d: &mut Decoder) -> Result<EvalStats, CodecError> {
    Ok(EvalStats {
        hits: d.take_u64()?,
        misses: d.take_u64()?,
        imported: d.take_u64()?,
        validated: d.take_u64()?,
        rejected: d.take_u64()?,
        batches: d.take_u64()?,
        submitted: d.take_u64()?,
    })
}

fn put_rng(e: &mut Encoder, rng: &StdRng) {
    for w in rng.state() {
        e.put_u64(w);
    }
}

fn take_rng(d: &mut Decoder) -> Result<StdRng, CodecError> {
    let mut s = [0u64; 4];
    for w in &mut s {
        *w = d.take_u64()?;
    }
    if s.iter().all(|&w| w == 0) {
        return Err(CodecError::Invalid("all-zero rng state"));
    }
    Ok(StdRng::from_state(s))
}

/// Encodes an EA snapshot; `put_g` encodes one genome (the snapshot is
/// generic over it: op genomes for Stage 2, joint genomes for one-stage).
fn put_ea_with<G>(e: &mut Encoder, ea: &EaSnapshot<G>, put_g: impl Fn(&mut Encoder, &G)) {
    put_rng(e, &ea.rng);
    e.put_usize(ea.scored.len());
    for (g, f) in &ea.scored {
        put_g(e, g);
        e.put_f64(*f);
    }
    put_g(e, &ea.best.0);
    e.put_f64(ea.best.1);
    e.put_usize(ea.evaluations);
    e.put_usize(ea.history.len());
    for &(i, f) in &ea.history {
        e.put_usize(i);
        e.put_f64(f);
    }
    e.put_usize(ea.generation);
}

fn take_ea_with<G>(
    d: &mut Decoder,
    take_g: impl Fn(&mut Decoder) -> Result<G, CodecError>,
) -> Result<EaSnapshot<G>, CodecError> {
    let rng = take_rng(d)?;
    let n = d.take_usize()?;
    let scored = (0..n)
        .map(|_| Ok((take_g(d)?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let best = (take_g(d)?, d.take_f64()?);
    let evaluations = d.take_usize()?;
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_usize()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let generation = d.take_usize()?;
    Ok(EaSnapshot {
        rng,
        scored,
        best,
        evaluations,
        history,
        generation,
    })
}

fn put_joint_genome(e: &mut Encoder, g: &JointGenome) {
    put_function_set(e, &g.0);
    put_function_set(e, &g.1);
    put_genome(e, &g.2);
}

fn take_joint_genome(d: &mut Decoder) -> Result<JointGenome, CodecError> {
    let upper = take_function_set(d)?;
    let lower = take_function_set(d)?;
    let genome = take_genome(d)?;
    if genome.is_empty() {
        return Err(CodecError::Invalid("empty joint genome"));
    }
    Ok((upper, lower, genome))
}

/// Cache entries are stored without their `Architecture`: the genome plus
/// the run's function sets and task geometry rebuild it exactly
/// (`Architecture::from_genome` is how the search built it in the first
/// place), which keeps checkpoints compact.
fn put_cache_entries(e: &mut Encoder, entries: &[(Vec<OpType>, ScoredCandidate)]) {
    e.put_usize(entries.len());
    for (genome, c) in entries {
        put_genome(e, genome);
        e.put_f64(c.score);
        e.put_f64(c.accuracy);
        e.put_f64(c.latency_ms);
        e.put_f64(c.cost_ms);
        e.put_bool(c.valid);
    }
}

fn take_cache_entries(
    d: &mut Decoder,
    upper: FunctionSet,
    lower: FunctionSet,
    k: usize,
    classes: usize,
) -> Result<Vec<(Vec<OpType>, ScoredCandidate)>, CodecError> {
    let n = d.take_usize()?;
    (0..n)
        .map(|_| {
            let genome = take_genome(d)?;
            if genome.is_empty() {
                return Err(CodecError::Invalid("empty genome"));
            }
            let candidate = ScoredCandidate {
                architecture: Architecture::from_genome(&genome, upper, lower, k, classes),
                score: d.take_f64()?,
                accuracy: d.take_f64()?,
                latency_ms: d.take_f64()?,
                cost_ms: d.take_f64()?,
                valid: d.take_bool()?,
            };
            Ok((genome, candidate))
        })
        .collect()
}

fn put_checkpoint(e: &mut Encoder, task: &TaskConfig, cp: &SearchCheckpoint) {
    e.put_u64(cp.seed);
    put_device(e, cp.device);
    e.put_usize(task.k);
    e.put_usize(task.classes());
    put_function_set(e, &cp.functions.0);
    put_function_set(e, &cp.functions.1);
    put_ea_config(e, &cp.ea_config);
    e.put_usize(cp.generation);
    put_ea_with(e, &cp.ea, |e, g: &Vec<OpType>| put_genome(e, g));
    put_eval_stats(e, &cp.eval_stats);
    put_cache_entries(e, &cp.cache);
    put_cache_entries(e, &cp.warm_cache);
    e.put_f64(cp.clock_ms);
    e.put_usize(cp.history.len());
    for &(t, s) in &cp.history {
        e.put_f64(t);
        e.put_f64(s);
    }
    match &cp.best {
        None => e.put_bool(false),
        Some((model, valid)) => {
            e.put_bool(true);
            put_genome(e, &model.genome);
            e.put_f64(model.score);
            e.put_f64(model.supernet_accuracy);
            e.put_f64(model.latency_ms);
            e.put_bool(*valid);
        }
    }
}

fn take_checkpoint(d: &mut Decoder) -> Result<SearchCheckpoint, CodecError> {
    let seed = d.take_u64()?;
    let device = take_device(d)?;
    let k = d.take_usize()?;
    let classes = d.take_usize()?;
    let upper = take_function_set(d)?;
    let lower = take_function_set(d)?;
    let ea_config = take_ea_config(d)?;
    let generation = d.take_usize()?;
    let ea = take_ea_with(d, take_genome)?;
    let eval_stats = take_eval_stats(d)?;
    let cache = take_cache_entries(d, upper, lower, k, classes)?;
    let warm_cache = take_cache_entries(d, upper, lower, k, classes)?;
    let clock_ms = d.take_f64()?;
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_f64()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let best = if d.take_bool()? {
        let genome = take_genome(d)?;
        if genome.is_empty() {
            return Err(CodecError::Invalid("empty best genome"));
        }
        let architecture = Architecture::from_genome(&genome, upper, lower, k, classes);
        let model = SearchedModel {
            architecture,
            genome,
            functions: (upper, lower),
            score: d.take_f64()?,
            supernet_accuracy: d.take_f64()?,
            latency_ms: d.take_f64()?,
        };
        let valid = d.take_bool()?;
        Some((model, valid))
    } else {
        None
    };
    Ok(SearchCheckpoint {
        seed,
        device,
        functions: (upper, lower),
        ea_config,
        generation,
        ea,
        eval_stats,
        cache,
        warm_cache,
        clock_ms,
        history,
        best,
    })
}

/// One-stage cache entries carry each candidate's own function sets (the
/// joint genome), which is also what rebuilds the architecture at load
/// time.
fn put_joint_cache_entries(e: &mut Encoder, entries: &[(JointGenome, ScoredCandidate)]) {
    e.put_usize(entries.len());
    for (genome, c) in entries {
        put_joint_genome(e, genome);
        e.put_f64(c.score);
        e.put_f64(c.accuracy);
        e.put_f64(c.latency_ms);
        e.put_f64(c.cost_ms);
        e.put_bool(c.valid);
    }
}

fn take_joint_cache_entries(
    d: &mut Decoder,
    k: usize,
    classes: usize,
) -> Result<Vec<(JointGenome, ScoredCandidate)>, CodecError> {
    let n = d.take_usize()?;
    (0..n)
        .map(|_| {
            let genome = take_joint_genome(d)?;
            let candidate = ScoredCandidate {
                architecture: Architecture::from_genome(&genome.2, genome.0, genome.1, k, classes),
                score: d.take_f64()?,
                accuracy: d.take_f64()?,
                latency_ms: d.take_f64()?,
                cost_ms: d.take_f64()?,
                valid: d.take_bool()?,
            };
            Ok((genome, candidate))
        })
        .collect()
}

fn put_one_stage_checkpoint(e: &mut Encoder, task: &TaskConfig, cp: &OneStageCheckpoint) {
    e.put_u64(cp.seed);
    put_device(e, cp.device);
    e.put_usize(task.k);
    e.put_usize(task.classes());
    put_ea_config(e, &cp.ea_config);
    e.put_usize(cp.generation);
    put_ea_with(e, &cp.ea, put_joint_genome);
    put_eval_stats(e, &cp.eval_stats);
    put_joint_cache_entries(e, &cp.cache);
    e.put_f64(cp.clock_ms);
    e.put_usize(cp.history.len());
    for &(t, s) in &cp.history {
        e.put_f64(t);
        e.put_f64(s);
    }
    match &cp.best {
        None => e.put_bool(false),
        Some((model, valid)) => {
            e.put_bool(true);
            // The one-stage best carries its own function sets (every
            // candidate evolves them), unlike the Stage-2 best which
            // shares the checkpoint-level pair.
            put_function_set(e, &model.functions.0);
            put_function_set(e, &model.functions.1);
            put_genome(e, &model.genome);
            e.put_f64(model.score);
            e.put_f64(model.supernet_accuracy);
            e.put_f64(model.latency_ms);
            e.put_bool(*valid);
        }
    }
}

fn take_one_stage_checkpoint(d: &mut Decoder) -> Result<OneStageCheckpoint, CodecError> {
    let seed = d.take_u64()?;
    let device = take_device(d)?;
    let k = d.take_usize()?;
    let classes = d.take_usize()?;
    let ea_config = take_ea_config(d)?;
    let generation = d.take_usize()?;
    let ea = take_ea_with(d, take_joint_genome)?;
    let eval_stats = take_eval_stats(d)?;
    let cache = take_joint_cache_entries(d, k, classes)?;
    let clock_ms = d.take_f64()?;
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_f64()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let best = if d.take_bool()? {
        let upper = take_function_set(d)?;
        let lower = take_function_set(d)?;
        let genome = take_genome(d)?;
        if genome.is_empty() {
            return Err(CodecError::Invalid("empty best genome"));
        }
        let architecture = Architecture::from_genome(&genome, upper, lower, k, classes);
        let model = SearchedModel {
            architecture,
            genome,
            functions: (upper, lower),
            score: d.take_f64()?,
            supernet_accuracy: d.take_f64()?,
            latency_ms: d.take_f64()?,
        };
        let valid = d.take_bool()?;
        Some((model, valid))
    } else {
        None
    };
    Ok(OneStageCheckpoint {
        seed,
        device,
        ea_config,
        generation,
        ea,
        eval_stats,
        cache,
        clock_ms,
        history,
        best,
    })
}
