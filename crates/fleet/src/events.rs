//! Streaming fleet reports: the event stream the scheduler publishes and
//! an incremental Table-1-style renderer consuming it.
//!
//! The scheduler emits a [`FleetEvent`] whenever a shard makes observable
//! progress (started, generation boundary, Pareto-front change, preempted,
//! finished, failed). Events travel over a `crossbeam::channel` shim
//! channel, so a consumer can live on any thread; [`StreamingReporter`]
//! is the built-in consumer, folding events into per-shard rows and
//! rendering a live snapshot table at any point — the streaming
//! counterpart of [`crate::FleetReport::summary_table`].

use crate::driver::ParetoPoint;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hgnas_device::DeviceKind;
use std::fmt::Write as _;

/// An unbounded [`FleetEvent`] channel: hand the sender to
/// [`crate::run_fleet_with_events`] (or [`crate::Scheduler::run`]) and
/// drain the receiver from a consumer thread. The stream ends when the
/// fleet run returns and drops its sender.
pub fn channel() -> (Sender<FleetEvent>, Receiver<FleetEvent>) {
    unbounded()
}

/// Index of a shard in the scheduler's spec list (also the order
/// [`crate::Scheduler::run`] reports results in).
pub type ShardId = usize;

/// What the scheduler's per-shard session cache did at a slice boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionAction {
    /// The shard's deterministic prefix (Stage 1 + supernet pre-training
    /// for multi-stage shards) was computed and cached. Exactly one of
    /// these per shard means preemption never replayed the prefix; more
    /// than one means the memory budget forced replays.
    Built,
    /// A resident session was reused — the slice skipped the prefix
    /// entirely and resumed straight at its checkpointed generation.
    Hit,
    /// A session spilled to the artifact store was reloaded (weights
    /// decoded, nothing retrained).
    Restored,
    /// Another shard was already building the same prefix, so this slice
    /// stepped aside: it re-queued (budget refunded) and its worker moved
    /// on to other ready shards while the build finished — the overlap
    /// that keeps single-flight dedup from serialising the fleet.
    Deferred,
    /// The session memory budget pushed this shard's session out of the
    /// cache; `spilled` says whether it went to the artifact store (a
    /// later slice restores it) or was dropped (a later slice replays —
    /// today's degraded path, bit-identical either way).
    Evicted {
        /// Whether the evicted session was persisted to the store.
        spilled: bool,
    },
}

/// One observable step of a fleet run.
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A shard ran its first time slice.
    ShardStarted {
        /// The shard.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// The generation a persisted checkpoint resumed it from, if any.
        resumed_from: Option<usize>,
        /// Whether its latency predictor came from the artifact store.
        warm_predictor: bool,
    },
    /// A generation boundary of a shard's main search loop (emitted at
    /// the scheduler's checkpoint stride, plus slice ends).
    GenerationDone {
        /// The shard.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// Completed generations.
        generation: usize,
        /// The configured generation budget.
        iterations: usize,
        /// Best objective score so far, if anything has been scored.
        best_score: Option<f64>,
        /// Simulated search time so far, hours.
        clock_hours: f64,
    },
    /// A shard's latency/accuracy Pareto front changed at a slice
    /// boundary.
    ParetoUpdated {
        /// The shard.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// The new front, fastest first.
        front: Vec<ParetoPoint>,
    },
    /// A shard's time slice expired; it re-queued behind the other ready
    /// shards and will resume from its checkpoint.
    ShardPreempted {
        /// The shard.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// Completed generations at preemption.
        generation: usize,
    },
    /// A shard ran to completion.
    ShardFinished {
        /// The shard.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// Found-model latency on the device, ms.
        latency_ms: f64,
        /// Found-model one-shot accuracy.
        accuracy: f64,
        /// Found-model objective score.
        score: f64,
        /// DGCNN reference latency, ms.
        reference_ms: f64,
        /// Simulated search time, hours.
        search_hours: f64,
        /// Evaluator cache hit rate (hits + imported over submissions), %.
        hit_pct: f64,
        /// Candidates served from an imported warm-start cache.
        imported: u64,
    },
    /// A shard died on an artifact-store error; the fleet run will report
    /// the error after draining.
    ShardFailed {
        /// The shard.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// The error, stringified.
        error: String,
    },
    /// Session-cache activity: built / hit / restored / deferred when a
    /// slice resumed, evicted when the memory budget pushed a parked
    /// shard's session out.
    SessionCache {
        /// The shard the session belongs to.
        shard: ShardId,
        /// Its target device.
        device: DeviceKind,
        /// What happened.
        action: SessionAction,
    },
}

impl FleetEvent {
    /// The shard the event belongs to.
    pub fn shard(&self) -> ShardId {
        match self {
            FleetEvent::ShardStarted { shard, .. }
            | FleetEvent::GenerationDone { shard, .. }
            | FleetEvent::ParetoUpdated { shard, .. }
            | FleetEvent::ShardPreempted { shard, .. }
            | FleetEvent::ShardFinished { shard, .. }
            | FleetEvent::ShardFailed { shard, .. }
            | FleetEvent::SessionCache { shard, .. } => *shard,
        }
    }

    /// Renumbers the event to `shard`. Hosts that schedule only a subset
    /// of a request's shards in a given round (the serve daemon's
    /// budgeted rounds skip already-finished shards) use this to map the
    /// round-local indices back to the request's own numbering before
    /// streaming.
    pub fn set_shard(&mut self, shard: ShardId) {
        match self {
            FleetEvent::ShardStarted { shard: s, .. }
            | FleetEvent::GenerationDone { shard: s, .. }
            | FleetEvent::ParetoUpdated { shard: s, .. }
            | FleetEvent::ShardPreempted { shard: s, .. }
            | FleetEvent::ShardFinished { shard: s, .. }
            | FleetEvent::ShardFailed { shard: s, .. }
            | FleetEvent::SessionCache { shard: s, .. } => *s = shard,
        }
    }
}

/// Per-shard row state the reporter accumulates.
#[derive(Debug, Clone)]
struct Row {
    device: DeviceKind,
    generation: usize,
    iterations: usize,
    best_score: Option<f64>,
    clock_hours: f64,
    front_size: usize,
    preemptions: u64,
    session_builds: u64,
    session_hits: u64,
    session_restores: u64,
    session_deferrals: u64,
    session_evictions: u64,
    resumed_from: Option<usize>,
    warm_predictor: bool,
    finished: Option<Finished>,
    failed: Option<String>,
}

#[derive(Debug, Clone)]
struct Finished {
    latency_ms: f64,
    accuracy: f64,
    score: f64,
    reference_ms: f64,
    search_hours: f64,
    hit_pct: f64,
    imported: u64,
}

/// Folds [`FleetEvent`]s into per-shard progress rows and renders
/// incremental snapshot tables (the paper's Table 1 shape, grown a status
/// column). Feed it from a channel:
///
/// ```ignore
/// let mut rep = StreamingReporter::new(fleet.devices.len());
/// for ev in rx.iter() {
///     rep.observe(&ev);
///     println!("{}", rep.snapshot());
/// }
/// ```
#[derive(Debug)]
pub struct StreamingReporter {
    rows: Vec<Option<Row>>,
    events_seen: u64,
}

impl StreamingReporter {
    /// A reporter expecting `shards` shards (rows render in shard order).
    pub fn new(shards: usize) -> Self {
        StreamingReporter {
            rows: vec![None; shards],
            events_seen: 0,
        }
    }

    /// Folds one event in.
    pub fn observe(&mut self, ev: &FleetEvent) {
        self.events_seen += 1;
        let shard = ev.shard();
        if shard >= self.rows.len() {
            self.rows.resize(shard + 1, None);
        }
        let device = match ev {
            FleetEvent::ShardStarted { device, .. }
            | FleetEvent::GenerationDone { device, .. }
            | FleetEvent::ParetoUpdated { device, .. }
            | FleetEvent::ShardPreempted { device, .. }
            | FleetEvent::ShardFinished { device, .. }
            | FleetEvent::ShardFailed { device, .. }
            | FleetEvent::SessionCache { device, .. } => *device,
        };
        let row = self.rows[shard].get_or_insert(Row {
            device,
            generation: 0,
            iterations: 0,
            best_score: None,
            clock_hours: 0.0,
            front_size: 0,
            preemptions: 0,
            session_builds: 0,
            session_hits: 0,
            session_restores: 0,
            session_deferrals: 0,
            session_evictions: 0,
            resumed_from: None,
            warm_predictor: false,
            finished: None,
            failed: None,
        });
        match ev {
            FleetEvent::ShardStarted {
                resumed_from,
                warm_predictor,
                ..
            } => {
                row.resumed_from = *resumed_from;
                row.warm_predictor = *warm_predictor;
            }
            FleetEvent::GenerationDone {
                generation,
                iterations,
                best_score,
                clock_hours,
                ..
            } => {
                row.generation = row.generation.max(*generation);
                row.iterations = *iterations;
                if best_score.is_some() {
                    row.best_score = *best_score;
                }
                row.clock_hours = *clock_hours;
            }
            FleetEvent::ParetoUpdated { front, .. } => row.front_size = front.len(),
            FleetEvent::ShardPreempted { generation, .. } => {
                row.preemptions += 1;
                row.generation = row.generation.max(*generation);
            }
            FleetEvent::ShardFinished {
                latency_ms,
                accuracy,
                score,
                reference_ms,
                search_hours,
                hit_pct,
                imported,
                ..
            } => {
                row.finished = Some(Finished {
                    latency_ms: *latency_ms,
                    accuracy: *accuracy,
                    score: *score,
                    reference_ms: *reference_ms,
                    search_hours: *search_hours,
                    hit_pct: *hit_pct,
                    imported: *imported,
                });
            }
            FleetEvent::ShardFailed { error, .. } => row.failed = Some(error.clone()),
            // Hits, restores and builds are three *disjoint* outcomes of
            // claiming a session at a slice boundary; deferrals are the
            // fourth (the slice stepped aside and will claim again).
            FleetEvent::SessionCache { action, .. } => match action {
                SessionAction::Built => row.session_builds += 1,
                SessionAction::Hit => row.session_hits += 1,
                SessionAction::Restored => row.session_restores += 1,
                SessionAction::Deferred => row.session_deferrals += 1,
                SessionAction::Evicted { .. } => row.session_evictions += 1,
            },
        }
    }

    /// Prefix computations (session builds) per shard so far — the
    /// "supernet pre-training ran N times" counter. With an adequate
    /// session memory budget this stays at 1 per shard no matter how
    /// finely the scheduler slices.
    pub fn session_builds(&self, shard: ShardId) -> u64 {
        self.rows
            .get(shard)
            .and_then(Option::as_ref)
            .map_or(0, |r| r.session_builds)
    }

    /// Slices of `shard` that resumed from a session restored off the
    /// artifact store (disjoint from hits and builds).
    pub fn session_restores(&self, shard: ShardId) -> u64 {
        self.rows
            .get(shard)
            .and_then(Option::as_ref)
            .map_or(0, |r| r.session_restores)
    }

    /// Slices of `shard` that stepped aside while another shard built the
    /// shared prefix (each re-queued and ran later).
    pub fn session_deferrals(&self, shard: ShardId) -> u64 {
        self.rows
            .get(shard)
            .and_then(Option::as_ref)
            .map_or(0, |r| r.session_deferrals)
    }

    /// Events folded so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Shards that have reported a terminal event (finished or failed).
    pub fn terminal_shards(&self) -> usize {
        self.rows
            .iter()
            .flatten()
            .filter(|r| r.finished.is_some() || r.failed.is_some())
            .count()
    }

    /// Whether every expected shard has reported a terminal event.
    pub fn is_complete(&self) -> bool {
        !self.rows.is_empty()
            && self.rows.iter().all(|r| {
                r.as_ref()
                    .is_some_and(|r| r.finished.is_some() || r.failed.is_some())
            })
    }

    /// Renders the current state as an incremental Table-1-style snapshot:
    /// one row per shard with search progress, best-so-far numbers and a
    /// status column.
    pub fn snapshot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<6} {:<14} {:>9} {:>10} {:>8} {:>7} {:>7} {:>6} {:>7}  Status",
            "Shard", "Device", "Gen", "Found ms", "Speedup", "Acc", "Score", "Hit %", "Front",
        );
        for (i, row) in self.rows.iter().enumerate() {
            let Some(r) = row else {
                let _ = writeln!(
                    s,
                    "{:<6} {:<14} {:>9} {:>10} {:>8} {:>7} {:>7} {:>6} {:>7}  queued",
                    i, "-", "-", "-", "-", "-", "-", "-", "-"
                );
                continue;
            };
            let gen = format!("{}/{}", r.generation, r.iterations.max(r.generation));
            if let Some(f) = &r.finished {
                let _ = writeln!(
                    s,
                    "{:<6} {:<14} {:>9} {:>10.2} {:>7.1}x {:>7.3} {:>7.3} {:>5.1}% {:>7}  done in {:.2} h{}",
                    i,
                    r.device.name(),
                    gen,
                    f.latency_ms,
                    f.reference_ms / f.latency_ms.max(1e-9),
                    f.accuracy,
                    f.score,
                    f.hit_pct,
                    r.front_size,
                    f.search_hours,
                    if f.imported > 0 {
                        format!(" ({} imported)", f.imported)
                    } else {
                        String::new()
                    }
                );
            } else if let Some(e) = &r.failed {
                let _ = writeln!(
                    s,
                    "{:<6} {:<14} {:>9} {:>10} {:>8} {:>7} {:>7} {:>6} {:>7}  FAILED: {e}",
                    i,
                    r.device.name(),
                    gen,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    r.front_size
                );
            } else {
                let best = r
                    .best_score
                    .map_or_else(|| "-".to_string(), |b| format!("{b:.3}"));
                let mut status = if r.preemptions > 0 {
                    format!("searching ({}x preempted)", r.preemptions)
                } else {
                    "searching".to_string()
                };
                // More than one build means the memory budget forced the
                // prefix (Stage 1 + pre-training) to replay.
                if r.session_builds > 1 {
                    let _ = write!(status, " [{}x prefix replay]", r.session_builds - 1);
                }
                let _ = writeln!(
                    s,
                    "{:<6} {:<14} {:>9} {:>10} {:>8} {:>7} {:>7} {:>6} {:>7}  {status}",
                    i,
                    r.device.name(),
                    gen,
                    "-",
                    "-",
                    "-",
                    best,
                    "-",
                    r.front_size
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reporter_folds_a_shard_lifecycle() {
        let mut rep = StreamingReporter::new(2);
        assert!(!rep.is_complete());
        rep.observe(&FleetEvent::ShardStarted {
            shard: 0,
            device: DeviceKind::Rtx3080,
            resumed_from: None,
            warm_predictor: false,
        });
        rep.observe(&FleetEvent::GenerationDone {
            shard: 0,
            device: DeviceKind::Rtx3080,
            generation: 2,
            iterations: 8,
            best_score: Some(0.5),
            clock_hours: 0.1,
        });
        rep.observe(&FleetEvent::ShardPreempted {
            shard: 0,
            device: DeviceKind::Rtx3080,
            generation: 2,
        });
        // Session-cache lifecycle: a deferral behind another shard's
        // build, one build, one hit, one restore off the store, then a
        // budget eviction forcing a second build — a prefix replay.
        for action in [
            SessionAction::Deferred,
            SessionAction::Built,
            SessionAction::Hit,
            SessionAction::Restored,
            SessionAction::Evicted { spilled: false },
            SessionAction::Built,
        ] {
            rep.observe(&FleetEvent::SessionCache {
                shard: 0,
                device: DeviceKind::Rtx3080,
                action,
            });
        }
        assert_eq!(rep.session_builds(0), 2);
        assert_eq!(rep.session_restores(0), 1, "restores counted apart");
        assert_eq!(rep.session_deferrals(0), 1);
        assert_eq!(rep.session_builds(1), 0, "untouched shard");
        let snap = rep.snapshot();
        assert!(snap.contains("2/8"), "snapshot: {snap}");
        assert!(snap.contains("preempted"), "snapshot: {snap}");
        assert!(snap.contains("1x prefix replay"), "snapshot: {snap}");
        assert!(snap.contains("queued"), "shard 1 not yet started: {snap}");

        rep.observe(&FleetEvent::ShardFinished {
            shard: 0,
            device: DeviceKind::Rtx3080,
            latency_ms: 2.0,
            accuracy: 0.8,
            score: 0.9,
            reference_ms: 6.0,
            search_hours: 1.5,
            hit_pct: 25.0,
            imported: 3,
        });
        rep.observe(&FleetEvent::ShardFailed {
            shard: 1,
            device: DeviceKind::JetsonTx2,
            error: "disk on fire".into(),
        });
        assert_eq!(rep.terminal_shards(), 2);
        assert!(rep.is_complete());
        let snap = rep.snapshot();
        assert!(snap.contains("3.0x"), "speedup rendered: {snap}");
        assert!(snap.contains("(3 imported)"), "imports rendered: {snap}");
        assert!(snap.contains("FAILED: disk on fire"), "snapshot: {snap}");
        assert_eq!(rep.events_seen(), 11);
    }
}
