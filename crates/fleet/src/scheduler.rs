//! The fleet scheduler: multiplex N search shards over one host's kernel
//! thread budget with generation-granular preemptive time slices.
//!
//! PR 3's fleet driver ran one thread per device shard — fine for one
//! shard per [`DeviceKind`], oversubscribed the moment a tenant queues
//! more shards (several seeds or tasks per device) than the host has
//! cores. The scheduler fixes the shape: shards wait in a shared ready
//! queue, a bounded pool of workers pulls the next ready shard
//! (work-stealing at shard granularity — an idle worker always takes the
//! oldest runnable shard), runs it for a *time slice* of
//! [`SchedulerConfig::preemption_stride`] generations, checkpoints it at
//! the boundary, and re-queues it behind its peers. Because
//! checkpoint/resume is bit-identical (the core contract every prior PR
//! locked in), preemption is transparent: any (shard count × thread
//! budget × stride) cell produces per-shard results bit-identical to a
//! serial [`Hgnas::run_with`] of the same options.
//!
//! Each worker hands its slice a proportional share of the total kernel
//! thread budget ([`SchedulerConfig::threads`]), so the two levels of
//! parallelism — shards across workers, matmuls inside a shard — never
//! oversubscribe the machine. `eval_threads` is bit-transparent, so the
//! split never changes results either.
//!
//! The deterministic prefix (dataset + Stage 1 + supernet pre-training)
//! is kept in a budgeted **session cache keyed by prefix fingerprint**
//! ([`prefix_fingerprint`]): every shard whose prefix-relevant inputs
//! match — same task, strategy, Stage-1 EA, epoch counts, seed, eval
//! budget, whatever its device, objective weights or Stage-2 seed —
//! shares one resident (or spilled) session, so a K-shard sweep over one
//! prefix builds it exactly once. Builds are **single-flight**: while one
//! worker builds a prefix, any other slice wanting it defers — it
//! re-queues (its budget unit refunded) and its worker takes other work,
//! which is what lets a prefix build overlap other shards' search slices
//! instead of serialising the fleet behind it.
//!
//! Progress streams out as [`FleetEvent`]s; [`crate::StreamingReporter`]
//! renders them incrementally, and the blocking [`crate::run_fleet`] API
//! is a thin wrapper over `Scheduler::run`.

use crate::artifacts::{
    persona_predictor_fingerprint, prefix_fingerprint, search_fingerprint, ArtifactKey,
    ArtifactStore, PrefixKey, StoreError,
};
use crate::driver::ParetoPoint;
use crate::events::{FleetEvent, SessionAction, ShardId};
use crate::oracle::{MeasurementOracle, OracleConfig, OracleStats};
use crossbeam::channel::Sender;
use hgnas_core::{
    pareto_front_nd, Checkpoint, Hgnas, LatencyMode, MeasureBackend, PretrainedPredictor,
    RunOptions, ScoredCandidate, SearchConfig, SearchOutcome, SessionState, Strategy, TaskConfig,
};
use hgnas_device::DeviceKind;
use hgnas_ops::OpType;
use hgnas_predictor::LatencyPredictor;
use hgnas_tensor::threads::with_kernel_threads;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One unit of schedulable work: a full HGNAS search of `task` under
/// `config` (the device and seed live inside the config, so a fleet can
/// queue many shards per device — different seeds, tasks, constraint
/// sets).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Display label for reports (scenario name; defaults to the config's
    /// persona/device label).
    pub scenario: String,
    /// The task to search.
    pub task: TaskConfig,
    /// The search configuration (device, seed, EA budgets, ...).
    pub config: SearchConfig,
    /// A prior run's score cache to warm-start the shard's Stage-2
    /// evaluator with (see `hgnas_core::RunOptions::imported_cache` for
    /// the bit-identity contract). Multi-stage shards only.
    pub imported_cache: Option<Vec<(Vec<OpType>, ScoredCandidate)>>,
}

impl ShardSpec {
    /// A shard with no warm-start import, labelled by its persona/device.
    pub fn new(task: TaskConfig, config: SearchConfig) -> Self {
        ShardSpec {
            scenario: config.device_label(),
            task,
            config,
            imported_cache: None,
        }
    }

    /// Overrides the shard's report label.
    pub fn with_scenario(mut self, label: impl Into<String>) -> Self {
        self.scenario = label.into();
        self
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Total kernel-thread budget multiplexed across shards. `0` (the
    /// default) runs one worker per shard, each with its spec's own
    /// `eval_threads` — the pre-scheduler fleet behaviour.
    pub threads: usize,
    /// Generations per time slice. `0` (the default) disables preemption:
    /// a worker runs its shard to completion before taking the next one.
    pub preemption_stride: usize,
    /// Persist (and announce) a checkpoint every N generations within a
    /// slice (0 is treated as 1). Slice boundaries always checkpoint.
    pub checkpoint_every: usize,
    /// Measurement-oracle tuning (shards in [`LatencyMode::Measured`]).
    pub oracle: OracleConfig,
    /// Total slice budget across all shards; when it runs out, unfinished
    /// shards stay parked (their checkpoints persisted to the store) and
    /// [`Scheduler::run`] returns them with `outcome: None`. `None` (the
    /// default) runs every shard to completion. This is the budgeted
    /// scheduling-round lever — and the mid-run-kill test hook.
    pub max_slices: Option<u64>,
    /// Approximate byte budget for the session cache — the LRU of
    /// prefix-keyed [`SessionState`]s (dataset + Stage-1 outcome +
    /// pre-trained supernet), each shared by every shard whose
    /// [`prefix_fingerprint`] matches, kept resident across time slices
    /// so a resumed shard never replays its deterministic prefix. `None` (the
    /// default) keeps every session for the run's lifetime; under a
    /// budget, least-recently-used sessions are evicted — spilled to the
    /// artifact store when one is attached, dropped otherwise (the next
    /// slice then restores or replays; results are bit-identical in every
    /// case). `Some(0)` disables residency entirely, which without a
    /// store is exactly the pre-session replay-per-slice behaviour.
    pub session_memory_budget: Option<u64>,
    /// External drain flag: when set mid-run, workers stop picking up new
    /// slices at the next boundary — *before* decrementing `max_slices` —
    /// and unfinished shards park exactly as if the slice budget had run
    /// out (checkpoints persisted, `outcome: None`). The `hgnas-serve`
    /// daemon uses this for graceful shutdown; a parked shard resumed
    /// through the same store later is bit-identical. `None` (the
    /// default) never stops early.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: 0,
            preemption_stride: 0,
            checkpoint_every: 1,
            oracle: OracleConfig::default(),
            max_slices: None,
            session_memory_budget: None,
            stop: None,
        }
    }
}

/// Aggregate counters of the scheduler's session cache. `hits`, `builds`
/// and `restores` are **disjoint**: every executed slice claims its
/// session through exactly one of the three, so they sum to the executed
/// slice count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionCacheStats {
    /// Slices that reused a resident session (no prefix work at all).
    pub hits: u64,
    /// Sessions computed from scratch (Stage 1 + supernet pre-training
    /// for multi-stage shards). One per distinct *prefix* means
    /// preemption never replayed the expensive work — shards differing
    /// only in non-prefix fields share a single build.
    pub builds: u64,
    /// Sessions reloaded from an artifact-store spill (weights decoded,
    /// nothing retrained).
    pub restores: u64,
    /// Sessions evicted under the memory budget.
    pub evictions: u64,
    /// Evictions that wrote a spill artifact (the remainder were dropped:
    /// one-stage sessions, or no store attached).
    pub spills: u64,
    /// Slices re-queued because their prefix was already being built by
    /// another worker (single-flight): no duplicate work, no budget
    /// consumed — the worker went on to other shards.
    pub deferrals: u64,
}

/// Coarse wall-clock breakdown of a scheduler run, aggregated across all
/// workers and shards (phases running on two workers at once both count,
/// so the sum can exceed the run's wall-clock).
///
/// This is the re-profiling instrument for the perf roadmap: after each
/// optimisation lands, the fleet bench records these numbers so the next
/// bottleneck is measured, not guessed.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PhaseTimings {
    /// Cold latency-predictor training (zero when every shard warm-started
    /// from the artifact store).
    pub predictor_train_ms: f64,
    /// Deterministic-prefix builds (dataset + Stage 1 + supernet
    /// pre-training) the session cache could not avoid.
    pub session_build_ms: f64,
    /// Sessions decoded from artifact-store spills.
    pub session_restore_ms: f64,
    /// The search itself (`Hgnas::run_with`), minus checkpoint-sink
    /// persistence performed inside it.
    pub search_ms: f64,
    /// Artifact-store writes: checkpoint sink, predictor snapshots, score
    /// caches.
    pub persist_ms: f64,
}

/// Lock-free nanosecond accumulators behind [`PhaseTimings`]; workers add
/// into these concurrently.
#[derive(Default)]
struct PhaseClock {
    predictor_train: AtomicU64,
    session_build: AtomicU64,
    session_restore: AtomicU64,
    search: AtomicU64,
    persist: AtomicU64,
}

impl PhaseClock {
    /// Runs `f`, adding its wall-clock to `slot`.
    fn time<R>(slot: &AtomicU64, f: impl FnOnce() -> R) -> R {
        let t = std::time::Instant::now();
        let out = f();
        slot.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    fn snapshot(&self) -> PhaseTimings {
        let ms = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 / 1e6;
        PhaseTimings {
            predictor_train_ms: ms(&self.predictor_train),
            session_build_ms: ms(&self.session_build),
            session_restore_ms: ms(&self.session_restore),
            search_ms: ms(&self.search),
            persist_ms: ms(&self.persist),
        }
    }
}

/// One resident session.
struct SessionEntry {
    /// The shard whose slice created the entry (used to attribute
    /// eviction events).
    owner: ShardId,
    session: Arc<SessionState>,
    bytes: u64,
    /// Whether a spill artifact for this session already exists — sessions
    /// are immutable, so one write is enough for any number of evictions.
    on_disk: bool,
}

/// The budgeted LRU of [`SessionState`]s the scheduler keeps across time
/// slices, keyed by **prefix fingerprint** so every shard sharing a
/// deterministic prefix (same task, strategy, Stage-1 EA, epoch counts,
/// seed, eval budget — whatever its device, Stage-2 seed or objective
/// weights) shares one resident session.
///
/// Builds are **single-flight**: [`SessionCache::claim`] hands exactly
/// one caller a [`BuildGuard`] per missing key; every other worker
/// wanting that key while the build is in flight gets
/// [`SessionClaim::Deferred`] and re-queues its slice instead of building
/// a duplicate — which is also what lets a prefix build overlap other
/// shards' search slices on the worker budget.
struct SessionCache {
    budget: Option<u64>,
    inner: Mutex<SessionCacheState>,
    /// Signalled whenever an in-flight build publishes or aborts.
    build_done: Condvar,
}

#[derive(Default)]
struct SessionCacheState {
    /// Resident sessions by prefix fingerprint — O(1) lookups however
    /// many shards the fleet multiplexes.
    entries: HashMap<u64, SessionEntry>,
    /// LRU order over `entries` keys: front is the least recently used.
    /// Kept separately so eviction order is exactly the old Vec cache's
    /// (insertion order, refreshed on hit).
    order: Vec<u64>,
    /// Total resident bytes (maintained incrementally).
    resident_bytes: u64,
    /// Prefix fingerprints some worker is currently building.
    in_flight: HashSet<u64>,
    stats: SessionCacheStats,
}

/// What [`SessionCache::claim`] resolved to.
enum SessionClaim<'a> {
    /// A resident session; the LRU position was refreshed and the hit
    /// counted.
    Ready(Arc<SessionState>),
    /// The key is absent and the caller is now its only builder: restore
    /// or build the session, then [`BuildGuard::fulfil`]. Dropping the
    /// guard un-fulfilled (store error, panic) releases the key so
    /// another worker can claim it.
    Build(BuildGuard<'a>),
    /// Another worker is building the key right now; the caller should
    /// re-queue the slice (budget-neutral) and take other work.
    Deferred,
}

/// Exclusive build permission for one prefix key (see
/// [`SessionClaim::Build`]).
struct BuildGuard<'a> {
    cache: &'a SessionCache,
    key: PrefixKey,
    fulfilled: bool,
}

impl BuildGuard<'_> {
    /// Publishes the built/restored session, releases the in-flight
    /// claim, wakes deferred waiters, and applies the byte budget
    /// (spilling evicted sessions to `store` when possible). Returns
    /// `(owner, spilled)` per eviction for event emission.
    fn fulfil(
        mut self,
        owner: ShardId,
        session: Arc<SessionState>,
        on_disk: bool,
        store: Option<&ArtifactStore>,
    ) -> Result<Vec<(ShardId, bool)>, StoreError> {
        self.fulfilled = true;
        let bytes = session.approx_bytes();
        let fp = self.key.fingerprint;
        // Evictions are decided under the lock but *spilled* outside it:
        // serializing supernet weights to disk under the only cache mutex
        // would stall every other worker's slice boundary. A racing worker
        // that misses the evicted key before its spill lands simply
        // rebuilds — bit-identical, like any other cache miss.
        let mut to_spill = Vec::new();
        {
            let mut st = self.cache.inner.lock().unwrap();
            st.in_flight.remove(&fp);
            if let std::collections::hash_map::Entry::Vacant(slot) = st.entries.entry(fp) {
                slot.insert(SessionEntry {
                    owner,
                    session,
                    bytes,
                    on_disk,
                });
                st.order.push(fp);
                st.resident_bytes += bytes;
            }
            if let Some(budget) = self.cache.budget {
                while st.resident_bytes > budget && !st.order.is_empty() {
                    let victim = st.order.remove(0);
                    let e = st.entries.remove(&victim).expect("order tracks entries");
                    st.resident_bytes -= e.bytes;
                    st.stats.evictions += 1;
                    to_spill.push((victim, e));
                }
            }
        }
        self.cache.build_done.notify_all();
        let mut evicted = Vec::new();
        let mut spills = 0;
        for (victim, mut e) in to_spill {
            if !e.on_disk {
                if let (Some(store), Some(snap)) = (store, e.session.export()) {
                    store.save_session(
                        &PrefixKey {
                            fingerprint: victim,
                        },
                        &snap,
                    )?;
                    e.on_disk = true;
                    spills += 1;
                }
            }
            evicted.push((e.owner, e.on_disk));
        }
        if spills > 0 {
            self.cache.inner.lock().unwrap().stats.spills += spills;
        }
        Ok(evicted)
    }
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.cache
                .inner
                .lock()
                .unwrap()
                .in_flight
                .remove(&self.key.fingerprint);
            self.cache.build_done.notify_all();
        }
    }
}

impl SessionCache {
    /// Grace window a claimant waits for an in-flight build before
    /// deferring its slice — long enough to absorb a build that is just
    /// publishing, short enough that the worker gets back to useful work.
    const IN_FLIGHT_GRACE: std::time::Duration = std::time::Duration::from_millis(2);

    fn new(budget: Option<u64>) -> Self {
        SessionCache {
            budget,
            inner: Mutex::default(),
            build_done: Condvar::new(),
        }
    }

    /// Resolves `key` to a resident session, a build permission, or a
    /// deferral (see [`SessionClaim`]).
    fn claim(&self, key: PrefixKey) -> SessionClaim<'_> {
        let fp = key.fingerprint;
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(entry) = st.entries.get(&fp) {
                let session = Arc::clone(&entry.session);
                // Refresh the LRU position (same order discipline as the
                // pre-map Vec cache: move-to-back on hit).
                let pos = st.order.iter().position(|&f| f == fp).expect("order");
                st.order.remove(pos);
                st.order.push(fp);
                st.stats.hits += 1;
                return SessionClaim::Ready(session);
            }
            if !st.in_flight.contains(&fp) {
                st.in_flight.insert(fp);
                return SessionClaim::Build(BuildGuard {
                    cache: self,
                    key,
                    fulfilled: false,
                });
            }
            // Someone else is building this prefix. Wait out one short
            // grace window in case it is about to publish; if it is still
            // in flight after that, defer the slice instead of blocking a
            // worker on another worker's build.
            let (guard, timeout) = self
                .build_done
                .wait_timeout(st, Self::IN_FLIGHT_GRACE)
                .unwrap();
            st = guard;
            if timeout.timed_out() && !st.entries.contains_key(&fp) && st.in_flight.contains(&fp) {
                st.stats.deferrals += 1;
                return SessionClaim::Deferred;
            }
        }
    }

    fn note_built(&self) {
        self.inner.lock().unwrap().stats.builds += 1;
    }

    fn note_restored(&self) {
        self.inner.lock().unwrap().stats.restores += 1;
    }

    fn stats(&self) -> SessionCacheStats {
        self.inner.lock().unwrap().stats
    }
}

/// What one shard produced.
#[derive(Debug)]
pub struct ShardResult {
    /// The shard's index in the spec list.
    pub shard: ShardId,
    /// Its scenario label (from the spec).
    pub scenario: String,
    /// Its target device.
    pub device: DeviceKind,
    /// The search outcome — bit-identical to a serial
    /// [`Hgnas::run_with`] of the same options. `None` only when the
    /// slice budget ran out first.
    pub outcome: Option<SearchOutcome>,
    /// Latency/accuracy Pareto front over every constraint-satisfying
    /// candidate the shard scored so far, fastest first.
    pub pareto: Vec<ParetoPoint>,
    /// Predictor-training epochs this run actually executed (0 on a warm
    /// start from the artifact store).
    pub predictor_epochs_run: usize,
    /// Whether the predictor came from the artifact store.
    pub warm_predictor: bool,
    /// The generation a persisted checkpoint resumed the shard from.
    pub resumed_from_generation: Option<usize>,
    /// Time slices the shard consumed this run (deferred slices are not
    /// counted — they did no work and their budget unit was refunded).
    pub slices: u64,
    /// How many times this shard's slices computed the deterministic
    /// prefix from scratch (Stage 1 + supernet pre-training for
    /// multi-stage shards). With an adequate session memory budget, at
    /// most 1 across **all shards sharing the prefix** — the tentpole
    /// invariant; every extra unit is a replay the budget forced.
    pub prefix_builds: u64,
    /// Slices that reused a *resident* session. Disjoint from
    /// `session_restores` and `prefix_builds`; the three sum to `slices`.
    pub session_hits: u64,
    /// Slices that reloaded a spilled session from the artifact store
    /// (weights decoded, nothing retrained). Counted separately from
    /// `session_hits` so hit-rates reflect true cache residency.
    pub session_restores: u64,
    /// Slices re-queued because another worker was already building this
    /// shard's prefix (single-flight). Not part of the `slices` sum.
    pub session_deferrals: u64,
}

/// Everything a scheduler run produced.
#[derive(Debug)]
pub struct SchedulerReport {
    /// Per-shard results, in spec order.
    pub shards: Vec<ShardResult>,
    /// Oracle counters (when any shard measured).
    pub oracle_stats: Option<OracleStats>,
    /// Session-cache counters for the whole run.
    pub session_stats: SessionCacheStats,
    /// Where the run's wall-clock went, summed across workers.
    pub phase_timings: PhaseTimings,
}

/// Mutable per-shard state carried between time slices.
#[derive(Default)]
struct ShardState {
    predictor: Option<PretrainedPredictor>,
    warm_predictor: bool,
    predictor_epochs_run: usize,
    /// In-memory checkpoint between slices (faster than a store
    /// round-trip and present even without a store).
    checkpoint: Option<Checkpoint>,
    /// Whether the store has been probed for a resume checkpoint.
    store_probed: bool,
    resumed_from_generation: Option<usize>,
    started: bool,
    slices: u64,
    prefix_builds: u64,
    session_hits: u64,
    session_restores: u64,
    session_deferrals: u64,
    /// `(latency bits, accuracy bits)` signature of the last announced
    /// Pareto front, for change detection.
    last_front: Vec<(u64, u64)>,
    finished: Option<ShardResult>,
}

/// What the ready queue carries.
enum Job {
    /// Run one slice of this shard.
    Slice(ShardId),
    /// Worker shutdown pill.
    Stop,
}

/// What one call to `run_slice` did.
enum SliceOutcome {
    /// The shard ran to completion.
    Finished,
    /// The slice expired; the shard re-queues behind its peers with its
    /// checkpoint retained.
    Preempted,
    /// Another worker was building this shard's prefix (single-flight):
    /// nothing ran, the shard re-queues, and the consumed budget unit is
    /// refunded.
    Deferred,
}

/// The fleet scheduler. See the module docs.
#[derive(Debug)]
pub struct Scheduler {
    specs: Vec<ShardSpec>,
    cfg: SchedulerConfig,
}

/// Builds the Pareto front from a checkpoint's score cache: every valid
/// scored candidate competes on (latency, accuracy), with energy and
/// peak-memory axes joining exactly when the shard's objective priced
/// them (then any candidate carries them). With only the two classic
/// axes, [`pareto_front_nd`] membership matches the 2-D [`pareto_front`]
/// exactly, so legacy fronts are bit-identical.
pub(crate) fn checkpoint_pareto(cp: &Checkpoint) -> Vec<ParetoPoint> {
    let entries: Vec<(&[OpType], &ScoredCandidate)> = match cp {
        Checkpoint::MultiStage(cp) => cp.cache.iter().map(|(g, c)| (g.as_slice(), c)).collect(),
        Checkpoint::OneStage(cp) => cp.cache.iter().map(|(g, c)| (g.2.as_slice(), c)).collect(),
    };
    let valid: Vec<_> = entries.into_iter().filter(|(_, c)| c.valid).collect();
    let has_energy = valid.iter().any(|(_, c)| c.energy_mj.is_some());
    let has_mem = valid.iter().any(|(_, c)| c.peak_mem_mb.is_some());
    let mut maximize = vec![false, true];
    let points: Vec<Vec<f64>> = valid
        .iter()
        .map(|(_, c)| {
            let mut p = vec![c.latency_ms, c.accuracy];
            if has_energy {
                p.push(c.energy_mj.unwrap_or(0.0));
            }
            if has_mem {
                p.push(c.peak_mem_mb.unwrap_or(0.0));
            }
            p
        })
        .collect();
    if has_energy {
        maximize.push(false);
    }
    if has_mem {
        maximize.push(false);
    }
    let mut front: Vec<ParetoPoint> = pareto_front_nd(&points, &maximize)
        .into_iter()
        .map(|i| ParetoPoint {
            latency_ms: valid[i].1.latency_ms,
            accuracy: valid[i].1.accuracy,
            energy_mj: valid[i].1.energy_mj,
            peak_mem_mb: valid[i].1.peak_mem_mb,
            genome: valid[i].0.to_vec(),
        })
        .collect();
    front.sort_by(|a, b| a.latency_ms.total_cmp(&b.latency_ms));
    front
}

fn emit(events: Option<&Sender<FleetEvent>>, ev: FleetEvent) {
    if let Some(tx) = events {
        // A consumer that hung up is not the scheduler's problem.
        let _ = tx.send(ev);
    }
}

impl Scheduler {
    /// A scheduler over `specs` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<ShardSpec>, cfg: SchedulerConfig) -> Self {
        assert!(!specs.is_empty(), "scheduler needs at least one shard");
        Scheduler { specs, cfg }
    }

    /// The shard specs, in the order results are reported.
    pub fn specs(&self) -> &[ShardSpec] {
        &self.specs
    }

    /// Runs every shard (within the slice budget, if one is set) and
    /// returns per-shard results in spec order. `store` enables
    /// predictor/checkpoint/score-cache persistence and store-based
    /// resume; `events` streams [`FleetEvent`]s to a consumer on another
    /// thread.
    ///
    /// # Errors
    ///
    /// The first [`StoreError`] any shard hit; remaining shards are
    /// stopped at their next slice boundary.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run(
        &self,
        store: Option<&ArtifactStore>,
        events: Option<Sender<FleetEvent>>,
    ) -> Result<SchedulerReport, StoreError> {
        let n = self.specs.len();
        let measured: Vec<hgnas_device::DeviceProfile> = {
            let mut seen: Vec<hgnas_device::DeviceProfile> = Vec::new();
            for s in &self.specs {
                if s.config.latency_mode == LatencyMode::Measured {
                    let p = s.config.device_profile();
                    if !seen.contains(&p) {
                        seen.push(p);
                    }
                }
            }
            seen
        };
        let oracle = (!measured.is_empty())
            .then(|| MeasurementOracle::start_profiles(&measured, &self.cfg.oracle));

        let workers = if self.cfg.threads == 0 {
            n
        } else {
            self.cfg.threads.min(n).max(1)
        };
        let sessions = SessionCache::new(self.cfg.session_memory_budget);
        let phases = PhaseClock::default();
        let states: Vec<Mutex<ShardState>> = (0..n).map(|_| Mutex::default()).collect();
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        for i in 0..n {
            let _ = tx.send(Job::Slice(i));
        }
        let remaining = AtomicUsize::new(n);
        let budget = self.cfg.max_slices.map(AtomicU64::new);
        let failure: Mutex<Option<StoreError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);

        crossbeam::scope(|s| {
            for w in 0..workers {
                let rx = rx.clone();
                let tx = tx.clone();
                let events = events.clone();
                let (states, remaining, budget, failure, abort, oracle, sessions, phases) = (
                    &states,
                    &remaining,
                    &budget,
                    &failure,
                    &abort,
                    oracle.as_ref(),
                    &sessions,
                    &phases,
                );
                // 0 tells the slice to use the spec's own eval_threads
                // (legacy one-worker-per-shard mode); otherwise split the
                // budget, spreading the remainder over the first workers.
                let kernel_budget = if self.cfg.threads == 0 {
                    0
                } else {
                    (self.cfg.threads / workers + usize::from(w < self.cfg.threads % workers))
                        .max(1)
                };
                s.spawn(move |_| {
                    let finish_one = || {
                        if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                            for _ in 0..workers {
                                let _ = tx.send(Job::Stop);
                            }
                        }
                    };
                    // Exit on a Stop pill or channel teardown alike.
                    while let Ok(Job::Slice(i)) = rx.recv() {
                        // The drain flag is checked *before* the budget
                        // decrement so a drained round leaves the
                        // remaining grant intact (nothing is charged for
                        // slices that never ran).
                        let stopping = abort.load(Ordering::SeqCst)
                            || self
                                .cfg
                                .stop
                                .as_ref()
                                .is_some_and(|s| s.load(Ordering::SeqCst));
                        let budget_left = !stopping
                            && budget.as_ref().is_none_or(|b| {
                                b.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                                    v.checked_sub(1)
                                })
                                .is_ok()
                            });
                        if stopping || !budget_left {
                            // Parked: leaves the rotation with its latest
                            // checkpoint persisted/retained.
                            finish_one();
                            continue;
                        }
                        let mut st = states[i].lock().unwrap();
                        match self.run_slice(
                            i,
                            &mut st,
                            kernel_budget,
                            store,
                            oracle,
                            sessions,
                            phases,
                            events.as_ref(),
                        ) {
                            Ok(SliceOutcome::Finished) => {
                                drop(st);
                                finish_one();
                            }
                            Ok(SliceOutcome::Preempted) => {
                                drop(st);
                                let _ = tx.send(Job::Slice(i));
                            }
                            Ok(SliceOutcome::Deferred) => {
                                drop(st);
                                // The slice did no work: hand its budget
                                // unit back before re-queueing, so a
                                // deferral can never starve a budgeted
                                // run of real slices.
                                if let Some(b) = budget.as_ref() {
                                    b.fetch_add(1, Ordering::SeqCst);
                                }
                                let _ = tx.send(Job::Slice(i));
                            }
                            Err(e) => {
                                emit(
                                    events.as_ref(),
                                    FleetEvent::ShardFailed {
                                        shard: i,
                                        device: self.specs[i].config.device,
                                        error: e.to_string(),
                                    },
                                );
                                failure.lock().unwrap().get_or_insert(e);
                                abort.store(true, Ordering::SeqCst);
                                drop(st);
                                finish_one();
                            }
                        }
                    }
                });
            }
        })
        .expect("scheduler worker panicked");

        let oracle_stats = oracle.map(MeasurementOracle::shutdown);
        if let Some(e) = failure.into_inner().unwrap() {
            return Err(e);
        }
        let shards = states
            .into_iter()
            .enumerate()
            .map(|(i, st)| {
                let st = st.into_inner().unwrap();
                st.finished.unwrap_or_else(|| ShardResult {
                    shard: i,
                    scenario: self.specs[i].scenario.clone(),
                    device: self.specs[i].config.device,
                    outcome: None,
                    pareto: st
                        .checkpoint
                        .as_ref()
                        .map(checkpoint_pareto)
                        .unwrap_or_default(),
                    predictor_epochs_run: st.predictor_epochs_run,
                    warm_predictor: st.warm_predictor,
                    resumed_from_generation: st.resumed_from_generation,
                    slices: st.slices,
                    prefix_builds: st.prefix_builds,
                    session_hits: st.session_hits,
                    session_restores: st.session_restores,
                    session_deferrals: st.session_deferrals,
                })
            })
            .collect();
        Ok(SchedulerReport {
            shards,
            oracle_stats,
            session_stats: sessions.stats(),
            phase_timings: phases.snapshot(),
        })
    }

    /// Runs one time slice of shard `i`. See [`SliceOutcome`] for the
    /// three ways it can return.
    #[allow(clippy::too_many_arguments)]
    fn run_slice(
        &self,
        i: ShardId,
        st: &mut ShardState,
        kernel_budget: usize,
        store: Option<&ArtifactStore>,
        oracle: Option<&MeasurementOracle>,
        sessions: &SessionCache,
        phases: &PhaseClock,
        events: Option<&Sender<FleetEvent>>,
    ) -> Result<SliceOutcome, StoreError> {
        let spec = &self.specs[i];
        let mut cfg = spec.config.clone();
        if kernel_budget > 0 {
            // Bit-transparent by the evaluator contract, so the scheduler
            // is free to re-split the budget as the worker pool shrinks.
            cfg.eval_threads = kernel_budget;
        }
        let device = cfg.device;

        // Predictor: once per shard, reused across every later slice
        // (artifact store first, training second — exactly the serial
        // path, so warm or cold the outcome is unchanged).
        if cfg.latency_mode == LatencyMode::Predictor && st.predictor.is_none() {
            let key = ArtifactKey {
                device,
                fingerprint: persona_predictor_fingerprint(
                    &spec.task.predictor_context(),
                    &cfg.predictor,
                    cfg.persona.as_ref(),
                ),
            };
            let mut pretrained = None;
            if let Some(store) = store {
                if let Some(snap) = store.load_predictor(&key)? {
                    let (p, stats) = LatencyPredictor::from_snapshot(&snap);
                    pretrained = Some(PretrainedPredictor {
                        predictor: Arc::new(p),
                        stats,
                    });
                    st.warm_predictor = true;
                }
            }
            if pretrained.is_none() {
                let (p, stats) = PhaseClock::time(&phases.predictor_train, || {
                    with_kernel_threads(cfg.eval_threads, || {
                        LatencyPredictor::train_with_profile(
                            &cfg.device_profile(),
                            &spec.task.predictor_context(),
                            &cfg.predictor,
                        )
                    })
                });
                st.predictor_epochs_run = cfg.predictor.epochs;
                if let Some(store) = store {
                    PhaseClock::time(&phases.persist, || {
                        store.save_predictor(&key, &p.snapshot(&stats))
                    })?;
                }
                pretrained = Some(PretrainedPredictor {
                    predictor: Arc::new(p),
                    stats,
                });
            }
            st.predictor = pretrained;
        }

        let search_key = ArtifactKey {
            device,
            fingerprint: search_fingerprint(&spec.task, &cfg),
        };

        // Resume source: the in-memory checkpoint from the previous slice,
        // else (first slice only) whatever the store persisted.
        let resume = match st.checkpoint.take() {
            Some(cp) => Some(cp),
            None if !st.store_probed => {
                st.store_probed = true;
                match store {
                    Some(store) => {
                        let cp = match cfg.strategy {
                            Strategy::MultiStage => store
                                .load_checkpoint(&search_key)?
                                .map(Checkpoint::MultiStage),
                            Strategy::OneStage => store
                                .load_one_stage_checkpoint(&search_key)?
                                .map(Checkpoint::OneStage),
                        };
                        st.resumed_from_generation = cp.as_ref().map(Checkpoint::generation);
                        cp
                    }
                    None => None,
                }
            }
            None => None,
        };

        if !st.started {
            st.started = true;
            emit(
                events,
                FleetEvent::ShardStarted {
                    shard: i,
                    device,
                    resumed_from: st.resumed_from_generation,
                    warm_predictor: st.warm_predictor,
                },
            );
        }

        // Session: the shard's deterministic prefix (dataset, Stage-1
        // winners, pre-trained supernet), resident across slices AND
        // shared across every shard with the same prefix fingerprint, so
        // a resumed slice skips straight to its checkpointed generation.
        // Cache → store spill → fresh build, in that order; every path is
        // bit-identical, later ones just pay more. Builds are
        // single-flight: a second shard wanting an in-flight prefix
        // defers its slice instead of duplicating the work.
        let prefix_key = PrefixKey {
            fingerprint: prefix_fingerprint(&spec.task, &cfg),
        };
        let hgnas = Hgnas::new(spec.task.clone(), cfg);
        let session = match sessions.claim(prefix_key) {
            SessionClaim::Ready(session) => {
                st.session_hits += 1;
                emit(
                    events,
                    FleetEvent::SessionCache {
                        shard: i,
                        device,
                        action: SessionAction::Hit,
                    },
                );
                session
            }
            SessionClaim::Deferred => {
                // Put the resume checkpoint back untouched — the deferred
                // slice re-runs from exactly this state later.
                st.checkpoint = resume;
                st.session_deferrals += 1;
                emit(
                    events,
                    FleetEvent::SessionCache {
                        shard: i,
                        device,
                        action: SessionAction::Deferred,
                    },
                );
                return Ok(SliceOutcome::Deferred);
            }
            SessionClaim::Build(guard) => {
                let mut restored = None;
                if let Some(store) = store {
                    if let Some(snap) = store.load_session(&prefix_key)? {
                        restored = Some(PhaseClock::time(&phases.session_restore, || {
                            Arc::new(SessionState::restore(
                                spec.task.clone(),
                                hgnas.config().clone(),
                                snap,
                            ))
                        }));
                    }
                }
                let on_disk = restored.is_some();
                let (session, action) = match restored {
                    Some(session) => {
                        st.session_restores += 1;
                        sessions.note_restored();
                        (session, SessionAction::Restored)
                    }
                    None => {
                        st.prefix_builds += 1;
                        sessions.note_built();
                        let built = PhaseClock::time(&phases.session_build, || {
                            Arc::new(hgnas.prepare_session())
                        });
                        (built, SessionAction::Built)
                    }
                };
                emit(
                    events,
                    FleetEvent::SessionCache {
                        shard: i,
                        device,
                        action,
                    },
                );
                let evicted = guard.fulfil(i, Arc::clone(&session), on_disk, store)?;
                for (owner, spilled) in evicted {
                    emit(
                        events,
                        FleetEvent::SessionCache {
                            shard: owner,
                            device: self.specs[owner].config.device,
                            action: SessionAction::Evicted { spilled },
                        },
                    );
                }
                session
            }
        };

        let start_gen = resume.as_ref().map(Checkpoint::generation).unwrap_or(0);
        let iterations = hgnas.config().ea_stage2.iterations;
        let abort_after = (self.cfg.preemption_stride > 0)
            .then(|| start_gen + self.cfg.preemption_stride)
            .filter(|&g| g < iterations);

        let mut sink_err: Option<StoreError> = None;
        // Local persist accumulator: `phases.persist` is shared with the
        // other workers, so a cross-run delta of it would charge *their*
        // store writes against *this* shard's search time.
        let mut sink_persist_ns: u64 = 0;
        let mut sink = |cp: &Checkpoint| {
            if sink_err.is_none() {
                if let Some(store) = store {
                    let t = std::time::Instant::now();
                    let r = match cp {
                        Checkpoint::MultiStage(cp) => store
                            .save_checkpoint(&search_key, &spec.task, cp)
                            .map(|_| ()),
                        Checkpoint::OneStage(cp) => store
                            .save_one_stage_checkpoint(&search_key, &spec.task, cp)
                            .map(|_| ()),
                    };
                    let ns = t.elapsed().as_nanos() as u64;
                    sink_persist_ns += ns;
                    phases.persist.fetch_add(ns, Ordering::Relaxed);
                    if let Err(e) = r {
                        sink_err = Some(e);
                    }
                }
            }
            emit(
                events,
                FleetEvent::GenerationDone {
                    shard: i,
                    device,
                    generation: cp.generation(),
                    iterations,
                    best_score: cp.best_score(),
                    clock_hours: cp.clock_ms() / 3.6e6,
                },
            );
        };
        let want_sink = store.is_some() || events.is_some();
        // The import is only needed on the shard's first slice: from then
        // on the un-promoted remainder rides in the resume checkpoint's
        // warm cache, so re-cloning the donor every slice would be pure
        // overhead (re-importing is idempotent but not free).
        let imported = match (&spec.imported_cache, hgnas.config().strategy, st.slices) {
            (Some(c), Strategy::MultiStage, 0) => Some(c.clone()),
            _ => None,
        };
        // Search time is run_with's wall-clock minus whatever the sink
        // spent persisting checkpoints inside it.
        let search_t = std::time::Instant::now();
        let out = hgnas.run_with(RunOptions {
            backend: oracle.map(|o| {
                Arc::new(o.client_for(&hgnas.config().device_profile())) as Arc<dyn MeasureBackend>
            }),
            predictor: st.predictor.clone(),
            resume,
            checkpoint_sink: want_sink.then_some(&mut sink as &mut dyn FnMut(&Checkpoint)),
            checkpoint_every: self.cfg.checkpoint_every,
            abort_after_generation: abort_after,
            imported_cache: imported,
            session: Some(&session),
        });
        let search_ns = (search_t.elapsed().as_nanos() as u64).saturating_sub(sink_persist_ns);
        phases.search.fetch_add(search_ns, Ordering::Relaxed);
        if let Some(e) = sink_err {
            return Err(e);
        }
        st.slices += 1;

        // Announce front changes at every slice boundary.
        if let Some(cp) = &out.checkpoint {
            if events.is_some() {
                let front = checkpoint_pareto(cp);
                let sig: Vec<(u64, u64)> = front
                    .iter()
                    .map(|p| (p.latency_ms.to_bits(), p.accuracy.to_bits()))
                    .collect();
                if sig != st.last_front {
                    st.last_front = sig;
                    emit(
                        events,
                        FleetEvent::ParetoUpdated {
                            shard: i,
                            device,
                            front,
                        },
                    );
                }
            }
        }

        match out.outcome {
            None => {
                emit(
                    events,
                    FleetEvent::ShardPreempted {
                        shard: i,
                        device,
                        generation: out.checkpoint.as_ref().map_or(0, Checkpoint::generation),
                    },
                );
                st.checkpoint = out.checkpoint;
                Ok(SliceOutcome::Preempted)
            }
            Some(outcome) => {
                // Final persistence: the sink already wrote the last
                // checkpoint; multi-stage runs also publish their score
                // cache for future warm starts.
                if let (Some(store), Some(Checkpoint::MultiStage(cp))) =
                    (store, out.checkpoint.as_ref())
                {
                    PhaseClock::time(&phases.persist, || {
                        store.save_score_cache(&search_key, &spec.task, cp.functions, &cp.cache)
                    })?;
                }
                let pareto = out
                    .checkpoint
                    .as_ref()
                    .map(checkpoint_pareto)
                    .unwrap_or_default();
                let stats = outcome.eval_stats;
                emit(
                    events,
                    FleetEvent::ShardFinished {
                        shard: i,
                        device,
                        latency_ms: outcome.best.latency_ms,
                        accuracy: outcome.best.supernet_accuracy,
                        score: outcome.best.score,
                        reference_ms: outcome.reference_ms,
                        search_hours: outcome.search_hours,
                        hit_pct: stats.map_or(0.0, |e| {
                            100.0 * (e.hits + e.imported) as f64 / e.submitted.max(1) as f64
                        }),
                        imported: stats.map_or(0, |e| e.imported),
                    },
                );
                st.finished = Some(ShardResult {
                    shard: i,
                    scenario: spec.scenario.clone(),
                    device,
                    outcome: Some(outcome),
                    pareto,
                    predictor_epochs_run: st.predictor_epochs_run,
                    warm_predictor: st.warm_predictor,
                    resumed_from_generation: st.resumed_from_generation,
                    slices: st.slices,
                    prefix_builds: st.prefix_builds,
                    session_hits: st.session_hits,
                    session_restores: st.session_restores,
                    session_deferrals: st.session_deferrals,
                });
                Ok(SliceOutcome::Finished)
            }
        }
    }
}
