//! Typed messages of the `hgnas-serve` wire protocol, serialized through
//! the artifact codec's frame layer ([`crate::codec::Encoder::frame`] /
//! [`crate::codec::Decoder::open_frame`]).
//!
//! The protocol is deliberately small: a client says [`ClientFrame::Hello`]
//! (tenant + priority), submits searches, and can re-[`ClientFrame::Attach`]
//! to a running request after a disconnect. The server streams every
//! [`FleetEvent`] back as a `(request, seq)`-tagged [`ServerFrame::Event`]
//! and closes each request with a [`ServerFrame::Report`] carrying the same
//! outcomes `run_fleet` would have produced — bit-identical, which is what
//! the daemon equivalence tests pin.
//!
//! Everything rides the no-serde codec: integers little-endian, floats as
//! raw IEEE-754 bits, strings as length-prefixed UTF-8, the whole frame
//! CRC-sealed. A [`SearchOutcome`]'s architecture is not serialized — like
//! on-disk checkpoints, the genome plus function sets rebuild it at decode
//! time, so the wire stays minimal and canonical.

use crate::artifacts::{
    put_device, put_ea_config, put_eval_stats, put_function_set, put_genome, put_opt_f64,
    put_train_stats, take_device, take_ea_config, take_eval_stats, take_function_set, take_genome,
    take_opt_f64, take_train_stats, PruneReport,
};
use crate::codec::{CodecError, Decoder, Encoder, FrameKind};
use crate::driver::{ParetoPoint, ScenarioSpec};
use crate::events::{FleetEvent, SessionAction};
use hgnas_core::{LatencyMode, SearchConfig, SearchOutcome, SearchedModel, Strategy, TaskConfig};
use hgnas_device::{ClassRates, DeviceKind, DevicePersona, DeviceProfile};
use hgnas_ops::Architecture;
use hgnas_pointcloud::{DatasetConfig, TaskKind};
use hgnas_predictor::PredictorConfig;

/// A client→server message.
///
/// # Examples
///
/// ```
/// use hgnas_fleet::wire::{decode_client, encode_client, ClientFrame};
///
/// let hello = ClientFrame::Hello {
///     tenant: "alice".into(),
///     priority: 3,
/// };
/// let bytes = encode_client(&hello);
/// match decode_client(&bytes).unwrap() {
///     ClientFrame::Hello { tenant, priority } => {
///         assert_eq!(tenant, "alice");
///         assert_eq!(priority, 3);
///     }
///     other => panic!("unexpected frame {other:?}"),
/// }
/// ```
// Submit carries whole task/search configs; frames are transient
// one-shot values, so the size skew is harmless and not worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ClientFrame {
    /// Introduce this connection: tenant name plus scheduling priority
    /// (clamped to ≥ 1 server-side; higher is more slice share).
    Hello {
        /// Tenant name (an accounting label, not a secret).
        tenant: String,
        /// Fair-share weight: a priority-3 tenant receives 3× the slices
        /// of a priority-1 tenant under contention.
        priority: u8,
    },
    /// Submit one search: a task, a search config, and either target
    /// devices (one scheduler shard per device, mirroring `run_fleet`'s
    /// legacy shape) or explicit {task × objective × persona} scenarios
    /// (one shard each; scenarios win when both are given).
    Submit {
        /// Dataset + supernet geometry (the base task on the scenario
        /// path — each scenario carries its own).
        task: TaskConfig,
        /// Search settings; `device` is overridden per shard.
        config: SearchConfig,
        /// Target devices, one shard each (legacy path).
        devices: Vec<DeviceKind>,
        /// Explicit scenarios, one shard each; overrides `devices` when
        /// non-empty.
        scenarios: Vec<ScenarioSpec>,
    },
    /// Re-attach to a request submitted earlier (same tenant), replaying
    /// buffered events from `from_seq` — the disconnect/resume path.
    Attach {
        /// The id from [`ServerFrame::Accepted`].
        request_id: u64,
        /// Must match the submitting tenant.
        tenant: String,
        /// First sequence number to replay (0 replays everything).
        from_seq: u64,
    },
    /// Polite goodbye; the server closes the connection.
    Bye,
}

/// A server→client message.
#[derive(Debug, Clone)]
pub enum ServerFrame {
    /// The Hello was accepted; the server speaks `protocol`.
    HelloAck {
        /// The server's [`crate::codec::PROTOCOL_VERSION`].
        protocol: u8,
    },
    /// A Submit was admitted.
    Accepted {
        /// Id for attaching and for matching events/reports.
        request_id: u64,
        /// Shard count (= submitted device count).
        shards: usize,
    },
    /// A frame was refused. `request_id` 0 means the refusal is
    /// connection-level (bad hello, undecodable frame), otherwise it names
    /// the request the refusal belongs to.
    Rejected {
        /// The refused request, or 0.
        request_id: u64,
        /// Human-readable cause.
        reason: String,
    },
    /// One streamed scheduler event. `seq` increases by exactly 1 per
    /// event within a request, so a resumed client can detect gaps.
    Event {
        /// The request the event belongs to.
        request_id: u64,
        /// Per-request sequence number, from 0.
        seq: u64,
        /// The scheduler event.
        event: FleetEvent,
    },
    /// The request finished; carries outcomes for every shard.
    Report {
        /// The finished request.
        request_id: u64,
        /// Outcomes, fronts, and accounting.
        report: WireReport,
    },
    /// The idle-loop garbage collector ran over the artifact store.
    Pruned {
        /// What was deleted and what remains.
        report: PruneReport,
    },
    /// The daemon is shutting down; listed requests were parked with
    /// checkpoints persisted and can be resubmitted to a future daemon
    /// over the same store to resume bit-identically.
    Drain {
        /// Requests parked mid-search.
        parked: Vec<u64>,
    },
}

/// One shard's slice of a [`WireReport`] — the wire twin of
/// `DeviceReport`, plus the admission accounting the daemon adds.
#[derive(Debug, Clone)]
pub struct WireShardReport {
    /// The shard's scenario label (device name on the legacy path).
    pub scenario: String,
    /// Neighbour fanout of this shard's task (scenario shards may differ
    /// from the request-level [`WireReport::k`]).
    pub k: usize,
    /// Model output width of this shard's task (segmentation shards emit
    /// per-point part logits, not the dataset's class count).
    pub out_classes: usize,
    /// The shard's target device.
    pub device: DeviceKind,
    /// The finished search outcome (bit-identical to `run_fleet`).
    pub outcome: SearchOutcome,
    /// The shard's final latency/accuracy Pareto front, fastest first.
    pub pareto: Vec<ParetoPoint>,
    /// Whether the final round warm-started the latency predictor from
    /// the artifact store.
    pub warm_predictor: bool,
    /// The checkpoint generation the final round resumed from, if any.
    pub resumed_from_generation: Option<usize>,
    /// Scheduler slices this shard consumed across every round.
    pub slices: u64,
    /// Deterministic-prefix builds across every round.
    pub prefix_builds: u64,
}

/// The final answer to one daemon request.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// Neighbour fanout of the submitted task (rebuilds architectures at
    /// decode time).
    pub k: usize,
    /// Class count of the submitted task (ditto).
    pub classes: usize,
    /// One entry per submitted device, in submission order.
    pub shards: Vec<WireShardReport>,
    /// Admission rounds the request took (1 when uncontended).
    pub rounds: u64,
    /// Total slices charged to the owning tenant for this request.
    pub slices: u64,
}

// ---- value encoders/decoders -------------------------------------------

fn put_dataset(e: &mut Encoder, c: &DatasetConfig) {
    e.put_usize(c.classes);
    e.put_usize(c.points);
    e.put_usize(c.train_per_class);
    e.put_usize(c.test_per_class);
    e.put_f32(c.noise);
    e.put_u64(c.seed);
}

fn take_dataset(d: &mut Decoder) -> Result<DatasetConfig, CodecError> {
    Ok(DatasetConfig {
        classes: d.take_usize()?,
        points: d.take_usize()?,
        train_per_class: d.take_usize()?,
        test_per_class: d.take_usize()?,
        noise: d.take_f32()?,
        seed: d.take_u64()?,
    })
}

fn put_task(e: &mut Encoder, t: &TaskConfig) {
    e.put_u8(t.task_kind.code());
    put_dataset(e, &t.dataset);
    e.put_usize(t.positions);
    e.put_usize(t.k);
    e.put_usize(t.supernet_hidden);
    e.put_usize_slice(&t.head_hidden);
    e.put_u64(t.seed);
}

fn take_task(d: &mut Decoder) -> Result<TaskConfig, CodecError> {
    Ok(TaskConfig {
        task_kind: TaskKind::from_code(d.take_u8()?)
            .ok_or(CodecError::Invalid("task kind code"))?,
        dataset: take_dataset(d)?,
        positions: d.take_usize()?,
        k: d.take_usize()?,
        supernet_hidden: d.take_usize()?,
        head_hidden: d.take_usize_vec()?,
        seed: d.take_u64()?,
    })
}

fn put_predictor_config(e: &mut Encoder, c: &PredictorConfig) {
    e.put_usize(c.train_samples);
    e.put_usize(c.val_samples);
    e.put_usize(c.epochs);
    e.put_f32(c.lr);
    e.put_usize_slice(&c.gcn_dims);
    e.put_usize_slice(&c.mlp_hidden);
    e.put_u64(c.seed);
    e.put_bool(c.global_node);
    e.put_usize(c.batch);
}

fn take_predictor_config(d: &mut Decoder) -> Result<PredictorConfig, CodecError> {
    Ok(PredictorConfig {
        train_samples: d.take_usize()?,
        val_samples: d.take_usize()?,
        epochs: d.take_usize()?,
        lr: d.take_f32()?,
        gcn_dims: d.take_usize_vec()?,
        mlp_hidden: d.take_usize_vec()?,
        seed: d.take_u64()?,
        global_node: d.take_bool()?,
        batch: d.take_usize()?,
    })
}

fn put_opt_usize(e: &mut Encoder, v: Option<usize>) {
    e.put_bool(v.is_some());
    if let Some(v) = v {
        e.put_usize(v);
    }
}

fn take_opt_usize(d: &mut Decoder) -> Result<Option<usize>, CodecError> {
    Ok(if d.take_bool()? {
        Some(d.take_usize()?)
    } else {
        None
    })
}

fn put_profile(e: &mut Encoder, p: &DeviceProfile) {
    put_device(e, p.kind);
    for r in &p.rates {
        e.put_f64(r.gflops);
        e.put_f64(r.gbps);
    }
    e.put_f64(p.overhead_us);
    e.put_f64(p.base_mem_mb);
    e.put_f64(p.mem_factor);
    e.put_f64(p.avail_mem_mb);
    e.put_f64(p.noise_sigma);
    e.put_f64(p.measurement_roundtrip_ms);
    e.put_f64(p.power_w);
}

fn take_profile(d: &mut Decoder) -> Result<DeviceProfile, CodecError> {
    let kind = take_device(d)?;
    let mut rates = [ClassRates {
        gflops: 0.0,
        gbps: 0.0,
    }; 4];
    for r in &mut rates {
        r.gflops = d.take_f64()?;
        r.gbps = d.take_f64()?;
    }
    Ok(DeviceProfile {
        kind,
        rates,
        overhead_us: d.take_f64()?,
        base_mem_mb: d.take_f64()?,
        mem_factor: d.take_f64()?,
        avail_mem_mb: d.take_f64()?,
        noise_sigma: d.take_f64()?,
        measurement_roundtrip_ms: d.take_f64()?,
        power_w: d.take_f64()?,
    })
}

fn put_persona(e: &mut Encoder, p: &DevicePersona) {
    e.put_str(&p.name);
    put_profile(e, &p.profile);
}

fn take_persona(d: &mut Decoder) -> Result<DevicePersona, CodecError> {
    Ok(DevicePersona {
        name: d.take_string()?,
        profile: take_profile(d)?,
    })
}

fn put_search_config(e: &mut Encoder, c: &SearchConfig) {
    put_device(e, c.device);
    e.put_bool(c.persona.is_some());
    if let Some(p) = &c.persona {
        put_persona(e, p);
    }
    e.put_f64(c.alpha);
    e.put_f64(c.beta);
    e.put_f64(c.gamma);
    e.put_f64(c.delta);
    put_opt_f64(e, c.constraint_ms);
    put_opt_f64(e, c.max_size_mb);
    put_opt_f64(e, c.max_energy_mj);
    put_opt_f64(e, c.max_peak_mem_mb);
    put_ea_config(e, &c.ea_stage1);
    put_ea_config(e, &c.ea_stage2);
    e.put_usize(c.epochs_stage1);
    e.put_usize(c.epochs_stage2);
    e.put_u8(match c.latency_mode {
        LatencyMode::Predictor => 0,
        LatencyMode::Measured => 1,
    });
    e.put_u8(match c.strategy {
        Strategy::MultiStage => 0,
        Strategy::OneStage => 1,
    });
    put_predictor_config(e, &c.predictor);
    e.put_usize(c.eval_clouds);
    e.put_usize(c.eval_threads);
    e.put_u64(c.seed);
}

fn take_search_config(d: &mut Decoder) -> Result<SearchConfig, CodecError> {
    Ok(SearchConfig {
        device: take_device(d)?,
        persona: if d.take_bool()? {
            Some(take_persona(d)?)
        } else {
            None
        },
        alpha: d.take_f64()?,
        beta: d.take_f64()?,
        gamma: d.take_f64()?,
        delta: d.take_f64()?,
        constraint_ms: take_opt_f64(d)?,
        max_size_mb: take_opt_f64(d)?,
        max_energy_mj: take_opt_f64(d)?,
        max_peak_mem_mb: take_opt_f64(d)?,
        ea_stage1: take_ea_config(d)?,
        ea_stage2: take_ea_config(d)?,
        epochs_stage1: d.take_usize()?,
        epochs_stage2: d.take_usize()?,
        latency_mode: match d.take_u8()? {
            0 => LatencyMode::Predictor,
            1 => LatencyMode::Measured,
            _ => return Err(CodecError::Invalid("latency mode code")),
        },
        strategy: match d.take_u8()? {
            0 => Strategy::MultiStage,
            1 => Strategy::OneStage,
            _ => return Err(CodecError::Invalid("strategy code")),
        },
        predictor: take_predictor_config(d)?,
        eval_clouds: d.take_usize()?,
        eval_threads: d.take_usize()?,
        seed: d.take_u64()?,
    })
}

fn put_pareto_point(e: &mut Encoder, p: &ParetoPoint) {
    e.put_f64(p.latency_ms);
    e.put_f64(p.accuracy);
    put_opt_f64(e, p.energy_mj);
    put_opt_f64(e, p.peak_mem_mb);
    put_genome(e, &p.genome);
}

fn take_pareto_point(d: &mut Decoder) -> Result<ParetoPoint, CodecError> {
    Ok(ParetoPoint {
        latency_ms: d.take_f64()?,
        accuracy: d.take_f64()?,
        energy_mj: take_opt_f64(d)?,
        peak_mem_mb: take_opt_f64(d)?,
        genome: take_genome(d)?,
    })
}

fn put_session_action(e: &mut Encoder, a: SessionAction) {
    match a {
        SessionAction::Built => e.put_u8(0),
        SessionAction::Hit => e.put_u8(1),
        SessionAction::Restored => e.put_u8(2),
        SessionAction::Deferred => e.put_u8(3),
        SessionAction::Evicted { spilled } => {
            e.put_u8(4);
            e.put_bool(spilled);
        }
    }
}

fn take_session_action(d: &mut Decoder) -> Result<SessionAction, CodecError> {
    Ok(match d.take_u8()? {
        0 => SessionAction::Built,
        1 => SessionAction::Hit,
        2 => SessionAction::Restored,
        3 => SessionAction::Deferred,
        4 => SessionAction::Evicted {
            spilled: d.take_bool()?,
        },
        _ => return Err(CodecError::Invalid("session action code")),
    })
}

fn put_event(e: &mut Encoder, ev: &FleetEvent) {
    match ev {
        FleetEvent::ShardStarted {
            shard,
            device,
            resumed_from,
            warm_predictor,
        } => {
            e.put_u8(0);
            e.put_usize(*shard);
            put_device(e, *device);
            put_opt_usize(e, *resumed_from);
            e.put_bool(*warm_predictor);
        }
        FleetEvent::GenerationDone {
            shard,
            device,
            generation,
            iterations,
            best_score,
            clock_hours,
        } => {
            e.put_u8(1);
            e.put_usize(*shard);
            put_device(e, *device);
            e.put_usize(*generation);
            e.put_usize(*iterations);
            put_opt_f64(e, *best_score);
            e.put_f64(*clock_hours);
        }
        FleetEvent::ParetoUpdated {
            shard,
            device,
            front,
        } => {
            e.put_u8(2);
            e.put_usize(*shard);
            put_device(e, *device);
            e.put_usize(front.len());
            for p in front {
                put_pareto_point(e, p);
            }
        }
        FleetEvent::ShardPreempted {
            shard,
            device,
            generation,
        } => {
            e.put_u8(3);
            e.put_usize(*shard);
            put_device(e, *device);
            e.put_usize(*generation);
        }
        FleetEvent::ShardFinished {
            shard,
            device,
            latency_ms,
            accuracy,
            score,
            reference_ms,
            search_hours,
            hit_pct,
            imported,
        } => {
            e.put_u8(4);
            e.put_usize(*shard);
            put_device(e, *device);
            e.put_f64(*latency_ms);
            e.put_f64(*accuracy);
            e.put_f64(*score);
            e.put_f64(*reference_ms);
            e.put_f64(*search_hours);
            e.put_f64(*hit_pct);
            e.put_u64(*imported);
        }
        FleetEvent::ShardFailed {
            shard,
            device,
            error,
        } => {
            e.put_u8(5);
            e.put_usize(*shard);
            put_device(e, *device);
            e.put_str(error);
        }
        FleetEvent::SessionCache {
            shard,
            device,
            action,
        } => {
            e.put_u8(6);
            e.put_usize(*shard);
            put_device(e, *device);
            put_session_action(e, *action);
        }
    }
}

fn take_event(d: &mut Decoder) -> Result<FleetEvent, CodecError> {
    let code = d.take_u8()?;
    let shard = d.take_usize()?;
    let device = take_device(d)?;
    Ok(match code {
        0 => FleetEvent::ShardStarted {
            shard,
            device,
            resumed_from: take_opt_usize(d)?,
            warm_predictor: d.take_bool()?,
        },
        1 => FleetEvent::GenerationDone {
            shard,
            device,
            generation: d.take_usize()?,
            iterations: d.take_usize()?,
            best_score: take_opt_f64(d)?,
            clock_hours: d.take_f64()?,
        },
        2 => FleetEvent::ParetoUpdated {
            shard,
            device,
            front: {
                let n = d.take_usize()?;
                (0..n)
                    .map(|_| take_pareto_point(d))
                    .collect::<Result<_, _>>()?
            },
        },
        3 => FleetEvent::ShardPreempted {
            shard,
            device,
            generation: d.take_usize()?,
        },
        4 => FleetEvent::ShardFinished {
            shard,
            device,
            latency_ms: d.take_f64()?,
            accuracy: d.take_f64()?,
            score: d.take_f64()?,
            reference_ms: d.take_f64()?,
            search_hours: d.take_f64()?,
            hit_pct: d.take_f64()?,
            imported: d.take_u64()?,
        },
        5 => FleetEvent::ShardFailed {
            shard,
            device,
            error: d.take_string()?,
        },
        6 => FleetEvent::SessionCache {
            shard,
            device,
            action: take_session_action(d)?,
        },
        _ => return Err(CodecError::Invalid("event code")),
    })
}

fn put_outcome(e: &mut Encoder, o: &SearchOutcome) {
    // Architecture is rebuilt from (genome, functions, k, classes) at
    // decode time, exactly like on-disk checkpoints.
    put_function_set(e, &o.best.functions.0);
    put_function_set(e, &o.best.functions.1);
    put_genome(e, &o.best.genome);
    e.put_f64(o.best.score);
    e.put_f64(o.best.supernet_accuracy);
    e.put_f64(o.best.latency_ms);
    e.put_usize(o.history.len());
    for &(t, s) in &o.history {
        e.put_f64(t);
        e.put_f64(s);
    }
    e.put_f64(o.search_hours);
    e.put_bool(o.predictor_stats.is_some());
    if let Some(s) = &o.predictor_stats {
        put_train_stats(e, s);
    }
    e.put_bool(o.eval_stats.is_some());
    if let Some(s) = &o.eval_stats {
        put_eval_stats(e, s);
    }
    e.put_bool(o.stage1_stats.is_some());
    if let Some(s) = &o.stage1_stats {
        put_eval_stats(e, s);
    }
    e.put_f64(o.reference_ms);
    e.put_f64(o.constraint_ms);
}

fn take_outcome(d: &mut Decoder, k: usize, classes: usize) -> Result<SearchOutcome, CodecError> {
    let upper = take_function_set(d)?;
    let lower = take_function_set(d)?;
    let genome = take_genome(d)?;
    if genome.is_empty() {
        return Err(CodecError::Invalid("empty outcome genome"));
    }
    let architecture = Architecture::from_genome(&genome, upper, lower, k, classes);
    let best = SearchedModel {
        architecture,
        genome,
        functions: (upper, lower),
        score: d.take_f64()?,
        supernet_accuracy: d.take_f64()?,
        latency_ms: d.take_f64()?,
    };
    let h = d.take_usize()?;
    let history = (0..h)
        .map(|_| Ok((d.take_f64()?, d.take_f64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(SearchOutcome {
        best,
        history,
        search_hours: d.take_f64()?,
        predictor_stats: if d.take_bool()? {
            Some(take_train_stats(d)?)
        } else {
            None
        },
        eval_stats: if d.take_bool()? {
            Some(take_eval_stats(d)?)
        } else {
            None
        },
        stage1_stats: if d.take_bool()? {
            Some(take_eval_stats(d)?)
        } else {
            None
        },
        reference_ms: d.take_f64()?,
        constraint_ms: d.take_f64()?,
    })
}

fn put_prune_report(e: &mut Encoder, r: &PruneReport) {
    e.put_usize(r.removed_files);
    e.put_u64(r.removed_bytes);
    e.put_u64(r.retained_bytes);
}

fn take_prune_report(d: &mut Decoder) -> Result<PruneReport, CodecError> {
    Ok(PruneReport {
        removed_files: d.take_usize()?,
        removed_bytes: d.take_u64()?,
        retained_bytes: d.take_u64()?,
    })
}

// ---- frame entry points ------------------------------------------------

/// Encodes a client frame into sealed wire bytes.
pub fn encode_client(frame: &ClientFrame) -> Vec<u8> {
    match frame {
        ClientFrame::Hello { tenant, priority } => {
            let mut e = Encoder::frame(FrameKind::Hello);
            e.put_str(tenant);
            e.put_u8(*priority);
            e.finish()
        }
        ClientFrame::Submit {
            task,
            config,
            devices,
            scenarios,
        } => {
            let mut e = Encoder::frame(FrameKind::Submit);
            put_task(&mut e, task);
            put_search_config(&mut e, config);
            e.put_usize(devices.len());
            for &d in devices {
                put_device(&mut e, d);
            }
            e.put_usize(scenarios.len());
            for s in scenarios {
                e.put_str(&s.label);
                put_task(&mut e, &s.task);
                put_search_config(&mut e, &s.config);
            }
            e.finish()
        }
        ClientFrame::Attach {
            request_id,
            tenant,
            from_seq,
        } => {
            let mut e = Encoder::frame(FrameKind::Attach);
            e.put_u64(*request_id);
            e.put_str(tenant);
            e.put_u64(*from_seq);
            e.finish()
        }
        ClientFrame::Bye => Encoder::frame(FrameKind::Bye).finish(),
    }
}

/// Decodes a client frame (the server's inbound path).
///
/// # Errors
///
/// Any [`CodecError`] from the frame layer, plus
/// [`CodecError::Invalid`] when the frame kind is server→client or a
/// payload value is out of domain.
pub fn decode_client(bytes: &[u8]) -> Result<ClientFrame, CodecError> {
    let (kind, mut d) = Decoder::open_frame(bytes)?;
    let frame = match kind {
        FrameKind::Hello => ClientFrame::Hello {
            tenant: d.take_string()?,
            priority: d.take_u8()?,
        },
        FrameKind::Submit => ClientFrame::Submit {
            task: take_task(&mut d)?,
            config: take_search_config(&mut d)?,
            devices: {
                let n = d.take_usize()?;
                (0..n)
                    .map(|_| take_device(&mut d))
                    .collect::<Result<_, _>>()?
            },
            scenarios: {
                let n = d.take_usize()?;
                (0..n)
                    .map(|_| {
                        Ok(ScenarioSpec {
                            label: d.take_string()?,
                            task: take_task(&mut d)?,
                            config: take_search_config(&mut d)?,
                        })
                    })
                    .collect::<Result<_, CodecError>>()?
            },
        },
        FrameKind::Attach => ClientFrame::Attach {
            request_id: d.take_u64()?,
            tenant: d.take_string()?,
            from_seq: d.take_u64()?,
        },
        FrameKind::Bye => ClientFrame::Bye,
        _ => return Err(CodecError::Invalid("server frame on client path")),
    };
    if !d.is_exhausted() {
        return Err(CodecError::Invalid("trailing bytes in client frame"));
    }
    Ok(frame)
}

/// Encodes a server frame into sealed wire bytes.
pub fn encode_server(frame: &ServerFrame) -> Vec<u8> {
    match frame {
        ServerFrame::HelloAck { protocol } => {
            let mut e = Encoder::frame(FrameKind::HelloAck);
            e.put_u8(*protocol);
            e.finish()
        }
        ServerFrame::Accepted { request_id, shards } => {
            let mut e = Encoder::frame(FrameKind::Accepted);
            e.put_u64(*request_id);
            e.put_usize(*shards);
            e.finish()
        }
        ServerFrame::Rejected { request_id, reason } => {
            let mut e = Encoder::frame(FrameKind::Rejected);
            e.put_u64(*request_id);
            e.put_str(reason);
            e.finish()
        }
        ServerFrame::Event {
            request_id,
            seq,
            event,
        } => {
            let mut e = Encoder::frame(FrameKind::Event);
            e.put_u64(*request_id);
            e.put_u64(*seq);
            put_event(&mut e, event);
            e.finish()
        }
        ServerFrame::Report { request_id, report } => {
            let mut e = Encoder::frame(FrameKind::Report);
            e.put_u64(*request_id);
            e.put_usize(report.k);
            e.put_usize(report.classes);
            e.put_u64(report.rounds);
            e.put_u64(report.slices);
            e.put_usize(report.shards.len());
            for s in &report.shards {
                e.put_str(&s.scenario);
                e.put_usize(s.k);
                e.put_usize(s.out_classes);
                put_device(&mut e, s.device);
                put_outcome(&mut e, &s.outcome);
                e.put_usize(s.pareto.len());
                for p in &s.pareto {
                    put_pareto_point(&mut e, p);
                }
                e.put_bool(s.warm_predictor);
                put_opt_usize(&mut e, s.resumed_from_generation);
                e.put_u64(s.slices);
                e.put_u64(s.prefix_builds);
            }
            e.finish()
        }
        ServerFrame::Pruned { report } => {
            let mut e = Encoder::frame(FrameKind::Pruned);
            put_prune_report(&mut e, report);
            e.finish()
        }
        ServerFrame::Drain { parked } => {
            let mut e = Encoder::frame(FrameKind::Drain);
            e.put_usize(parked.len());
            for &id in parked {
                e.put_u64(id);
            }
            e.finish()
        }
    }
}

/// Decodes a server frame (the client's inbound path).
///
/// # Errors
///
/// Any [`CodecError`] from the frame layer, plus
/// [`CodecError::Invalid`] when the frame kind is client→server or a
/// payload value is out of domain.
pub fn decode_server(bytes: &[u8]) -> Result<ServerFrame, CodecError> {
    let (kind, mut d) = Decoder::open_frame(bytes)?;
    let frame = match kind {
        FrameKind::HelloAck => ServerFrame::HelloAck {
            protocol: d.take_u8()?,
        },
        FrameKind::Accepted => ServerFrame::Accepted {
            request_id: d.take_u64()?,
            shards: d.take_usize()?,
        },
        FrameKind::Rejected => ServerFrame::Rejected {
            request_id: d.take_u64()?,
            reason: d.take_string()?,
        },
        FrameKind::Event => ServerFrame::Event {
            request_id: d.take_u64()?,
            seq: d.take_u64()?,
            event: take_event(&mut d)?,
        },
        FrameKind::Report => {
            let request_id = d.take_u64()?;
            let k = d.take_usize()?;
            let classes = d.take_usize()?;
            let rounds = d.take_u64()?;
            let slices = d.take_u64()?;
            let n = d.take_usize()?;
            let shards = (0..n)
                .map(|_| {
                    let scenario = d.take_string()?;
                    let shard_k = d.take_usize()?;
                    let out_classes = d.take_usize()?;
                    Ok(WireShardReport {
                        scenario,
                        k: shard_k,
                        out_classes,
                        device: take_device(&mut d)?,
                        outcome: take_outcome(&mut d, shard_k, out_classes)?,
                        pareto: {
                            let m = d.take_usize()?;
                            (0..m)
                                .map(|_| take_pareto_point(&mut d))
                                .collect::<Result<_, _>>()?
                        },
                        warm_predictor: d.take_bool()?,
                        resumed_from_generation: take_opt_usize(&mut d)?,
                        slices: d.take_u64()?,
                        prefix_builds: d.take_u64()?,
                    })
                })
                .collect::<Result<Vec<_>, CodecError>>()?;
            ServerFrame::Report {
                request_id,
                report: WireReport {
                    k,
                    classes,
                    shards,
                    rounds,
                    slices,
                },
            }
        }
        FrameKind::Pruned => ServerFrame::Pruned {
            report: take_prune_report(&mut d)?,
        },
        FrameKind::Drain => ServerFrame::Drain {
            parked: {
                let n = d.take_usize()?;
                (0..n).map(|_| d.take_u64()).collect::<Result<_, _>>()?
            },
        },
        _ => return Err(CodecError::Invalid("client frame on server path")),
    };
    if !d.is_exhausted() {
        return Err(CodecError::Invalid("trailing bytes in server frame"));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_core::SearchConfig;

    #[test]
    fn submit_round_trips_task_and_config() {
        let task = TaskConfig::tiny(9);
        let mut cfg = SearchConfig::fast(DeviceKind::JetsonTx2);
        cfg.constraint_ms = Some(4.5);
        cfg.eval_threads = 3;
        let frame = ClientFrame::Submit {
            task: task.clone(),
            config: cfg.clone(),
            devices: vec![DeviceKind::Rtx3080, DeviceKind::RaspberryPi3B],
            scenarios: Vec::new(),
        };
        let bytes = encode_client(&frame);
        match decode_client(&bytes).unwrap() {
            ClientFrame::Submit {
                task: t,
                config: c,
                devices,
                scenarios,
            } => {
                assert_eq!(t, task);
                assert_eq!(c.device, cfg.device);
                assert_eq!(c.constraint_ms, cfg.constraint_ms);
                assert_eq!(c.eval_threads, 3);
                assert_eq!(c.predictor, cfg.predictor);
                assert_eq!(c.seed, cfg.seed);
                assert_eq!(
                    devices,
                    vec![DeviceKind::Rtx3080, DeviceKind::RaspberryPi3B]
                );
                assert!(scenarios.is_empty());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn scenario_submit_round_trips_every_new_axis() {
        use hgnas_device::{DevicePersona, DeviceProfile};
        let task = {
            let mut t = TaskConfig::tiny(9);
            t.task_kind = TaskKind::Segmentation;
            t
        };
        let mut cfg = SearchConfig::fast(DeviceKind::JetsonTx2);
        cfg.gamma = 0.25;
        cfg.delta = 0.1;
        cfg.max_energy_mj = Some(12.5);
        cfg.max_peak_mem_mb = Some(64.0);
        let mut profile = DeviceProfile::builtin(DeviceKind::JetsonTx2);
        profile.overhead_us *= 1.5;
        cfg = cfg.with_persona(DevicePersona {
            name: "tx2-throttled".into(),
            profile,
        });
        let frame = ClientFrame::Submit {
            task: TaskConfig::tiny(9),
            config: SearchConfig::fast(DeviceKind::JetsonTx2),
            devices: Vec::new(),
            scenarios: vec![ScenarioSpec::new(
                "seg/energy/tx2-throttled",
                task.clone(),
                cfg.clone(),
            )],
        };
        let bytes = encode_client(&frame);
        match decode_client(&bytes).unwrap() {
            ClientFrame::Submit { scenarios, .. } => {
                assert_eq!(scenarios.len(), 1);
                let s = &scenarios[0];
                assert_eq!(s.label, "seg/energy/tx2-throttled");
                assert_eq!(s.task, task);
                assert_eq!(s.task.task_kind, TaskKind::Segmentation);
                assert_eq!(s.config.gamma.to_bits(), cfg.gamma.to_bits());
                assert_eq!(s.config.delta.to_bits(), cfg.delta.to_bits());
                assert_eq!(s.config.max_energy_mj, cfg.max_energy_mj);
                assert_eq!(s.config.max_peak_mem_mb, cfg.max_peak_mem_mb);
                assert_eq!(s.config.persona, cfg.persona);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn every_event_variant_round_trips() {
        let front = vec![ParetoPoint {
            latency_ms: 1.5,
            accuracy: 0.75,
            energy_mj: Some(3.25),
            peak_mem_mb: None,
            genome: vec![hgnas_ops::OpType::ALL[0]; 4],
        }];
        let events = vec![
            FleetEvent::ShardStarted {
                shard: 1,
                device: DeviceKind::Rtx3080,
                resumed_from: Some(3),
                warm_predictor: true,
            },
            FleetEvent::GenerationDone {
                shard: 0,
                device: DeviceKind::JetsonTx2,
                generation: 2,
                iterations: 8,
                best_score: None,
                clock_hours: 0.25,
            },
            FleetEvent::ParetoUpdated {
                shard: 2,
                device: DeviceKind::V100,
                front: front.clone(),
            },
            FleetEvent::ShardPreempted {
                shard: 0,
                device: DeviceKind::I78700K,
                generation: 5,
            },
            FleetEvent::ShardFinished {
                shard: 3,
                device: DeviceKind::RaspberryPi3B,
                latency_ms: 2.0,
                accuracy: 0.8,
                score: 0.9,
                reference_ms: 6.0,
                search_hours: 1.5,
                hit_pct: 33.3,
                imported: 7,
            },
            FleetEvent::ShardFailed {
                shard: 1,
                device: DeviceKind::Rtx3080,
                error: "store offline".into(),
            },
            FleetEvent::SessionCache {
                shard: 0,
                device: DeviceKind::JetsonTx2,
                action: SessionAction::Evicted { spilled: true },
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let bytes = encode_server(&ServerFrame::Event {
                request_id: 40 + i as u64,
                seq: i as u64,
                event: event.clone(),
            });
            match decode_server(&bytes).unwrap() {
                ServerFrame::Event {
                    request_id,
                    seq,
                    event: got,
                } => {
                    assert_eq!(request_id, 40 + i as u64);
                    assert_eq!(seq, i as u64);
                    assert_eq!(format!("{got:?}"), format!("{event:?}"));
                }
                other => panic!("wrong frame {other:?}"),
            }
        }
    }

    #[test]
    fn client_and_server_paths_reject_each_other() {
        let hello = encode_client(&ClientFrame::Hello {
            tenant: "t".into(),
            priority: 1,
        });
        assert_eq!(
            decode_server(&hello).unwrap_err(),
            CodecError::Invalid("client frame on server path")
        );
        let ack = encode_server(&ServerFrame::HelloAck { protocol: 1 });
        assert_eq!(
            decode_client(&ack).unwrap_err(),
            CodecError::Invalid("server frame on client path")
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut e = Encoder::frame(FrameKind::Bye);
        e.put_u8(0xff);
        assert_eq!(
            decode_client(&e.finish()).unwrap_err(),
            CodecError::Invalid("trailing bytes in client frame")
        );
    }
}
