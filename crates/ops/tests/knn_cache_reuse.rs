//! Pins the per-batch KNN cache: static-graph models build their layer-0
//! neighbor graph **once per batch**, not once per forward pass.
//!
//! These assertions sample the process-global `knn_brute_calls` counter, so
//! the whole file runs as one test in its own integration-test binary (its
//! own process) — in-crate unit tests run in parallel and would pollute the
//! count.

use hgnas_autograd::Tape;
use hgnas_graph::knn_brute_calls;
use hgnas_nn::{Module, Optimizer};
use hgnas_ops::{
    Aggregator, Architecture, DgcnnConfig, EdgeConvModel, GnnModel, MessageType, Operation,
    SampleFn,
};
use hgnas_pointcloud::{Batch, DatasetConfig, SynthNet40};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_batch() -> Batch {
    let ds = SynthNet40::generate(&DatasetConfig::tiny(11));
    SynthNet40::batches(&ds.train[..3], 3).remove(0)
}

#[test]
fn static_graph_knn_is_built_once_per_batch() {
    // --- EdgeConv, dynamic == false: the only graph is layer 0's. ---------
    let mut rng = StdRng::seed_from_u64(4);
    let mut cfg = DgcnnConfig::small(4);
    cfg.dynamic = false;
    let mut model = EdgeConvModel::new(&mut rng, cfg);
    let batch = toy_batch();
    let clouds = batch.segments.len();

    let mut opt = Optimizer::adam(5e-3);
    let before = knn_brute_calls();
    let (mut first, mut last) = (None, 0.0);
    for _ in 0..6 {
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        let loss = tape.softmax_cross_entropy(logits, &batch.labels);
        last = tape.value(loss).item();
        first.get_or_insert(last);
        tape.backward(loss);
        model.apply_updates(&tape, &mut opt);
    }
    assert!(last < first.unwrap(), "loss {first:?} -> {last}");
    // One knn_brute per cloud on the first forward; every later epoch hits
    // the batch cache.
    assert_eq!(
        knn_brute_calls() - before,
        clouds,
        "multi-epoch train loop re-derived the static KNN graph"
    );

    // A clone shares the cache (batch identity is the Arc), so it is free.
    let clone = batch.clone();
    let at = knn_brute_calls();
    let mut tape = Tape::new();
    model.forward(&mut tape, &clone, &mut rng);
    assert_eq!(
        knn_brute_calls(),
        at,
        "batch clone rebuilt the cached graph"
    );

    // --- GnnModel: leading Sample(Knn) / implicit Aggregate are static. ---
    let arch = Architecture::new(
        vec![
            Operation::Sample(SampleFn::Knn),
            Operation::Combine { dim: 16 },
            Operation::Aggregate {
                agg: Aggregator::Max,
                msg: MessageType::TargetRel,
            },
        ],
        8,
        4,
    );
    let gnn = GnnModel::new(&mut rng, arch, &[16]);
    let fresh = toy_batch();
    let before = knn_brute_calls();
    for _ in 0..4 {
        let mut tape = Tape::new();
        gnn.forward(&mut tape, &fresh, &mut rng);
    }
    assert_eq!(
        knn_brute_calls() - before,
        fresh.segments.len(),
        "leading Sample(Knn) graph not cached across forwards"
    );
}
