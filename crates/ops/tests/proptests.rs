//! Property-based tests on the IR, lowering and device-model invariants.

use hgnas_device::{DeviceKind, PersonaRegistry};
use hgnas_ops::{merge_adjacent_samples, Architecture, OpType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_arch(seed: u64, positions: usize) -> Architecture {
    let mut rng = StdRng::seed_from_u64(seed);
    Architecture::random(&mut rng, positions, 10, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn dim_trace_is_positive_and_consistent(seed in 0u64..2000, positions in 1usize..12) {
        let a = random_arch(seed, positions);
        let dims = a.dim_trace(3);
        prop_assert_eq!(dims.len(), a.len());
        prop_assert!(dims.iter().all(|&d| d > 0));
        prop_assert_eq!(*dims.last().unwrap(), a.out_dim(3));
    }

    #[test]
    fn lowering_never_panics_and_is_positive(seed in 0u64..2000, positions in 1usize..10) {
        let a = random_arch(seed, positions);
        let w = a.lower(64, &[16]);
        prop_assert!(w.total_flops() >= 0.0);
        prop_assert!(w.param_bytes > 0.0); // at least the head
        prop_assert!(!w.is_empty());
    }

    #[test]
    fn latency_positive_on_every_device(seed in 0u64..500, positions in 1usize..8) {
        let a = random_arch(seed, positions);
        let w = a.lower(128, &[16]);
        for persona in PersonaRegistry::builtin().edge_targets() {
            let r = persona.profile.execute(&w);
            prop_assert!(r.latency_ms > 0.0);
            prop_assert!(r.peak_mem_mb > 0.0);
        }
    }

    #[test]
    fn more_points_never_faster(seed in 0u64..300, positions in 1usize..8) {
        let a = random_arch(seed, positions);
        let small = a.lower(64, &[16]);
        let big = a.lower(256, &[16]);
        let p = DeviceKind::JetsonTx2.profile();
        prop_assert!(p.execute(&big).latency_ms >= p.execute(&small).latency_ms);
    }

    #[test]
    fn merge_pass_idempotent_and_dim_preserving(seed in 0u64..2000, positions in 1usize..12) {
        let a = random_arch(seed, positions);
        let m1 = merge_adjacent_samples(&a);
        let m2 = merge_adjacent_samples(&m1);
        prop_assert_eq!(&m1, &m2, "merge not idempotent");
        prop_assert_eq!(m1.out_dim(3), a.out_dim(3));
        // No two adjacent samples survive.
        for w in m1.ops.windows(2) {
            prop_assert!(
                !(w[0].op_type() == OpType::Sample && w[1].op_type() == OpType::Sample)
            );
        }
    }

    #[test]
    fn merge_never_increases_latency(seed in 0u64..300, positions in 2usize..10) {
        let a = random_arch(seed, positions);
        let m = merge_adjacent_samples(&a);
        let p = DeviceKind::Rtx3080.profile();
        let before = p.execute(&a.lower(128, &[16])).latency_ms;
        let after = p.execute(&m.lower(128, &[16])).latency_ms;
        prop_assert!(after <= before + 1e-9);
    }

    #[test]
    fn genome_round_trip_types(seed in 0u64..1000, positions in 2usize..12) {
        use hgnas_ops::FunctionSet;
        let mut rng = StdRng::seed_from_u64(seed);
        let types: Vec<OpType> = (0..positions)
            .map(|_| {
                use rand::Rng;
                OpType::ALL[rng.gen_range(0..4)]
            })
            .collect();
        let up = FunctionSet::random(&mut rng);
        let lo = FunctionSet::random(&mut rng);
        let arch = Architecture::from_genome(&types, up, lo, 10, 4);
        prop_assert_eq!(arch.op_types(), types);
    }

    #[test]
    fn measurement_noise_stays_positive(seed in 0u64..300) {
        let a = random_arch(seed, 6);
        let w = a.lower(96, &[16]);
        let p = DeviceKind::RaspberryPi3B.profile();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(r) = p.measure(&w, &mut rng) {
            prop_assert!(r.latency_ms > 0.0);
        }
    }
}
