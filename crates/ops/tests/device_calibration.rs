//! Calibration regression tests: the device simulator must keep reproducing
//! the paper's DGCNN measurements (Tab. II latency/memory, Fig. 3 breakdown,
//! Fig. 1 OOM cliff). If a profile or cost-model change breaks these, the
//! downstream experiment harnesses stop being a reproduction.

use hgnas_device::{DeviceKind, OpClass, PersonaRegistry};
use hgnas_ops::{lower_edgeconv, DgcnnConfig};

/// Paper Table II: (device, latency_ms, peak_mem_mb) for DGCNN @1024 pts.
const TABLE2_DGCNN: [(DeviceKind, f64, f64); 4] = [
    (DeviceKind::Rtx3080, 51.8, 144.0),
    (DeviceKind::I78700K, 234.2, 643.0),
    (DeviceKind::JetsonTx2, 270.4, 145.0),
    (DeviceKind::RaspberryPi3B, 4139.1, 457.8),
];

fn rel_err(measured: f64, target: f64) -> f64 {
    ((measured - target) / target).abs()
}

#[test]
fn dgcnn_latency_matches_table2_within_10pct() {
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    for (kind, target_ms, _) in TABLE2_DGCNN {
        let r = kind.profile().execute(&w);
        assert!(
            rel_err(r.latency_ms, target_ms) < 0.10,
            "{kind}: {:.1} ms vs paper {target_ms} ms",
            r.latency_ms
        );
    }
}

#[test]
fn dgcnn_peak_memory_matches_table2_within_10pct() {
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    for (kind, _, target_mb) in TABLE2_DGCNN {
        let r = kind.profile().execute(&w);
        assert!(
            rel_err(r.peak_mem_mb, target_mb) < 0.10,
            "{kind}: {:.1} MB vs paper {target_mb} MB",
            r.peak_mem_mb
        );
    }
}

#[test]
fn fig3_breakdown_shapes() {
    let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let frac = |kind: DeviceKind| kind.profile().execute(&w).breakdown_fractions();

    // RTX3080 & TX2: sample occupies the majority share (Observation ③).
    for kind in [DeviceKind::Rtx3080, DeviceKind::JetsonTx2] {
        let f = frac(kind);
        assert!(
            f[OpClass::Sample.index()] > 0.45,
            "{kind}: sample {:.2}",
            f[0]
        );
        assert!(
            f[OpClass::Sample.index()] > f[OpClass::Combine.index()],
            "{kind}"
        );
    }

    // i7: aggregate + sample dominate (> 80 % together), aggregate first.
    let f = frac(DeviceKind::I78700K);
    assert!(f[0] + f[1] > 0.80, "i7 sample+agg {:.2}", f[0] + f[1]);
    assert!(f[1] > f[0], "i7 aggregate should lead");

    // Pi: compute-bound everywhere — all three phases significant.
    let f = frac(DeviceKind::RaspberryPi3B);
    for (i, label) in ["sample", "aggregate", "combine"].iter().enumerate() {
        assert!(f[i] > 0.15, "Pi {label} share {:.2}", f[i]);
    }
}

#[test]
fn fig1_pi_oom_cliff_past_1536_points() {
    let pi = DeviceKind::RaspberryPi3B.profile();
    for (n, expect_oom) in [
        (128, false),
        (512, false),
        (1024, false),
        (1536, false),
        (2048, true),
    ] {
        let w = lower_edgeconv(&DgcnnConfig::paper(40), n);
        let r = pi.execute(&w);
        assert_eq!(r.oom, expect_oom, "n={n}: peak {:.0} MB", r.peak_mem_mb);
    }
}

#[test]
fn fig1_pi_latency_curve_rises_superlinearly() {
    let pi = DeviceKind::RaspberryPi3B.profile();
    let lat = |n: usize| {
        pi.execute(&lower_edgeconv(&DgcnnConfig::paper(40), n))
            .latency_ms
    };
    let (l128, l512, l1024) = (lat(128), lat(512), lat(1024));
    assert!(l512 > 2.0 * l128);
    // Quadratic KNN term: doubling points from 512 to 1024 should more than
    // double latency.
    assert!(l1024 > 2.0 * l512, "{l512} -> {l1024}");
}

#[test]
fn knn_reuse_baseline_speedup_in_paper_range() {
    // Paper Tab. II reports [6] at 1.1–2.5x over DGCNN depending on device.
    let dg = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
    let mut cfg = DgcnnConfig::paper(40);
    cfg.dynamic = false;
    cfg.reuse_after = 1;
    let reuse = lower_edgeconv(&cfg, 1024);
    for persona in PersonaRegistry::builtin().edge_targets() {
        let p = &persona.profile;
        let speedup = p.execute(&dg).latency_ms / p.execute(&reuse).latency_ms;
        assert!(
            (1.05..3.5).contains(&speedup),
            "{}: speedup {speedup:.2}",
            persona.name
        );
    }
}
