//! IR types: operations, functions, architectures (paper Table I).

use hgnas_tensor::reduce::Reduction;
use std::fmt;

/// Aggregator choices for the aggregate operation (Tab. I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregator {
    /// Sum of messages.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum (DGCNN's choice).
    Max,
    /// Arithmetic mean.
    Mean,
}

impl Aggregator {
    /// All aggregators in Tab. I order.
    pub const ALL: [Aggregator; 4] = [
        Aggregator::Sum,
        Aggregator::Min,
        Aggregator::Max,
        Aggregator::Mean,
    ];

    /// The tensor reduction this aggregator maps to.
    pub fn reduction(self) -> Reduction {
        match self {
            Aggregator::Sum => Reduction::Sum,
            Aggregator::Min => Reduction::Min,
            Aggregator::Max => Reduction::Max,
            Aggregator::Mean => Reduction::Mean,
        }
    }

    /// Stable index for feature encoding.
    pub fn index(self) -> usize {
        match self {
            Aggregator::Sum => 0,
            Aggregator::Min => 1,
            Aggregator::Max => 2,
            Aggregator::Mean => 3,
        }
    }
}

impl fmt::Display for Aggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregator::Sum => "sum",
            Aggregator::Min => "min",
            Aggregator::Max => "max",
            Aggregator::Mean => "mean",
        };
        f.write_str(s)
    }
}

/// Message-construction choices (Tab. I): how the per-edge message between a
/// target node `i` and a sampled source neighbour `j` is assembled from the
/// current features `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// `x_j` — the neighbour's features.
    SourcePos,
    /// `x_i` — the node's own features.
    TargetPos,
    /// `x_j − x_i`.
    RelPos,
    /// `‖x_j − x_i‖₂` (a 1-wide message).
    Distance,
    /// `x_j ‖ (x_j − x_i)`.
    SourceRel,
    /// `x_i ‖ (x_j − x_i)` — EdgeConv's message.
    TargetRel,
    /// `x_i ‖ x_j ‖ (x_j − x_i)`.
    Full,
}

impl MessageType {
    /// All message types in Tab. I order.
    pub const ALL: [MessageType; 7] = [
        MessageType::SourcePos,
        MessageType::TargetPos,
        MessageType::RelPos,
        MessageType::Distance,
        MessageType::SourceRel,
        MessageType::TargetRel,
        MessageType::Full,
    ];

    /// Message width given the current feature width `c`.
    pub fn width(self, c: usize) -> usize {
        match self {
            MessageType::SourcePos | MessageType::TargetPos | MessageType::RelPos => c,
            MessageType::Distance => 1,
            MessageType::SourceRel | MessageType::TargetRel => 2 * c,
            MessageType::Full => 3 * c,
        }
    }

    /// Stable index for feature encoding.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&m| m == self).unwrap()
    }
}

impl fmt::Display for MessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageType::SourcePos => "Source pos",
            MessageType::TargetPos => "Target pos",
            MessageType::RelPos => "Rel pos",
            MessageType::Distance => "Distance",
            MessageType::SourceRel => "Source||Rel pos",
            MessageType::TargetRel => "Target||Rel pos",
            MessageType::Full => "Full",
        };
        f.write_str(s)
    }
}

/// Graph-construction choices (Tab. I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleFn {
    /// Exact K-nearest-neighbour graph in the *current feature space*.
    Knn,
    /// Uniform random neighbours.
    Random,
}

impl SampleFn {
    /// All sampling functions.
    pub const ALL: [SampleFn; 2] = [SampleFn::Knn, SampleFn::Random];

    /// Stable index for feature encoding.
    pub fn index(self) -> usize {
        match self {
            SampleFn::Knn => 0,
            SampleFn::Random => 1,
        }
    }
}

impl fmt::Display for SampleFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SampleFn::Knn => "KNN",
            SampleFn::Random => "Random",
        })
    }
}

/// Connection choices (Tab. I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectFn {
    /// Skip-connection: merge the saved skip register into the current
    /// features (elementwise add when widths match, concat otherwise).
    Skip,
    /// Identity: pass through.
    Identity,
}

impl ConnectFn {
    /// All connection functions.
    pub const ALL: [ConnectFn; 2] = [ConnectFn::Skip, ConnectFn::Identity];

    /// Stable index for feature encoding.
    pub fn index(self) -> usize {
        match self {
            ConnectFn::Skip => 0,
            ConnectFn::Identity => 1,
        }
    }
}

impl fmt::Display for ConnectFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConnectFn::Skip => "Skip",
            ConnectFn::Identity => "Identity",
        })
    }
}

/// Hidden widths available to the combine operation (Tab. I).
pub const COMBINE_DIMS: [usize; 6] = [8, 16, 32, 64, 128, 256];

/// One placed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Graph (re)construction.
    Sample(SampleFn),
    /// Message construction + neighbour reduction.
    Aggregate {
        /// Reduction applied over the neighbourhood.
        agg: Aggregator,
        /// How per-edge messages are assembled.
        msg: MessageType,
    },
    /// Per-node dense transform to `dim` features (ReLU applied).
    Combine {
        /// Output width; one of [`COMBINE_DIMS`].
        dim: usize,
    },
    /// Identity / skip connection.
    Connect(ConnectFn),
}

/// The operation *type* alone — what Stage 2 of the search chooses per
/// position (attributes come from the position's [`FunctionSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Graph construction.
    Sample,
    /// Neighbour aggregation.
    Aggregate,
    /// Dense transform.
    Combine,
    /// Identity/skip.
    Connect,
}

impl OpType {
    /// All operation types.
    pub const ALL: [OpType; 4] = [
        OpType::Sample,
        OpType::Aggregate,
        OpType::Combine,
        OpType::Connect,
    ];

    /// Stable index for feature encoding.
    pub fn index(self) -> usize {
        match self {
            OpType::Sample => 0,
            OpType::Aggregate => 1,
            OpType::Combine => 2,
            OpType::Connect => 3,
        }
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpType::Sample => "Sample",
            OpType::Aggregate => "Aggregate",
            OpType::Combine => "Combine",
            OpType::Connect => "Connect",
        })
    }
}

/// A complete function assignment for one half of the supernet (Stage 1's
/// search unit): for each operation type, which function/attributes it uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionSet {
    /// Aggregator used by aggregate ops.
    pub aggregator: Aggregator,
    /// Message type used by aggregate ops.
    pub message: MessageType,
    /// Sampling function used by sample ops.
    pub sample: SampleFn,
    /// Connection function used by connect ops.
    pub connect: ConnectFn,
    /// Width used by combine ops.
    pub combine_dim: usize,
}

impl FunctionSet {
    /// DGCNN-flavoured default (EdgeConv message, max aggregator, KNN).
    pub fn dgcnn_like(combine_dim: usize) -> Self {
        FunctionSet {
            aggregator: Aggregator::Max,
            message: MessageType::TargetRel,
            sample: SampleFn::Knn,
            connect: ConnectFn::Skip,
            combine_dim,
        }
    }

    /// Instantiates an operation of `ty` with this set's attributes.
    pub fn instantiate(&self, ty: OpType) -> Operation {
        match ty {
            OpType::Sample => Operation::Sample(self.sample),
            OpType::Aggregate => Operation::Aggregate {
                agg: self.aggregator,
                msg: self.message,
            },
            OpType::Combine => Operation::Combine {
                dim: self.combine_dim,
            },
            OpType::Connect => Operation::Connect(self.connect),
        }
    }

    /// Samples a uniformly random function set (Stage-1 search material).
    pub fn random<R: rand::Rng>(rng: &mut R) -> Self {
        FunctionSet {
            aggregator: Aggregator::ALL[rng.gen_range(0..Aggregator::ALL.len())],
            message: MessageType::ALL[rng.gen_range(0..MessageType::ALL.len())],
            sample: SampleFn::ALL[rng.gen_range(0..SampleFn::ALL.len())],
            connect: ConnectFn::ALL[rng.gen_range(0..ConnectFn::ALL.len())],
            combine_dim: COMBINE_DIMS[rng.gen_range(0..COMBINE_DIMS.len())],
        }
    }

    /// Number of distinct function sets (the Stage-1 space per half).
    pub fn space_size() -> u64 {
        (Aggregator::ALL.len()
            * MessageType::ALL.len()
            * SampleFn::ALL.len()
            * ConnectFn::ALL.len()
            * COMBINE_DIMS.len()) as u64
    }
}

impl Operation {
    /// This operation's type.
    pub fn op_type(&self) -> OpType {
        match self {
            Operation::Sample(_) => OpType::Sample,
            Operation::Aggregate { .. } => OpType::Aggregate,
            Operation::Combine { .. } => OpType::Combine,
            Operation::Connect(_) => OpType::Connect,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Sample(s) => write!(f, "{s}"),
            Operation::Aggregate { agg, msg } => write!(f, "Aggregate ({msg}, {agg})"),
            Operation::Combine { dim } => write!(f, "Combine ({dim})"),
            Operation::Connect(c) => write!(f, "{c}"),
        }
    }
}

/// A complete candidate architecture: the placed operations plus the
/// execution hyperparameters shared by every model in an experiment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Architecture {
    /// The operation at each position.
    pub ops: Vec<Operation>,
    /// Neighbour fanout used by sample/aggregate (DGCNN uses 20).
    pub k: usize,
    /// Classifier output classes.
    pub classes: usize,
}

impl Architecture {
    /// Creates an architecture.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty, `k == 0`, or `classes == 0`.
    pub fn new(ops: Vec<Operation>, k: usize, classes: usize) -> Self {
        assert!(!ops.is_empty(), "architecture needs at least one op");
        assert!(k > 0 && classes > 0, "k and classes must be positive");
        Architecture { ops, k, classes }
    }

    /// Builds an architecture from op types and the two half function sets,
    /// as the multi-stage search does: positions `0..N/2` use `upper`,
    /// positions `N/2..N` use `lower`.
    pub fn from_genome(
        types: &[OpType],
        upper: FunctionSet,
        lower: FunctionSet,
        k: usize,
        classes: usize,
    ) -> Self {
        let half = types.len() / 2;
        let ops = types
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if i < half {
                    upper.instantiate(t)
                } else {
                    lower.instantiate(t)
                }
            })
            .collect();
        Architecture::new(ops, k, classes)
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if there are no positions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Traces feature widths through the pipeline: returns the width *after*
    /// each position, given 3-D point inputs. Mirrors the executor exactly;
    /// both the model builder and the lowering use this single source of
    /// truth.
    pub fn dim_trace(&self, in_dim: usize) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.ops.len());
        let mut cur = in_dim;
        let mut skip = in_dim;
        for op in &self.ops {
            cur = match *op {
                Operation::Sample(_) => cur,
                Operation::Aggregate { msg, .. } => msg.width(cur),
                Operation::Combine { dim } => dim,
                Operation::Connect(ConnectFn::Identity) => cur,
                Operation::Connect(ConnectFn::Skip) => {
                    let merged = if cur == skip { cur } else { cur + skip };
                    skip = merged;
                    merged
                }
            };
            dims.push(cur);
        }
        dims
    }

    /// Width of the final node features.
    pub fn out_dim(&self, in_dim: usize) -> usize {
        *self.dim_trace(in_dim).last().unwrap()
    }

    /// Samples a uniformly random architecture from the *full* fine-grained
    /// space (independent op + function choice per position). This is how
    /// the predictor's training set is generated (paper Sec. IV-A: "30K
    /// randomly sampled architectures in our fine-grained design space").
    pub fn random<R: rand::Rng>(rng: &mut R, positions: usize, k: usize, classes: usize) -> Self {
        assert!(positions > 0, "need at least one position");
        let ops = (0..positions)
            .map(|_| match rng.gen_range(0..4) {
                0 => Operation::Sample(SampleFn::ALL[rng.gen_range(0..SampleFn::ALL.len())]),
                1 => Operation::Aggregate {
                    agg: Aggregator::ALL[rng.gen_range(0..Aggregator::ALL.len())],
                    msg: MessageType::ALL[rng.gen_range(0..MessageType::ALL.len())],
                },
                2 => Operation::Combine {
                    dim: COMBINE_DIMS[rng.gen_range(0..COMBINE_DIMS.len())],
                },
                _ => Operation::Connect(ConnectFn::ALL[rng.gen_range(0..ConnectFn::ALL.len())]),
            })
            .collect();
        Architecture::new(ops, k, classes)
    }

    /// Counts ops of a given type.
    pub fn count(&self, ty: OpType) -> usize {
        self.ops.iter().filter(|o| o.op_type() == ty).count()
    }

    /// Trainable parameter count of the realised model (combine layers plus
    /// the pooled classifier head) — Table II's "Size" column without
    /// instantiating any weights.
    pub fn param_count(&self, in_dim: usize, head_hidden: &[usize]) -> usize {
        let mut params = 0usize;
        let mut cur = in_dim;
        for (op, after) in self.ops.iter().zip(self.dim_trace(in_dim)) {
            if let Operation::Combine { dim } = op {
                params += cur * dim + dim;
            }
            cur = after;
        }
        let mut hc = 2 * cur; // max ‖ mean pooling
        for &hd in head_hidden {
            params += hc * hd + hd;
            hc = hd;
        }
        params + hc * self.classes + self.classes
    }

    /// Model size in MB at 4 bytes per parameter.
    pub fn size_mb(&self, in_dim: usize, head_hidden: &[usize]) -> f64 {
        self.param_count(in_dim, head_hidden) as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// The op-type genome (inverse of [`Architecture::from_genome`] modulo
    /// function sets).
    pub fn op_types(&self) -> Vec<OpType> {
        self.ops.iter().map(Operation::op_type).collect()
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        write!(f, "  Classifier ({} classes, k={})", self.classes, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_arch() -> Architecture {
        Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                Operation::Combine { dim: 64 },
                Operation::Aggregate {
                    agg: Aggregator::Max,
                    msg: MessageType::TargetRel,
                },
            ],
            10,
            4,
        )
    }

    #[test]
    fn dim_trace_follows_semantics() {
        let a = toy_arch();
        // 3 -> sample keeps 3 -> combine 64 -> TargetRel doubles to 128.
        assert_eq!(a.dim_trace(3), vec![3, 64, 128]);
        assert_eq!(a.out_dim(3), 128);
    }

    #[test]
    fn skip_concat_then_add() {
        let a = Architecture::new(
            vec![
                Operation::Combine { dim: 32 },
                Operation::Connect(ConnectFn::Skip), // 32 vs skip=3 -> concat 35
                Operation::Connect(ConnectFn::Skip), // 35 vs skip=35 -> add, stays 35
            ],
            5,
            2,
        );
        assert_eq!(a.dim_trace(3), vec![32, 35, 35]);
    }

    #[test]
    fn distance_message_is_one_wide() {
        assert_eq!(MessageType::Distance.width(64), 1);
        assert_eq!(MessageType::Full.width(64), 192);
    }

    #[test]
    fn genome_round_trip() {
        let types = vec![
            OpType::Sample,
            OpType::Combine,
            OpType::Aggregate,
            OpType::Connect,
        ];
        let upper = FunctionSet::dgcnn_like(64);
        let lower = FunctionSet {
            aggregator: Aggregator::Mean,
            message: MessageType::SourcePos,
            sample: SampleFn::Random,
            connect: ConnectFn::Identity,
            combine_dim: 32,
        };
        let a = Architecture::from_genome(&types, upper, lower, 20, 40);
        assert_eq!(a.op_types(), types);
        // Upper half (positions 0,1) uses EdgeConv-ish functions.
        assert_eq!(a.ops[1], Operation::Combine { dim: 64 });
        // Lower half (positions 2,3) uses the other set.
        assert_eq!(
            a.ops[2],
            Operation::Aggregate {
                agg: Aggregator::Mean,
                msg: MessageType::SourcePos
            }
        );
        assert_eq!(a.ops[3], Operation::Connect(ConnectFn::Identity));
    }

    #[test]
    fn param_count_matches_instantiated_model_size() {
        // Cross-checked against the lowering's param accounting.
        let a = toy_arch();
        let lowered = a.lower(64, &[24]);
        let counted = a.param_count(3, &[24]);
        assert_eq!(counted as f64 * 4.0, lowered.param_bytes);
    }

    #[test]
    fn function_space_size_matches_tab1() {
        // 4 aggregators × 7 messages × 2 samples × 2 connects × 6 widths.
        assert_eq!(FunctionSet::space_size(), 4 * 7 * 2 * 2 * 6);
    }

    #[test]
    fn display_matches_fig10_style() {
        let op = Operation::Aggregate {
            agg: Aggregator::Max,
            msg: MessageType::TargetRel,
        };
        assert_eq!(op.to_string(), "Aggregate (Target||Rel pos, max)");
    }
}
