//! The EdgeConv model family: DGCNN and its manually simplified variants.
//!
//! DGCNN applies its MLP *per edge* before max-aggregation — the expensive
//! pattern the HGNAS design space escapes (which does per-node combines).
//! Implementing it faithfully matters for both accuracy (it is the accuracy
//! reference in Tab. II) and cost (its per-edge GEMMs dominate the Pi's
//! combine share in Fig. 3).

use crate::baselines::DgcnnConfig;
use hgnas_autograd::{Reduction, Tape, Var};
use hgnas_graph::knn_brute;
use hgnas_nn::{Activation, Linear, Mlp, Module, Param};
use hgnas_pointcloud::Batch;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// DGCNN-style model: a stack of EdgeConv layers (per-edge MLP on
/// `x_i ‖ (x_j − x_i)`, max aggregation), per-node embedding over the
/// concatenated layer outputs, pooled classifier head.
#[derive(Debug)]
pub struct EdgeConvModel {
    cfg: DgcnnConfig,
    layers: Vec<Linear>,
    emb: Linear,
    head: Mlp,
}

impl EdgeConvModel {
    /// Instantiates the model described by `cfg`.
    pub fn new<R: Rng>(rng: &mut R, cfg: DgcnnConfig) -> Self {
        let layers = cfg
            .layer_dims
            .iter()
            .map(|&(ci, co)| Linear::new(rng, 2 * ci, co))
            .collect();
        let cat_dim: usize = cfg.layer_dims.iter().map(|&(_, co)| co).sum();
        let emb = Linear::new(rng, cat_dim, cfg.emb_dim);
        let mut head_dims = vec![2 * cfg.emb_dim];
        head_dims.extend_from_slice(&cfg.head_hidden);
        head_dims.push(cfg.classes);
        let head = Mlp::new(rng, &head_dims, Activation::Relu);
        EdgeConvModel {
            cfg,
            layers,
            emb,
            head,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &DgcnnConfig {
        &self.cfg
    }

    fn knn_flat(data: &[f32], segments: &[usize], c: usize, k: usize) -> Vec<usize> {
        let mut flat = Vec::new();
        let mut row0 = 0usize;
        for &n in segments {
            let nl = knn_brute(&data[row0 * c..(row0 + n) * c], c, k);
            flat.extend(nl.flat().iter().map(|&j| j + row0));
            row0 += n;
        }
        flat
    }

    /// Forward pass over a stacked batch, returning `[clouds, classes]`
    /// logits.
    ///
    /// Layer 0's graph is a function of the immutable `batch.points` only, so
    /// it comes from the batch's neighbor cache — a multi-epoch train loop
    /// (or a `dynamic == false` config, whose *only* graph is layer 0's) pays
    /// the O(n²) KNN once per batch, not once per forward.
    pub fn forward(&self, tape: &mut Tape, batch: &Batch, _rng: &mut StdRng) -> Var {
        let k = self.cfg.k;
        let mut h = tape.input(batch.points.clone());
        let mut cur_dim = 3usize;
        let mut neighbors: Option<Arc<Vec<usize>>> = None;
        let mut outputs = Vec::with_capacity(self.layers.len());

        for (li, ((ci, co), lin)) in self.cfg.layer_dims.iter().zip(&self.layers).enumerate() {
            debug_assert_eq!(*ci, cur_dim, "layer {li} input width mismatch");
            if li == 0 {
                neighbors = Some(batch.cached_neighbors(Batch::RAW_POINTS_SOURCE, k, || {
                    Self::knn_flat(batch.points.data(), &batch.segments, cur_dim, k)
                }));
            } else if self.cfg.dynamic && li < self.cfg.reuse_after {
                // Dynamic graphs depend on the evolving features (and thus
                // the weights) — never cacheable across forwards.
                let data = tape.value(h).data().to_vec();
                neighbors = Some(Arc::new(Self::knn_flat(&data, &batch.segments, cur_dim, k)));
            }
            let idx: &[usize] = neighbors.as_ref().expect("graph built at layer 0");
            let nbr = tape.gather_rows(h, idx);
            let ctr = tape.repeat_rows(h, k);
            let rel = tape.sub(nbr, ctr);
            let msg = tape.concat_cols(&[ctr, rel]);
            let e = lin.forward(tape, msg);
            let e = tape.relu(e);
            h = tape.reduce_mid(e, k, Reduction::Max);
            cur_dim = *co;
            outputs.push(h);
        }

        let cat = if outputs.len() == 1 {
            outputs[0]
        } else {
            tape.concat_cols(&outputs)
        };
        let embedded = self.emb.forward(tape, cat);
        let embedded = tape.relu(embedded);
        let mx = tape.segment_pool(embedded, &batch.segments, Reduction::Max);
        let mn = tape.segment_pool(embedded, &batch.segments, Reduction::Mean);
        let pooled = tape.concat_cols(&[mx, mn]);
        self.head.forward(tape, pooled)
    }
}

impl Module for EdgeConvModel {
    fn params(&self) -> Vec<&Param> {
        let mut p: Vec<&Param> = self.layers.iter().flat_map(Module::params).collect();
        p.extend(self.emb.params());
        p.extend(self.head.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self
            .layers
            .iter_mut()
            .flat_map(Module::params_mut)
            .collect();
        p.extend(self.emb.params_mut());
        p.extend(self.head.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_pointcloud::{DatasetConfig, SynthNet40};
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(11));
        SynthNet40::batches(&ds.train[..3], 3).remove(0)
    }

    #[test]
    fn dgcnn_small_forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = EdgeConvModel::new(&mut rng, DgcnnConfig::small(4));
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        assert_eq!(tape.value(logits).dims(), &[3, 4]);
    }

    #[test]
    fn static_graph_variant_runs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = DgcnnConfig::small(4);
        cfg.dynamic = false;
        let model = EdgeConvModel::new(&mut rng, cfg);
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        assert_eq!(tape.value(logits).dims(), &[3, 4]);
    }

    #[test]
    fn paper_scale_param_count_near_1_8mb() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = EdgeConvModel::new(&mut rng, DgcnnConfig::paper(40));
        // The paper reports DGCNN at 1.81 MB.
        let mb = model.size_mb();
        assert!((1.2..2.6).contains(&mb), "size {mb} MB");
    }

    #[test]
    fn training_step_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = EdgeConvModel::new(&mut rng, DgcnnConfig::small(4));
        let batch = toy_batch();
        let mut opt = hgnas_nn::Optimizer::adam(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..8 {
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, &batch, &mut rng);
            let loss = tape.softmax_cross_entropy(logits, &batch.labels);
            last = tape.value(loss).item();
            first.get_or_insert(last);
            tape.backward(loss);
            model.apply_updates(&tape, &mut opt);
        }
        assert!(last < first.unwrap(), "loss {first:?} -> {last}");
    }
}
