//! The trainable executor for fine-grained architectures.

use crate::ir::{Architecture, ConnectFn, MessageType, Operation, SampleFn};
use hgnas_autograd::{Reduction, Tape, Var};
use hgnas_graph::{knn_brute, random_neighbors};
use hgnas_nn::{Activation, Linear, Mlp, Module, Param};
use hgnas_pointcloud::Batch;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// A concrete, trainable instantiation of an [`Architecture`]: one
/// [`Linear`] per combine op plus a pooled classifier head.
///
/// Execution semantics (mirrored exactly by
/// [`Architecture::dim_trace`]):
///
/// - `Sample` rebuilds the neighbour graph from the *current* features
///   (KNN) or uniformly at random;
/// - `Aggregate` with no prior sample implicitly builds a KNN graph on the
///   raw input coordinates;
/// - `Combine` applies `Linear` + ReLU per node;
/// - `Connect(Skip)` merges a skip register (elementwise add when widths
///   match, feature concat otherwise), then re-arms the register;
/// - the head concatenates per-cloud max and mean pooling and applies an
///   MLP down to class logits.
#[derive(Debug)]
pub struct GnnModel {
    arch: Architecture,
    combines: Vec<Linear>,
    head: Mlp,
    in_dim: usize,
}

impl GnnModel {
    /// Instantiates parameters for `arch` on 3-D point input.
    ///
    /// `head_hidden` are the classifier's hidden widths (e.g. `[128]`).
    pub fn new<R: Rng>(rng: &mut R, arch: Architecture, head_hidden: &[usize]) -> Self {
        let in_dim = 3;
        let dims = arch.dim_trace(in_dim);
        let mut combines = Vec::new();
        let mut cur = in_dim;
        for (op, &after) in arch.ops.iter().zip(&dims) {
            if let Operation::Combine { dim } = op {
                combines.push(Linear::new(rng, cur, *dim));
            }
            cur = after;
        }
        let out = arch.out_dim(in_dim);
        let mut head_dims = vec![2 * out];
        head_dims.extend_from_slice(head_hidden);
        head_dims.push(arch.classes);
        let head = Mlp::new(rng, &head_dims, Activation::Relu);
        GnnModel {
            arch,
            combines,
            head,
            in_dim,
        }
    }

    /// The architecture this model realises.
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// Builds the flat KNN index table for a stacked batch: per-cloud
    /// brute-force KNN over `c`-dim features, offset into the stacked row
    /// space. Deterministic in its inputs, hence cacheable per batch when
    /// the features are.
    fn build_knn_neighbors(data: &[f32], segments: &[usize], c: usize, k: usize) -> Vec<usize> {
        let mut flat = Vec::with_capacity(data.len() / c * k);
        let mut row0 = 0usize;
        for &n in segments {
            let nl = knn_brute(&data[row0 * c..(row0 + n) * c], c, k);
            flat.extend(nl.flat().iter().map(|&j| j + row0));
            row0 += n;
        }
        flat
    }

    /// Random-neighbour counterpart of [`Self::build_knn_neighbors`]. Draws
    /// from `rng` every call, so it must never be cached — a cache hit would
    /// skip the draws and desynchronise the RNG stream.
    fn build_random_neighbors(segments: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
        let total: usize = segments.iter().sum();
        let mut flat = Vec::with_capacity(total * k);
        let mut row0 = 0usize;
        for &n in segments {
            let nl = random_neighbors(rng, n, k);
            flat.extend(nl.flat().iter().map(|&j| j + row0));
            row0 += n;
        }
        flat
    }

    /// Forward pass over a stacked batch, returning `[clouds, classes]`
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics if any cloud has `≤ k` points.
    pub fn forward(&self, tape: &mut Tape, batch: &Batch, rng: &mut StdRng) -> Var {
        let k = self.arch.k;
        let mut h = tape.input(batch.points.clone());
        let mut cur_dim = self.in_dim;
        let mut skip = h;
        let mut skip_dim = cur_dim;
        let mut neighbors: Option<Arc<Vec<usize>>> = None;
        let mut combine_idx = 0usize;
        // True until an op overwrites `h`: while it holds, `h` is exactly
        // `batch.points`, so a KNN over it is a pure function of the batch
        // and comes from the per-batch cache.
        let mut h_is_raw = true;

        for op in &self.arch.ops {
            match *op {
                Operation::Sample(func) => {
                    neighbors = Some(match func {
                        SampleFn::Knn if h_is_raw => {
                            batch.cached_neighbors(Batch::RAW_POINTS_SOURCE, k, || {
                                Self::build_knn_neighbors(
                                    batch.points.data(),
                                    &batch.segments,
                                    cur_dim,
                                    k,
                                )
                            })
                        }
                        SampleFn::Knn => {
                            let data = tape.value(h).data().to_vec();
                            Arc::new(Self::build_knn_neighbors(
                                &data,
                                &batch.segments,
                                cur_dim,
                                k,
                            ))
                        }
                        SampleFn::Random => {
                            Arc::new(Self::build_random_neighbors(&batch.segments, k, rng))
                        }
                    });
                }
                Operation::Aggregate { agg, msg } => {
                    if neighbors.is_none() {
                        // Implicit graph on raw input coordinates — always a
                        // pure function of the batch, so always cacheable.
                        neighbors =
                            Some(batch.cached_neighbors(Batch::RAW_POINTS_SOURCE, k, || {
                                Self::build_knn_neighbors(
                                    batch.points.data(),
                                    &batch.segments,
                                    self.in_dim,
                                    k,
                                )
                            }));
                    }
                    let idx: &[usize] = neighbors.as_ref().unwrap();
                    let nbr = tape.gather_rows(h, idx);
                    let ctr = tape.repeat_rows(h, k);
                    let message = match msg {
                        MessageType::SourcePos => nbr,
                        MessageType::TargetPos => ctr,
                        MessageType::RelPos => tape.sub(nbr, ctr),
                        MessageType::Distance => {
                            let rel = tape.sub(nbr, ctr);
                            tape.row_norms(rel)
                        }
                        MessageType::SourceRel => {
                            let rel = tape.sub(nbr, ctr);
                            tape.concat_cols(&[nbr, rel])
                        }
                        MessageType::TargetRel => {
                            let rel = tape.sub(nbr, ctr);
                            tape.concat_cols(&[ctr, rel])
                        }
                        MessageType::Full => {
                            let rel = tape.sub(nbr, ctr);
                            tape.concat_cols(&[ctr, nbr, rel])
                        }
                    };
                    h = tape.reduce_mid(message, k, agg.reduction());
                    cur_dim = msg.width(cur_dim);
                    h_is_raw = false;
                }
                Operation::Combine { dim } => {
                    let lin = &self.combines[combine_idx];
                    combine_idx += 1;
                    h = lin.forward(tape, h);
                    h = tape.relu(h);
                    cur_dim = dim;
                    h_is_raw = false;
                }
                Operation::Connect(ConnectFn::Identity) => {}
                Operation::Connect(ConnectFn::Skip) => {
                    if cur_dim == skip_dim {
                        h = tape.add(h, skip);
                    } else {
                        h = tape.concat_cols(&[h, skip]);
                        cur_dim += skip_dim;
                    }
                    skip = h;
                    skip_dim = cur_dim;
                    h_is_raw = false;
                }
            }
        }

        let mx = tape.segment_pool(h, &batch.segments, Reduction::Max);
        let mn = tape.segment_pool(h, &batch.segments, Reduction::Mean);
        let pooled = tape.concat_cols(&[mx, mn]);
        self.head.forward(tape, pooled)
    }
}

impl Module for GnnModel {
    fn params(&self) -> Vec<&Param> {
        let mut p: Vec<&Param> = self.combines.iter().flat_map(Module::params).collect();
        p.extend(self.head.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self
            .combines
            .iter_mut()
            .flat_map(Module::params_mut)
            .collect();
        p.extend(self.head.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Aggregator, FunctionSet, OpType};
    use hgnas_pointcloud::{DatasetConfig, SynthNet40};
    use rand::SeedableRng;

    fn toy_batch() -> Batch {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(1));
        SynthNet40::batches(&ds.train[..4], 4).remove(0)
    }

    fn toy_arch() -> Architecture {
        Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                Operation::Combine { dim: 16 },
                Operation::Aggregate {
                    agg: Aggregator::Max,
                    msg: MessageType::TargetRel,
                },
                Operation::Connect(ConnectFn::Skip),
                Operation::Combine { dim: 32 },
            ],
            8,
            4,
        )
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = GnnModel::new(&mut rng, toy_arch(), &[24]);
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        assert_eq!(tape.value(logits).dims(), &[4, 4]);
    }

    #[test]
    fn implicit_graph_when_aggregate_first() {
        let arch = Architecture::new(
            vec![Operation::Aggregate {
                agg: Aggregator::Mean,
                msg: MessageType::RelPos,
            }],
            8,
            4,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let model = GnnModel::new(&mut rng, arch, &[8]);
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        assert_eq!(tape.value(logits).dims(), &[4, 4]);
    }

    #[test]
    fn genome_built_model_runs() {
        let types = vec![
            OpType::Sample,
            OpType::Combine,
            OpType::Aggregate,
            OpType::Connect,
            OpType::Combine,
            OpType::Aggregate,
        ];
        let arch = Architecture::from_genome(
            &types,
            FunctionSet::dgcnn_like(32),
            FunctionSet::dgcnn_like(64),
            8,
            4,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let model = GnnModel::new(&mut rng, arch, &[16]);
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        assert_eq!(tape.value(logits).dims()[1], 4);
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = GnnModel::new(&mut rng, toy_arch(), &[24]);
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        let loss = tape.softmax_cross_entropy(logits, &batch.labels);
        tape.backward(loss);
        let mut opt = hgnas_nn::Optimizer::adam(1e-3);
        let before: Vec<f32> = model.params().iter().map(|p| p.value().sq_norm()).collect();
        model.apply_updates(&tape, &mut opt);
        let after: Vec<f32> = model.params().iter().map(|p| p.value().sq_norm()).collect();
        let changed = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| (*b - *a).abs() > 0.0)
            .count();
        assert!(
            changed >= before.len() - 1,
            "only {changed}/{} params updated",
            before.len()
        );
    }

    #[test]
    fn distance_message_width_one() {
        let arch = Architecture::new(
            vec![
                Operation::Sample(SampleFn::Random),
                Operation::Aggregate {
                    agg: Aggregator::Sum,
                    msg: MessageType::Distance,
                },
                Operation::Combine { dim: 8 },
            ],
            8,
            4,
        );
        let mut rng = StdRng::seed_from_u64(6);
        let model = GnnModel::new(&mut rng, arch, &[8]);
        let batch = toy_batch();
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &batch, &mut rng);
        assert_eq!(tape.value(logits).dims(), &[4, 4]);
    }
}
