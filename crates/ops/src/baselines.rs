//! Baseline model constructors: DGCNN \[5\], the KNN-reuse optimisation
//! \[6\] (Li et al., ICCV'21), and the architectural simplification \[7\]
//! (Tailor et al., ICCV'21).

use crate::edgeconv::EdgeConvModel;
use crate::ir::{Aggregator, Architecture, MessageType, Operation, SampleFn};
use rand::Rng;

/// Configuration of an EdgeConv (DGCNN-family) model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DgcnnConfig {
    /// Per-layer `(c_in, c_out)`; the edge MLP of layer `i` maps
    /// `2·c_in → c_out`.
    pub layer_dims: Vec<(usize, usize)>,
    /// Neighbour fanout.
    pub k: usize,
    /// Per-node embedding width applied to the concatenated layer outputs.
    pub emb_dim: usize,
    /// Classifier hidden widths.
    pub head_hidden: Vec<usize>,
    /// Output classes.
    pub classes: usize,
    /// Rebuild the KNN graph in feature space each layer (true DGCNN
    /// behaviour). `false` freezes the layer-0 graph, as \[6\] does.
    pub dynamic: bool,
    /// Number of leading layers allowed to build their own graph; later
    /// layers reuse the last one (Fig. 2(b)'s reuse sweep). DGCNN uses
    /// `layer_dims.len()`.
    pub reuse_after: usize,
}

impl DgcnnConfig {
    /// The paper-scale DGCNN: 4 EdgeConv layers (64, 64, 128, 256), k=20.
    /// The embedding/head widths are sized so the parameter budget lands at
    /// the paper's reported 1.81 MB (Tab. II).
    pub fn paper(classes: usize) -> Self {
        DgcnnConfig {
            layer_dims: vec![(3, 64), (64, 64), (64, 128), (128, 256)],
            k: 20,
            emb_dim: 512,
            head_hidden: vec![128],
            classes,
            dynamic: true,
            reuse_after: 4,
        }
    }

    /// Reduced-scale DGCNN used by the fast harnesses: 3 layers, k=10.
    pub fn small(classes: usize) -> Self {
        DgcnnConfig {
            layer_dims: vec![(3, 24), (24, 24), (24, 48)],
            k: 10,
            emb_dim: 96,
            head_hidden: vec![48],
            classes,
            dynamic: true,
            reuse_after: 3,
        }
    }

    /// Number of EdgeConv layers.
    pub fn num_layers(&self) -> usize {
        self.layer_dims.len()
    }
}

/// Builds the DGCNN baseline \[5\].
pub fn dgcnn<R: Rng>(rng: &mut R, cfg: DgcnnConfig) -> EdgeConvModel {
    EdgeConvModel::new(rng, cfg)
}

/// Paper-scale DGCNN shortcut.
pub fn dgcnn_paper<R: Rng>(rng: &mut R, classes: usize) -> EdgeConvModel {
    EdgeConvModel::new(rng, DgcnnConfig::paper(classes))
}

/// Baseline \[6\]: DGCNN with redundant sampling eliminated — the KNN graph
/// is built once on the input coordinates and reused by every layer.
pub fn knn_reuse_baseline<R: Rng>(rng: &mut R, mut cfg: DgcnnConfig) -> EdgeConvModel {
    cfg.dynamic = false;
    cfg.reuse_after = 1;
    EdgeConvModel::new(rng, cfg)
}

/// Baseline \[7\]: Tailor et al.'s architectural simplification expressed in
/// the fine-grained IR — a single feature-space graph build, then
/// aggregate-then-combine blocks (per-node MLPs instead of per-edge MLPs)
/// with the later blocks narrowed.
///
/// `scale_paper` selects paper widths (64/64/128/256-ish) versus the reduced
/// harness widths.
pub fn tailor_baseline(scale_paper: bool, k: usize, classes: usize) -> Architecture {
    let (d1, d2, d3) = if scale_paper {
        (64, 128, 256)
    } else {
        (24, 48, 48)
    };
    Architecture::new(
        vec![
            Operation::Sample(SampleFn::Knn),
            Operation::Aggregate {
                agg: Aggregator::Max,
                msg: MessageType::TargetRel,
            },
            Operation::Combine { dim: d1 },
            Operation::Aggregate {
                agg: Aggregator::Max,
                msg: MessageType::TargetRel,
            },
            Operation::Combine { dim: d2 },
            Operation::Aggregate {
                agg: Aggregator::Mean,
                msg: MessageType::RelPos,
            },
            Operation::Combine { dim: d3 },
        ],
        k,
        classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_nn::Module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_matches_dgcnn_shape() {
        let cfg = DgcnnConfig::paper(40);
        assert_eq!(cfg.num_layers(), 4);
        assert_eq!(cfg.k, 20);
        assert_eq!(cfg.layer_dims[3], (128, 256));
    }

    #[test]
    fn knn_reuse_freezes_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = knn_reuse_baseline(&mut rng, DgcnnConfig::small(4));
        assert!(!m.config().dynamic);
        assert_eq!(m.config().reuse_after, 1);
    }

    #[test]
    fn tailor_arch_has_single_sample() {
        let a = tailor_baseline(true, 20, 40);
        assert_eq!(a.count(crate::ir::OpType::Sample), 1);
        assert_eq!(a.count(crate::ir::OpType::Aggregate), 3);
        assert_eq!(a.out_dim(3), 256);
    }

    #[test]
    fn baseline_sizes_ordered() {
        // [7] (node-level combines) should be smaller than DGCNN's 1.8 MB at
        // paper scale but the same order of magnitude.
        let mut rng = StdRng::seed_from_u64(2);
        let dg = dgcnn_paper(&mut rng, 40);
        let tailor = crate::model::GnnModel::new(&mut rng, tailor_baseline(true, 20, 40), &[128]);
        assert!(tailor.size_mb() < dg.size_mb() * 1.5);
        assert!(tailor.size_mb() > 0.05);
    }
}
