//! Shared training and evaluation loop for point-cloud classifiers.

use crate::edgeconv::EdgeConvModel;
use crate::model::GnnModel;
use hgnas_autograd::{Tape, Var};
use hgnas_nn::metrics::{balanced_accuracy, overall_accuracy, predictions};
use hgnas_nn::{Module, Optimizer};
use hgnas_pointcloud::{Batch, PointCloud, SynthNet40};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Any model trainable on stacked point-cloud batches.
pub trait PointCloudClassifier: Module {
    /// Forward pass producing `[clouds, classes]` logits.
    fn forward_batch(&self, tape: &mut Tape, batch: &Batch, rng: &mut StdRng) -> Var;
}

impl PointCloudClassifier for GnnModel {
    fn forward_batch(&self, tape: &mut Tape, batch: &Batch, rng: &mut StdRng) -> Var {
        self.forward(tape, batch, rng)
    }
}

impl PointCloudClassifier for EdgeConvModel {
    fn forward_batch(&self, tape: &mut Tape, batch: &Batch, rng: &mut StdRng) -> Var {
        self.forward(tape, batch, rng)
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Passes over the training split.
    pub epochs: usize,
    /// Clouds per batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for sampling ops inside the forward pass.
    pub seed: u64,
}

impl FitConfig {
    /// A fast default used by the reduced-scale harnesses.
    pub fn quick() -> Self {
        FitConfig {
            epochs: 10,
            batch_size: 8,
            lr: 3e-3,
            seed: 0,
        }
    }

    /// Returns a copy with a different epoch budget.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

/// What [`fit`] observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Mean training loss of the first epoch.
    pub first_epoch_loss: f32,
    /// Mean training loss of the last epoch.
    pub final_loss: f32,
    /// Total optimisation steps taken.
    pub steps: usize,
}

/// Trains `model` in place with Adam + softmax cross-entropy.
///
/// # Panics
///
/// Panics if `train` is empty.
pub fn fit<M: PointCloudClassifier>(
    model: &mut M,
    train: &[PointCloud],
    cfg: &FitConfig,
) -> FitReport {
    assert!(!train.is_empty(), "empty training set");
    let mut opt = Optimizer::adam(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let batches = SynthNet40::batches(train, cfg.batch_size);
    let mut first_epoch_loss = 0.0f32;
    let mut final_loss = 0.0f32;
    let mut steps = 0usize;
    for epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0f32;
        for batch in &batches {
            let mut tape = Tape::new();
            let logits = model.forward_batch(&mut tape, batch, &mut rng);
            let loss = tape.softmax_cross_entropy(logits, &batch.labels);
            epoch_loss += tape.value(loss).item();
            tape.backward(loss);
            model.apply_updates(&tape, &mut opt);
            steps += 1;
        }
        epoch_loss /= batches.len() as f32;
        if epoch == 0 {
            first_epoch_loss = epoch_loss;
        }
        final_loss = epoch_loss;
    }
    FitReport {
        first_epoch_loss,
        final_loss,
        steps,
    }
}

/// Accuracy of a model on an evaluation split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Overall accuracy (the paper's OA), as a fraction.
    pub overall: f64,
    /// Balanced accuracy (the paper's mAcc), as a fraction.
    pub balanced: f64,
}

/// Evaluates `model` on `clouds` (no gradient bookkeeping is read back).
///
/// # Panics
///
/// Panics if `clouds` is empty.
pub fn evaluate<M: PointCloudClassifier>(
    model: &M,
    clouds: &[PointCloud],
    classes: usize,
    seed: u64,
) -> EvalReport {
    assert!(!clouds.is_empty(), "empty evaluation set");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pred = Vec::with_capacity(clouds.len());
    let mut truth = Vec::with_capacity(clouds.len());
    for batch in SynthNet40::batches(clouds, 16) {
        let mut tape = Tape::new();
        let logits = model.forward_batch(&mut tape, &batch, &mut rng);
        pred.extend(predictions(tape.value(logits).data(), classes));
        truth.extend_from_slice(&batch.labels);
    }
    EvalReport {
        overall: overall_accuracy(&pred, &truth),
        balanced: balanced_accuracy(&pred, &truth, classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{dgcnn, DgcnnConfig};
    use crate::ir::{Aggregator, Architecture, MessageType, Operation, SampleFn};
    use hgnas_pointcloud::DatasetConfig;

    #[test]
    fn dgcnn_learns_tiny_dataset() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(21));
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = dgcnn(&mut rng, DgcnnConfig::small(ds.classes));
        let report = fit(
            &mut model,
            &ds.train,
            &FitConfig {
                epochs: 14,
                batch_size: 8,
                lr: 3e-3,
                seed: 0,
            },
        );
        assert!(report.final_loss < report.first_epoch_loss, "{report:?}");
        let eval = evaluate(&model, &ds.train, ds.classes, 7);
        assert!(eval.overall > 0.5, "train OA {}", eval.overall);
    }

    #[test]
    fn gnn_model_learns_tiny_dataset() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(22));
        let arch = Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                Operation::Aggregate {
                    agg: Aggregator::Max,
                    msg: MessageType::TargetRel,
                },
                Operation::Combine { dim: 32 },
                Operation::Aggregate {
                    agg: Aggregator::Max,
                    msg: MessageType::TargetRel,
                },
                Operation::Combine { dim: 32 },
            ],
            8,
            ds.classes,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = GnnModel::new(&mut rng, arch, &[24]);
        let report = fit(&mut model, &ds.train, &FitConfig::quick().with_epochs(14));
        assert!(report.final_loss < report.first_epoch_loss);
        let eval = evaluate(&model, &ds.train, ds.classes, 8);
        assert!(eval.overall > 0.5, "train OA {}", eval.overall);
    }

    #[test]
    fn eval_is_deterministic_for_knn_models() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(23));
        let mut rng = StdRng::seed_from_u64(3);
        let model = dgcnn(&mut rng, DgcnnConfig::small(ds.classes));
        let a = evaluate(&model, &ds.test, ds.classes, 1);
        let b = evaluate(&model, &ds.test, ds.classes, 2);
        assert_eq!(a, b);
    }
}
