//! Compact text serialisation for architectures.
//!
//! A search outcome is only useful if it can leave the process; this module
//! gives [`Architecture`] a stable, human-editable round-trip format:
//!
//! ```text
//! k=20 classes=40 | knn > combine:64 > agg:max:target_rel > skip
//! ```
//!
//! One token per operation, `>`-separated, with the execution
//! hyperparameters up front.

use crate::ir::{Aggregator, Architecture, ConnectFn, MessageType, Operation, SampleFn};
use std::fmt;
use std::str::FromStr;

/// Error produced when parsing an architecture string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArchError {
    /// What went wrong, human-readable.
    msg: String,
}

impl ParseArchError {
    fn new(msg: impl Into<String>) -> Self {
        ParseArchError { msg: msg.into() }
    }
}

impl fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid architecture string: {}", self.msg)
    }
}

impl std::error::Error for ParseArchError {}

fn agg_token(a: Aggregator) -> &'static str {
    match a {
        Aggregator::Sum => "sum",
        Aggregator::Min => "min",
        Aggregator::Max => "max",
        Aggregator::Mean => "mean",
    }
}

fn msg_token(m: MessageType) -> &'static str {
    match m {
        MessageType::SourcePos => "source",
        MessageType::TargetPos => "target",
        MessageType::RelPos => "rel",
        MessageType::Distance => "dist",
        MessageType::SourceRel => "source_rel",
        MessageType::TargetRel => "target_rel",
        MessageType::Full => "full",
    }
}

fn parse_agg(s: &str) -> Result<Aggregator, ParseArchError> {
    Aggregator::ALL
        .into_iter()
        .find(|&a| agg_token(a) == s)
        .ok_or_else(|| ParseArchError::new(format!("unknown aggregator `{s}`")))
}

fn parse_msg(s: &str) -> Result<MessageType, ParseArchError> {
    MessageType::ALL
        .into_iter()
        .find(|&m| msg_token(m) == s)
        .ok_or_else(|| ParseArchError::new(format!("unknown message type `{s}`")))
}

impl Architecture {
    /// Serialises to the compact single-line format.
    pub fn to_compact_string(&self) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|op| match *op {
                Operation::Sample(SampleFn::Knn) => "knn".to_string(),
                Operation::Sample(SampleFn::Random) => "rand".to_string(),
                Operation::Aggregate { agg, msg } => {
                    format!("agg:{}:{}", agg_token(agg), msg_token(msg))
                }
                Operation::Combine { dim } => format!("combine:{dim}"),
                Operation::Connect(ConnectFn::Skip) => "skip".to_string(),
                Operation::Connect(ConnectFn::Identity) => "id".to_string(),
            })
            .collect();
        format!(
            "k={} classes={} | {}",
            self.k,
            self.classes,
            ops.join(" > ")
        )
    }
}

impl FromStr for Architecture {
    type Err = ParseArchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (head, body) = s
            .split_once('|')
            .ok_or_else(|| ParseArchError::new("missing `|` separator"))?;
        let mut k = None;
        let mut classes = None;
        for field in head.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| ParseArchError::new(format!("bad header field `{field}`")))?;
            let parsed: usize = value
                .parse()
                .map_err(|_| ParseArchError::new(format!("bad number `{value}`")))?;
            match key {
                "k" => k = Some(parsed),
                "classes" => classes = Some(parsed),
                other => return Err(ParseArchError::new(format!("unknown header key `{other}`"))),
            }
        }
        let k = k.ok_or_else(|| ParseArchError::new("missing k="))?;
        let classes = classes.ok_or_else(|| ParseArchError::new("missing classes="))?;
        if k == 0 || classes == 0 {
            return Err(ParseArchError::new("k and classes must be positive"));
        }

        let mut ops = Vec::new();
        for token in body.split('>').map(str::trim).filter(|t| !t.is_empty()) {
            let mut parts = token.split(':');
            let kind = parts.next().unwrap();
            let op = match kind {
                "knn" => Operation::Sample(SampleFn::Knn),
                "rand" => Operation::Sample(SampleFn::Random),
                "skip" => Operation::Connect(ConnectFn::Skip),
                "id" => Operation::Connect(ConnectFn::Identity),
                "combine" => {
                    let dim: usize = parts
                        .next()
                        .ok_or_else(|| ParseArchError::new("combine needs a width"))?
                        .parse()
                        .map_err(|_| ParseArchError::new("bad combine width"))?;
                    if dim == 0 {
                        return Err(ParseArchError::new("combine width must be positive"));
                    }
                    Operation::Combine { dim }
                }
                "agg" => {
                    let agg = parse_agg(
                        parts
                            .next()
                            .ok_or_else(|| ParseArchError::new("agg needs an aggregator"))?,
                    )?;
                    let msg = parse_msg(
                        parts
                            .next()
                            .ok_or_else(|| ParseArchError::new("agg needs a message type"))?,
                    )?;
                    Operation::Aggregate { agg, msg }
                }
                other => return Err(ParseArchError::new(format!("unknown op `{other}`"))),
            };
            if parts.next().is_some() {
                return Err(ParseArchError::new(format!("trailing fields in `{token}`")));
            }
            ops.push(op);
        }
        if ops.is_empty() {
            return Err(ParseArchError::new("architecture has no operations"));
        }
        Ok(Architecture::new(ops, k, classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trips_a_known_string() {
        let s = "k=20 classes=40 | knn > combine:64 > agg:max:target_rel > skip";
        let a: Architecture = s.parse().unwrap();
        assert_eq!(a.k, 20);
        assert_eq!(a.classes, 40);
        assert_eq!(a.len(), 4);
        assert_eq!(a.to_compact_string(), s);
    }

    #[test]
    fn round_trips_random_architectures() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let a = Architecture::random(&mut rng, 10, 16, 12);
            let s = a.to_compact_string();
            let b: Architecture = s.parse().unwrap();
            assert_eq!(a, b, "{s}");
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "k=20 classes=40 |",
            "k=20 | knn",
            "k=20 classes=40 | warp",
            "k=20 classes=40 | combine",
            "k=20 classes=40 | agg:max",
            "k=20 classes=40 | agg:max:nowhere",
            "k=0 classes=40 | knn",
            "k=20 classes=40 | combine:0",
            "k=20 classes=40 | knn:extra",
        ] {
            assert!(bad.parse::<Architecture>().is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = "k=20 classes=40 | warp"
            .parse::<Architecture>()
            .unwrap_err();
        assert!(err.to_string().contains("warp"));
    }
}
