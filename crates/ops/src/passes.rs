//! Architecture canonicalisation passes.
//!
//! The paper (Fig. 10 caption) notes that "adjacent KNN operations will be
//! merged during execution due to duplicate graph construction" — two graph
//! builds with no feature change between them produce identical graphs, so
//! only the last is kept. These passes implement that plus the obvious
//! companions (identity removal, dead trailing samples).

use crate::ir::{Architecture, ConnectFn, OpType, Operation};

/// Merges consecutive sample operations (no feature-changing op between
/// them): the graph from the earlier build is immediately overwritten, so
/// only the last survives. Also drops samples whose graph is never consumed
/// by a later aggregate.
pub fn merge_adjacent_samples(arch: &Architecture) -> Architecture {
    let mut ops: Vec<Operation> = Vec::with_capacity(arch.ops.len());
    for &op in &arch.ops {
        if op.op_type() == OpType::Sample {
            // Connect(Identity) between two samples changes nothing either.
            while let Some(&last) = ops.last() {
                match last {
                    Operation::Sample(_) | Operation::Connect(ConnectFn::Identity) => {
                        if last.op_type() == OpType::Sample {
                            ops.pop();
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
        ops.push(op);
    }
    // Dead-sample elimination: a sample with no aggregate after it is never
    // consumed.
    let mut keep = vec![true; ops.len()];
    let mut consumer_seen = false;
    for (i, op) in ops.iter().enumerate().rev() {
        match op.op_type() {
            OpType::Aggregate => consumer_seen = true,
            OpType::Sample => {
                if !consumer_seen {
                    keep[i] = false;
                }
                consumer_seen = false;
            }
            _ => {}
        }
    }
    // Re-scan: a sample is live if *any* aggregate occurs before the next
    // sample; the loop above cleared `consumer_seen` per sample, which is
    // exactly that.
    let merged: Vec<Operation> = ops
        .into_iter()
        .zip(keep)
        .filter_map(|(o, k)| k.then_some(o))
        .collect();
    if merged.is_empty() {
        // Never return an empty architecture; keep the original single op.
        return arch.clone();
    }
    Architecture::new(merged, arch.k, arch.classes)
}

/// Removes `Connect(Identity)` no-ops (used for Fig. 10-style display).
pub fn strip_identity(arch: &Architecture) -> Architecture {
    let ops: Vec<Operation> = arch
        .ops
        .iter()
        .copied()
        .filter(|o| !matches!(o, Operation::Connect(ConnectFn::Identity)))
        .collect();
    if ops.is_empty() {
        return arch.clone();
    }
    Architecture::new(ops, arch.k, arch.classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Aggregator, MessageType, SampleFn};

    fn agg() -> Operation {
        Operation::Aggregate {
            agg: Aggregator::Max,
            msg: MessageType::TargetRel,
        }
    }

    #[test]
    fn adjacent_knns_merge_to_one() {
        let a = Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                Operation::Sample(SampleFn::Knn),
                agg(),
            ],
            10,
            4,
        );
        let m = merge_adjacent_samples(&a);
        assert_eq!(m.count(OpType::Sample), 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dead_trailing_sample_removed() {
        let a = Architecture::new(vec![agg(), Operation::Sample(SampleFn::Knn)], 10, 4);
        let m = merge_adjacent_samples(&a);
        assert_eq!(m.count(OpType::Sample), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn separated_samples_survive() {
        let a = Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                agg(),
                Operation::Sample(SampleFn::Knn),
                agg(),
            ],
            10,
            4,
        );
        let m = merge_adjacent_samples(&a);
        assert_eq!(m.count(OpType::Sample), 2);
    }

    #[test]
    fn identity_stripped() {
        let a = Architecture::new(
            vec![
                Operation::Connect(ConnectFn::Identity),
                agg(),
                Operation::Connect(ConnectFn::Identity),
            ],
            10,
            4,
        );
        let s = strip_identity(&a);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_preserves_semantics_dims() {
        let a = Architecture::new(
            vec![
                Operation::Sample(SampleFn::Knn),
                Operation::Sample(SampleFn::Random),
                agg(),
                Operation::Combine { dim: 32 },
            ],
            10,
            4,
        );
        let m = merge_adjacent_samples(&a);
        assert_eq!(m.out_dim(3), a.out_dim(3));
        // The surviving sample is the *last* one (Random).
        assert_eq!(m.ops[0], Operation::Sample(SampleFn::Random));
    }
}
