//! Lowering architectures and EdgeConv models to device workloads.
//!
//! The lowering mirrors the executor step for step, emitting one
//! [`WorkloadOp`] per kernel a PyG-style runtime would launch, and computes
//! an exact liveness plan (which buffers coexist) so the device simulator's
//! peak-memory model is faithful — this is what reproduces the Raspberry Pi
//! OOM cliff in Fig. 1.

use crate::baselines::DgcnnConfig;
use crate::ir::{Architecture, ConnectFn, Operation, SampleFn};
use hgnas_device::{Workload, WorkloadOp};

/// Experiment scale shared across harnesses: `Paper` reproduces the paper's
/// hyperparameters, `Small` runs the same code paths in seconds on a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelScale {
    /// Paper-scale: 1024 points, k=20, full widths.
    Paper,
    /// Reduced-scale default for the runnable harnesses.
    #[default]
    Small,
}

impl ModelScale {
    /// Points per cloud.
    pub fn points(self) -> usize {
        match self {
            ModelScale::Paper => 1024,
            ModelScale::Small => 128,
        }
    }

    /// Neighbour fanout.
    pub fn k(self) -> usize {
        match self {
            ModelScale::Paper => 20,
            ModelScale::Small => 10,
        }
    }

    /// Classifier hidden widths.
    pub fn head_hidden(self) -> Vec<usize> {
        match self {
            ModelScale::Paper => vec![128],
            ModelScale::Small => vec![48],
        }
    }

    /// DGCNN configuration at this scale.
    pub fn dgcnn_config(self, classes: usize) -> DgcnnConfig {
        match self {
            ModelScale::Paper => DgcnnConfig::paper(classes),
            ModelScale::Small => DgcnnConfig::small(classes),
        }
    }
}

/// Tracks live buffer bytes while emitting ops.
#[derive(Debug, Default)]
struct Liveness {
    /// Current node-feature tensor bytes.
    h: f64,
    /// Skip register bytes held across ops.
    skip: f64,
    /// Other buffers held to the end (e.g. per-layer outputs kept for a
    /// final concat).
    held: f64,
    peak: f64,
}

impl Liveness {
    fn observe(&mut self, transient: f64) {
        let live = self.h + self.skip + self.held + transient;
        if live > self.peak {
            self.peak = live;
        }
    }
}

fn fbytes(rows: usize, cols: usize) -> f64 {
    (rows * cols * 4) as f64
}

impl Architecture {
    /// Lowers this architecture to a device workload for single-cloud
    /// inference over `n` points, including the pooled classifier head with
    /// the given hidden widths.
    ///
    /// # Panics
    ///
    /// Panics if `n <= k`.
    pub fn lower(&self, n: usize, head_hidden: &[usize]) -> Workload {
        assert!(n > self.k, "need more points than k");
        let mut w = Workload::new();
        let mut live = Liveness {
            h: fbytes(n, 3),
            ..Default::default()
        };
        let mut params = 0f64;
        let mut cur = 3usize;
        let mut skip_dim = 3usize;
        let mut have_graph = false;
        let k = self.k;

        let emit_knn = |w: &mut Workload, live: &mut Liveness, c: usize, name: &str| {
            let op = WorkloadOp::knn(name, n, k, c);
            live.observe(op.workspace_bytes + op.output_bytes);
            w.push(op);
        };

        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                Operation::Sample(SampleFn::Knn) => {
                    emit_knn(&mut w, &mut live, cur, &format!("knn@{i}"));
                    have_graph = true;
                }
                Operation::Sample(SampleFn::Random) => {
                    let op = WorkloadOp::random_sample(&format!("rand@{i}"), n, k);
                    live.observe(op.output_bytes);
                    w.push(op);
                    have_graph = true;
                }
                Operation::Aggregate { msg, .. } => {
                    if !have_graph {
                        emit_knn(&mut w, &mut live, 3, &format!("knn-implicit@{i}"));
                        have_graph = true;
                    }
                    // No edge MLP in the fine-grained IR, so the aggregate
                    // executes as one fused scatter kernel — no edge-tensor
                    // materialisation (unlike DGCNN's lowering below).
                    let c_msg = msg.width(cur);
                    let op =
                        WorkloadOp::fused_aggregate(&format!("aggregate@{i}"), n, k, cur, c_msg);
                    live.observe(op.output_bytes);
                    w.push(op);
                    cur = c_msg;
                    live.h = fbytes(n, cur);
                }
                Operation::Combine { dim } => {
                    let lin = WorkloadOp::linear(&format!("combine@{i}"), n, cur, dim);
                    live.observe(lin.output_bytes);
                    w.push(lin);
                    w.push(WorkloadOp::elementwise(&format!("relu@{i}"), n, dim));
                    params += (cur * dim + dim) as f64;
                    cur = dim;
                    live.h = fbytes(n, cur);
                }
                Operation::Connect(ConnectFn::Identity) => {}
                Operation::Connect(ConnectFn::Skip) => {
                    let merged = if cur == skip_dim { cur } else { cur + skip_dim };
                    let op = WorkloadOp::elementwise(&format!("skip@{i}"), n, merged);
                    live.observe(op.output_bytes);
                    w.push(op);
                    cur = merged;
                    skip_dim = merged;
                    live.h = fbytes(n, cur);
                    live.skip = fbytes(n, skip_dim);
                }
            }
        }

        // Head: max+mean pooling, then the classifier MLP on the pooled row.
        w.push(WorkloadOp::global_pool("pool-max", n, cur));
        w.push(WorkloadOp::global_pool("pool-mean", n, cur));
        let mut hc = 2 * cur;
        for (j, &hd) in head_hidden.iter().enumerate() {
            w.push(WorkloadOp::linear(&format!("head{j}"), 1, hc, hd));
            params += (hc * hd + hd) as f64;
            hc = hd;
        }
        w.push(WorkloadOp::linear("head-out", 1, hc, self.classes));
        params += (hc * self.classes + self.classes) as f64;

        w.peak_live_bytes = live.peak;
        w.param_bytes = params * 4.0;
        w
    }
}

/// Lowers an EdgeConv (DGCNN-family) configuration to a workload for
/// single-cloud inference over `n` points.
///
/// # Panics
///
/// Panics if `n <= cfg.k`.
pub fn lower_edgeconv(cfg: &DgcnnConfig, n: usize) -> Workload {
    assert!(n > cfg.k, "need more points than k");
    let mut w = Workload::new();
    let k = cfg.k;
    let mut live = Liveness {
        h: fbytes(n, 3),
        ..Default::default()
    };
    let mut params = 0f64;

    for (li, &(ci, co)) in cfg.layer_dims.iter().enumerate() {
        let rebuild = li == 0 || (cfg.dynamic && li < cfg.reuse_after);
        if rebuild {
            let op = WorkloadOp::knn(&format!("knn{li}"), n, k, ci);
            live.observe(op.workspace_bytes + op.output_bytes);
            w.push(op);
        }
        let gather = WorkloadOp::gather(&format!("gather{li}"), n, k, 2 * ci);
        live.observe(gather.output_bytes);
        w.push(gather);
        let lin = WorkloadOp::linear(&format!("edge-mlp{li}"), n * k, 2 * ci, co);
        live.observe(fbytes(n * k, 2 * ci) + lin.output_bytes);
        w.push(lin);
        w.push(WorkloadOp::elementwise(&format!("relu{li}"), n * k, co));
        let reduce = WorkloadOp::reduce(&format!("max{li}"), n, k, co);
        live.observe(fbytes(n * k, co) + reduce.output_bytes);
        w.push(reduce);
        params += (2 * ci * co + co) as f64;
        // Layer output held until the final concat.
        live.held += fbytes(n, co);
        live.h = 0.0;
    }

    let cat: usize = cfg.layer_dims.iter().map(|&(_, co)| co).sum();
    w.push(WorkloadOp::elementwise("concat", n, cat));
    let emb = WorkloadOp::linear("embedding", n, cat, cfg.emb_dim);
    live.observe(fbytes(n, cat) + emb.output_bytes);
    w.push(emb);
    w.push(WorkloadOp::elementwise("emb-relu", n, cfg.emb_dim));
    params += (cat * cfg.emb_dim + cfg.emb_dim) as f64;
    w.push(WorkloadOp::global_pool("pool-max", n, cfg.emb_dim));
    w.push(WorkloadOp::global_pool("pool-mean", n, cfg.emb_dim));
    let mut hc = 2 * cfg.emb_dim;
    for (j, &hd) in cfg.head_hidden.iter().enumerate() {
        w.push(WorkloadOp::linear(&format!("head{j}"), 1, hc, hd));
        params += (hc * hd + hd) as f64;
        hc = hd;
    }
    w.push(WorkloadOp::linear("head-out", 1, hc, cfg.classes));
    params += (hc * cfg.classes + cfg.classes) as f64;

    w.peak_live_bytes = live.peak;
    w.param_bytes = params * 4.0;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::tailor_baseline;
    use hgnas_device::{DeviceKind, OpClass, PersonaRegistry};

    #[test]
    fn dgcnn_lowering_has_four_knn() {
        let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
        let knns = w.ops.iter().filter(|o| o.name.starts_with("knn")).count();
        assert_eq!(knns, 4);
    }

    #[test]
    fn knn_reuse_lowering_has_one_knn() {
        let mut cfg = DgcnnConfig::paper(40);
        cfg.dynamic = false;
        cfg.reuse_after = 1;
        let w = lower_edgeconv(&cfg, 1024);
        let knns = w.ops.iter().filter(|o| o.name.starts_with("knn")).count();
        assert_eq!(knns, 1);
    }

    #[test]
    fn dgcnn_param_bytes_near_paper_size() {
        let w = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
        let mb = w.param_bytes / (1024.0 * 1024.0);
        assert!((1.2..2.6).contains(&mb), "params {mb} MB");
    }

    #[test]
    fn tailor_arch_faster_than_dgcnn_everywhere() {
        let dg = lower_edgeconv(&DgcnnConfig::paper(40), 1024);
        let ta = tailor_baseline(true, 20, 40).lower(1024, &[128]);
        for persona in PersonaRegistry::builtin().edge_targets() {
            let p = &persona.profile;
            assert!(
                p.execute(&ta).latency_ms < p.execute(&dg).latency_ms,
                "{}",
                persona.name
            );
        }
    }

    #[test]
    fn implicit_knn_emitted_for_bare_aggregate() {
        use crate::ir::{Aggregator, MessageType, Operation};
        let a = Architecture::new(
            vec![Operation::Aggregate {
                agg: Aggregator::Max,
                msg: MessageType::RelPos,
            }],
            10,
            4,
        );
        let w = a.lower(128, &[16]);
        assert!(w.ops.iter().any(|o| o.class == OpClass::Sample));
    }

    #[test]
    fn random_sampling_cheaper_than_knn() {
        use crate::ir::{Aggregator, MessageType, Operation};
        let mk = |s: SampleFn| {
            Architecture::new(
                vec![
                    Operation::Sample(s),
                    Operation::Aggregate {
                        agg: Aggregator::Max,
                        msg: MessageType::TargetRel,
                    },
                    Operation::Combine { dim: 64 },
                ],
                20,
                40,
            )
        };
        let p = DeviceKind::Rtx3080.profile();
        let knn = p.execute(&mk(SampleFn::Knn).lower(1024, &[128])).latency_ms;
        let rnd = p
            .execute(&mk(SampleFn::Random).lower(1024, &[128]))
            .latency_ms;
        assert!(rnd < knn, "random {rnd} !< knn {knn}");
    }

    #[test]
    fn peak_memory_grows_with_points() {
        let cfg = DgcnnConfig::paper(40);
        let small = lower_edgeconv(&cfg, 512).peak_live_bytes;
        let big = lower_edgeconv(&cfg, 2048).peak_live_bytes;
        assert!(big > 2.0 * small);
    }
}
