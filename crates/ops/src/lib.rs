//! The fine-grained GNN operation IR at the heart of HGNAS.
//!
//! The paper's key design move (Motivation ①) is to *decouple* the GNN
//! message-passing paradigm: instead of stacking monolithic layers, an
//! architecture is a free sequence of basic operations placed at positions —
//! [`Operation::Sample`] (KNN / random graph construction),
//! [`Operation::Aggregate`] (message construction + neighbour reduction with
//! a chosen message type and aggregator), [`Operation::Combine`] (per-node
//! dense transform), and [`Operation::Connect`] (identity / skip) — exactly
//! the choices of the paper's Table I.
//!
//! This crate provides:
//!
//! - the IR itself ([`Architecture`], [`Operation`], [`FunctionSet`]) with
//!   dimension tracing and display (Fig. 10-style pipelines);
//! - a trainable executor ([`GnnModel`]) over `hgnas-autograd`;
//! - the EdgeConv family ([`EdgeConvModel`]) used by the DGCNN baseline and
//!   the manual-optimisation baselines \[6\]/\[7\];
//! - lowering of both to `hgnas-device` [`hgnas_device::Workload`]s;
//! - the KNN-merge pass the paper applies before visualising found models;
//! - a shared training/evaluation loop ([`train::fit`], [`train::evaluate`]).

mod baselines;
mod edgeconv;
mod ir;
mod lowering;
mod model;
mod passes;
mod serial;
pub mod train;

pub use baselines::{dgcnn, dgcnn_paper, knn_reuse_baseline, tailor_baseline, DgcnnConfig};
pub use edgeconv::EdgeConvModel;
pub use ir::{
    Aggregator, Architecture, ConnectFn, FunctionSet, MessageType, OpType, Operation, SampleFn,
    COMBINE_DIMS,
};
pub use lowering::{lower_edgeconv, ModelScale};
pub use model::GnnModel;
pub use passes::{merge_adjacent_samples, strip_identity};
pub use serial::ParseArchError;
