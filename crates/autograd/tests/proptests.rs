//! Property-based gradient checks: every differentiable op agrees with its
//! finite-difference estimate on random inputs.

use hgnas_autograd::{Reduction, Tape};
use hgnas_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check(input: &Tensor, tol: f32, build: impl Fn(&mut Tape, &Tensor) -> hgnas_autograd::Var) {
    hgnas_autograd::assert_grad_close(input, 1e-2, tol, build);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_tanh_mean_grad(seed in 0u64..500, m in 2usize..5, k in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&mut rng, &[m, k], 1.0);
        let w = Tensor::randn(&mut rng, &[k, 3], 0.5);
        check(&x, 3e-2, move |tape, t| {
            let v = tape.param(t.clone());
            let wv = tape.input(w.clone());
            let y = tape.matmul(v, wv);
            let a = tape.tanh(y);
            tape.mean_all(a)
        });
    }

    #[test]
    fn leaky_relu_scale_grad(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep inputs away from the kink at 0 where central differences
        // straddle the nondifferentiable point.
        let x = Tensor::randn(&mut rng, &[3, 4], 1.0)
            .map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        check(&x, 2e-2, |tape, t| {
            let v = tape.param(t.clone());
            let y = tape.leaky_relu(v, 0.1);
            let s = tape.scale(y, 1.7);
            tape.sum_all(s)
        });
    }

    #[test]
    fn message_passing_grad(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&mut rng, &[5, 3], 1.0);
        let idx: Vec<usize> = (0..10).map(|i| (i * 3 + seed as usize) % 5).collect();
        check(&x, 4e-2, move |tape, t| {
            let v = tape.param(t.clone());
            let nbr = tape.gather_rows(v, &idx);
            let ctr = tape.repeat_rows(v, 2);
            let rel = tape.sub(nbr, ctr);
            let msg = tape.concat_cols(&[ctr, rel]);
            let agg = tape.reduce_mid(msg, 2, Reduction::Mean);
            let pooled = tape.segment_pool(agg, &[5], Reduction::Sum);
            tape.mean_all(pooled)
        });
    }

    #[test]
    fn losses_grad(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep predictions away from targets so MAPE's |.| kink (where the
        // subgradient is ambiguous) is not sampled.
        let x = Tensor::rand_uniform(&mut rng, &[4, 1], 2.0, 5.0);
        check(&x, 2e-2, |tape, t| {
            let v = tape.param(t.clone());
            tape.mape_loss(v, &[1.0, 1.0, 1.0, 1.0])
        });
        let y = Tensor::rand_uniform(&mut rng, &[4, 1], -3.0, 3.0);
        check(&y, 2e-2, |tape, t| {
            let v = tape.param(t.clone());
            tape.mse_loss(v, &[0.5, -0.5, 0.0, 1.0])
        });
    }

    #[test]
    fn softmax_ce_grad(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&mut rng, &[3, 4], 1.0);
        let labels: Vec<usize> = (0..3).map(|i| (i + seed as usize) % 4).collect();
        check(&x, 2e-2, move |tape, t| {
            let v = tape.param(t.clone());
            tape.softmax_cross_entropy(v, &labels)
        });
    }

    #[test]
    fn segment_pool_max_grad(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&mut rng, &[6, 2], 1.0);
        check(&x, 3e-2, |tape, t| {
            let v = tape.param(t.clone());
            let p = tape.segment_pool(v, &[4, 2], Reduction::Max);
            tape.sum_all(p)
        });
    }
}
