//! The autograd tape: forward op recording and reverse-mode gradient flow.

use hgnas_tensor::kernels::{
    concat_cols, fold_rows, gather_rows, repeat_rows, row_norms, scatter_add_rows, split_cols,
};
use hgnas_tensor::reduce::{reduce_mid_axis, segment_reduce_rows, Reduction};
use hgnas_tensor::{simd, Tensor};

/// Handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap copyable index; it is only meaningful for the tape that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Reconstructs a var from a raw tape index (crate-internal; used by the
    /// gradient checker to scan a tape's leaves).
    pub(crate) fn from_index(i: usize) -> Var {
        Var(i)
    }
}

/// Epsilon guarding divisions in norm and MAPE backward passes.
const EPS: f32 = 1e-8;

/// The recorded operation for one tape node, including everything the
/// backward pass needs.
enum Op {
    /// Leaf: an input or parameter.
    Leaf,
    /// `a @ b`.
    Matmul(Var, Var),
    /// `x + bias_row` (bias broadcast over rows).
    AddBias(Var, Var),
    /// `a + b`, same shape.
    Add(Var, Var),
    /// `a - b`, same shape.
    Sub(Var, Var),
    /// `a ∘ b`, same shape.
    Mul(Var, Var),
    /// `x * s`.
    Scale(Var, f32),
    /// `relu(x)` with saved input sign mask handled via value lookup.
    Relu(Var),
    /// `leaky_relu(x, slope)`.
    LeakyRelu(Var, f32),
    /// `tanh(x)` — backward uses the saved output.
    Tanh(Var),
    /// Row gather: `out[i] = x[idx[i]]`.
    Gather(Var, Vec<usize>),
    /// Row repeat: each row duplicated `k` times.
    Repeat(Var, usize),
    /// Column concat of several vars with saved widths.
    Concat(Vec<Var>, Vec<usize>),
    /// `[n*k, c]` viewed as `[n,k,c]`, reduced over `k`; saves winner args
    /// for max/min.
    ReduceMid {
        x: Var,
        k: usize,
        how: Reduction,
        args: Vec<usize>,
    },
    /// Segment pooling over rows with saved segment offsets and winner args.
    SegmentPool {
        x: Var,
        segments: Vec<usize>,
        how: Reduction,
        args: Vec<usize>,
    },
    /// Per-row L2 norm `[n,c] -> [n,1]`.
    RowNorms(Var),
    /// Mean of all elements -> scalar.
    MeanAll(Var),
    /// Sum of all elements -> scalar.
    SumAll(Var),
    /// Mean softmax cross-entropy against integer labels; saves softmax.
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Vec<usize>,
        softmax: Tensor,
    },
    /// Mean absolute percentage error against constant targets.
    MapeLoss { pred: Var, target: Vec<f32> },
    /// Mean squared error against constant targets.
    MseLoss { pred: Var, target: Vec<f32> },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    requires_grad: bool,
}

/// A define-by-run autograd tape.
///
/// Values are recorded in topological order as ops execute, so the backward
/// pass is a single reverse sweep. See the crate docs for a usage example.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Records a constant input (no gradient tracked).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a trainable parameter (gradient tracked).
    pub fn param(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Returns the forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Returns the gradient of `v` if it was computed by [`Tape::backward`].
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    // ---- forward ops -----------------------------------------------------

    /// Matrix product (2-D × 2-D).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Matmul(a, b), rg)
    }

    /// Adds a 1-D bias row to every row of a 2-D tensor.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let value = self.value(x).add(self.value(bias));
        let rg = self.requires(x) || self.requires(bias);
        self.push(value, Op::AddBias(x, bias), rg)
    }

    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ (the broadcast form is [`Tape::add_bias`]).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "add requires same shapes"
        );
        let value = self.value(a).add(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Elementwise difference of two same-shaped tensors.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Elementwise product of two same-shaped tensors.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Mul(a, b), rg)
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let value = self.value(x).scale(s);
        let rg = self.requires(x);
        self.push(value, Op::Scale(x, s), rg)
    }

    /// Rectified linear unit (lane-kernel forward; anything not strictly
    /// positive — NaN included — maps to `+0.0`, matching the backward mask).
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).relu();
        let rg = self.requires(x);
        self.push(value, Op::Relu(x), rg)
    }

    /// Leaky ReLU with the given negative slope (lane-kernel forward).
    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        let value = self.value(x).leaky_relu(slope);
        let rg = self.requires(x);
        self.push(value, Op::LeakyRelu(x, slope), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::tanh);
        let rg = self.requires(x);
        self.push(value, Op::Tanh(x), rg)
    }

    /// Gathers rows by index: `out[i] = x[idx[i]]`.
    pub fn gather_rows(&mut self, x: Var, idx: &[usize]) -> Var {
        let value = gather_rows(self.value(x), idx);
        let rg = self.requires(x);
        self.push(value, Op::Gather(x, idx.to_vec()), rg)
    }

    /// Repeats each row `k` times consecutively.
    pub fn repeat_rows(&mut self, x: Var, k: usize) -> Var {
        let value = repeat_rows(self.value(x), k);
        let rg = self.requires(x);
        self.push(value, Op::Repeat(x, k), rg)
    }

    /// Concatenates 2-D tensors along columns.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let widths: Vec<usize> = tensors.iter().map(|t| t.dims()[1]).collect();
        let value = concat_cols(&tensors);
        let rg = parts.iter().any(|&p| self.requires(p));
        self.push(value, Op::Concat(parts.to_vec(), widths), rg)
    }

    /// Views `[n*k, c]` as `[n, k, c]` and reduces over the `k` axis,
    /// producing `[n, c]`. This is neighbour aggregation with a fixed fanout.
    ///
    /// # Panics
    ///
    /// Panics if the row count of `x` is not a multiple of `k`.
    pub fn reduce_mid(&mut self, x: Var, k: usize, how: Reduction) -> Var {
        let t = self.value(x);
        let rows = t.dims()[0];
        assert!(
            k > 0 && rows.is_multiple_of(k),
            "reduce_mid: {rows} rows not divisible by k={k}"
        );
        let c = t.dims()[1];
        let viewed = t.reshape(&[rows / k, k, c]);
        let r = reduce_mid_axis(&viewed, how);
        let rg = self.requires(x);
        self.push(
            r.values,
            Op::ReduceMid {
                x,
                k,
                how,
                args: r.args,
            },
            rg,
        )
    }

    /// Pools rows per contiguous segment (e.g. one segment per point cloud in
    /// a batch), producing `[segments.len(), c]`.
    pub fn segment_pool(&mut self, x: Var, segments: &[usize], how: Reduction) -> Var {
        let r = segment_reduce_rows(self.value(x), segments, how);
        let rg = self.requires(x);
        self.push(
            r.values,
            Op::SegmentPool {
                x,
                segments: segments.to_vec(),
                how,
                args: r.args,
            },
            rg,
        )
    }

    /// Per-row Euclidean norm `[n,c] -> [n,1]`.
    pub fn row_norms(&mut self, x: Var) -> Var {
        let value = row_norms(self.value(x));
        let rg = self.requires(x);
        self.push(value, Op::RowNorms(x), rg)
    }

    /// Mean over all elements, producing a scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = Tensor::scalar(self.value(x).mean());
        let rg = self.requires(x);
        self.push(value, Op::MeanAll(x), rg)
    }

    /// Sum over all elements, producing a scalar.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = Tensor::scalar(self.value(x).sum());
        let rg = self.requires(x);
        self.push(value, Op::SumAll(x), rg)
    }

    /// Mean softmax cross-entropy of `[n, classes]` logits against integer
    /// labels; returns a scalar loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the logit row count or a label
    /// is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let t = self.value(logits);
        assert_eq!(t.shape().rank(), 2, "logits must be [n, classes]");
        let (n, c) = (t.dims()[0], t.dims()[1]);
        assert_eq!(labels.len(), n, "label count must match logit rows");
        let d = t.data();
        let mut softmax = vec![0.0f32; n * c];
        let mut loss = 0.0f32;
        for i in 0..n {
            assert!(
                labels[i] < c,
                "label {} out of range for {c} classes",
                labels[i]
            );
            let row = &d[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|v| (v - m).exp()).collect();
            let z: f32 = exps.iter().sum();
            for j in 0..c {
                softmax[i * c + j] = exps[j] / z;
            }
            loss -= (softmax[i * c + labels[i]] + EPS).ln();
        }
        let value = Tensor::scalar(loss / n as f32);
        let rg = self.requires(logits);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits,
                labels: labels.to_vec(),
                softmax: Tensor::from_vec(softmax, &[n, c]),
            },
            rg,
        )
    }

    /// Mean absolute percentage error `mean(|p - t| / max(|t|, ε))` — the
    /// loss the paper trains its latency predictor with.
    ///
    /// # Panics
    ///
    /// Panics if the prediction element count differs from `target.len()`.
    pub fn mape_loss(&mut self, pred: Var, target: &[f32]) -> Var {
        let p = self.value(pred);
        assert_eq!(p.numel(), target.len(), "pred/target length mismatch");
        let loss: f32 = p
            .data()
            .iter()
            .zip(target)
            .map(|(&pi, &ti)| (pi - ti).abs() / ti.abs().max(EPS))
            .sum::<f32>()
            / target.len() as f32;
        let rg = self.requires(pred);
        self.push(
            Tensor::scalar(loss),
            Op::MapeLoss {
                pred,
                target: target.to_vec(),
            },
            rg,
        )
    }

    /// Mean squared error against constant targets.
    ///
    /// # Panics
    ///
    /// Panics if the prediction element count differs from `target.len()`.
    pub fn mse_loss(&mut self, pred: Var, target: &[f32]) -> Var {
        let p = self.value(pred);
        assert_eq!(p.numel(), target.len(), "pred/target length mismatch");
        let loss: f32 = p
            .data()
            .iter()
            .zip(target)
            .map(|(&pi, &ti)| (pi - ti) * (pi - ti))
            .sum::<f32>()
            / target.len() as f32;
        let rg = self.requires(pred);
        self.push(
            Tensor::scalar(loss),
            Op::MseLoss {
                pred,
                target: target.to_vec(),
            },
            rg,
        )
    }

    // ---- backward --------------------------------------------------------

    fn accumulate(&mut self, v: Var, g: Tensor) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            // In-place lane-kernel accumulate: elementwise `+` in the same
            // per-element order as the zip_map it replaced, minus the
            // intermediate allocation.
            Some(existing) => simd::add_assign(existing.data_mut(), g.data()),
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs the reverse sweep from `loss` (which must be scalar), populating
    /// gradients for every node with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (single-element) value.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Tensor::full(self.nodes[loss.0].value.dims(), 1.0));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(gout) = self.nodes[i].grad.clone() else {
                continue;
            };
            // Take op context by reference; clone the small bits we need.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = hgnas_tensor::matmul::matmul_bt(&gout, self.value(b));
                    let db = hgnas_tensor::matmul::matmul_at(self.value(a), &gout);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::AddBias(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    let cols = self.value(bias).dims()[0];
                    // Row-at-a-time lane accumulate: visits every element in
                    // the same order as the old `db[idx % cols] += g` loop, so
                    // the per-slot addition sequence is unchanged.
                    let mut db = vec![0.0f32; cols];
                    for row in gout.data().chunks_exact(cols) {
                        simd::add_assign(&mut db, row);
                    }
                    self.accumulate(x, gout.clone());
                    self.accumulate(bias, Tensor::from_vec(db, &[cols]));
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, gout.clone());
                    self.accumulate(b, gout);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, gout.clone());
                    self.accumulate(b, gout.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = gout.mul(self.value(b));
                    let db = gout.mul(self.value(a));
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Scale(x, s) => {
                    let (x, s) = (*x, *s);
                    self.accumulate(x, gout.scale(s));
                }
                Op::Relu(x) => {
                    let x = *x;
                    // Fused mask-multiply lane kernel — one pass instead of a
                    // mask tensor plus a Hadamard product, same g·{1,0} bits.
                    let mut dx = gout;
                    simd::relu_grad(dx.data_mut(), self.nodes[x.0].value.data());
                    self.accumulate(x, dx);
                }
                Op::LeakyRelu(x, slope) => {
                    let (x, slope) = (*x, *slope);
                    let mut dx = gout;
                    simd::leaky_relu_grad(dx.data_mut(), self.nodes[x.0].value.data(), slope);
                    self.accumulate(x, dx);
                }
                Op::Tanh(x) => {
                    let x = *x;
                    let y = &self.nodes[i].value;
                    let dx = gout.zip_map(y, |g, t| g * (1.0 - t * t));
                    self.accumulate(x, dx);
                }
                Op::Gather(x, idx) => {
                    let x = *x;
                    let n = self.value(x).dims()[0];
                    let idx = idx.clone();
                    let dx = scatter_add_rows(&gout, &idx, n);
                    self.accumulate(x, dx);
                }
                Op::Repeat(x, k) => {
                    let (x, k) = (*x, *k);
                    self.accumulate(x, fold_rows(&gout, k));
                }
                Op::Concat(parts, widths) => {
                    let parts = parts.clone();
                    let widths = widths.clone();
                    let grads = split_cols(&gout, &widths);
                    for (p, g) in parts.into_iter().zip(grads) {
                        self.accumulate(p, g);
                    }
                }
                Op::ReduceMid { x, k, how, args } => {
                    let (x, k, how) = (*x, *k, *how);
                    let args = args.clone();
                    let (n, c) = (gout.dims()[0], gout.dims()[1]);
                    let mut dx = vec![0.0f32; n * k * c];
                    match how {
                        // Sum broadcast is a straight row copy; Mean scales
                        // each row once (`g·inv`, same per-element bits as
                        // scaling on every duplicate) and then copies it.
                        Reduction::Sum => {
                            for (i2, row) in gout.data().chunks_exact(c).enumerate() {
                                for kk in 0..k {
                                    dx[(i2 * k + kk) * c..(i2 * k + kk + 1) * c]
                                        .copy_from_slice(row);
                                }
                            }
                        }
                        Reduction::Mean => {
                            let inv = 1.0 / k as f32;
                            let mut scaled = vec![0.0f32; c];
                            for (i2, row) in gout.data().chunks_exact(c).enumerate() {
                                scaled.copy_from_slice(row);
                                simd::scale(&mut scaled, inv);
                                for kk in 0..k {
                                    dx[(i2 * k + kk) * c..(i2 * k + kk + 1) * c]
                                        .copy_from_slice(&scaled);
                                }
                            }
                        }
                        Reduction::Max | Reduction::Min => {
                            for i2 in 0..n {
                                for j in 0..c {
                                    let kk = args[i2 * c + j];
                                    dx[(i2 * k + kk) * c + j] = gout.data()[i2 * c + j];
                                }
                            }
                        }
                    }
                    self.accumulate(x, Tensor::from_vec(dx, &[n * k, c]));
                }
                Op::SegmentPool {
                    x,
                    segments,
                    how,
                    args,
                } => {
                    let x = *x;
                    let how = *how;
                    let segments = segments.clone();
                    let args = args.clone();
                    let c = gout.dims()[1];
                    let total: usize = segments.iter().sum();
                    let mut dx = vec![0.0f32; total * c];
                    let mut row0 = 0usize;
                    let mut scaled = vec![0.0f32; c];
                    for (si, &len) in segments.iter().enumerate() {
                        match how {
                            // Sum broadcast copies the segment's row (the old
                            // `g · 1.0` multiply is a bitwise no-op for the
                            // quiet values gradients carry); Mean scales the
                            // row once on the lane layer, then copies it.
                            Reduction::Sum | Reduction::Mean => {
                                scaled.copy_from_slice(&gout.data()[si * c..(si + 1) * c]);
                                if how == Reduction::Mean {
                                    simd::scale(&mut scaled, 1.0 / len as f32);
                                }
                                for r in row0..row0 + len {
                                    dx[r * c..(r + 1) * c].copy_from_slice(&scaled);
                                }
                            }
                            Reduction::Max | Reduction::Min => {
                                for j in 0..c {
                                    let off = args[si * c + j];
                                    dx[(row0 + off) * c + j] = gout.data()[si * c + j];
                                }
                            }
                        }
                        row0 += len;
                    }
                    self.accumulate(x, Tensor::from_vec(dx, &[total, c]));
                }
                Op::RowNorms(x) => {
                    let x = *x;
                    let xt = self.value(x).clone();
                    let (n, c) = (xt.dims()[0], xt.dims()[1]);
                    let norms = &self.nodes[i].value;
                    let mut dx = vec![0.0f32; n * c];
                    for i2 in 0..n {
                        let nv = norms.data()[i2].max(EPS);
                        let g = gout.data()[i2];
                        for j in 0..c {
                            dx[i2 * c + j] = g * xt.data()[i2 * c + j] / nv;
                        }
                    }
                    self.accumulate(x, Tensor::from_vec(dx, &[n, c]));
                }
                Op::MeanAll(x) => {
                    let x = *x;
                    let n = self.value(x).numel() as f32;
                    let g = gout.item() / n;
                    let dx = Tensor::full(self.value(x).dims(), g);
                    self.accumulate(x, dx);
                }
                Op::SumAll(x) => {
                    let x = *x;
                    let dx = Tensor::full(self.value(x).dims(), gout.item());
                    self.accumulate(x, dx);
                }
                Op::SoftmaxCrossEntropy {
                    logits,
                    labels,
                    softmax,
                } => {
                    let logits = *logits;
                    let labels = labels.clone();
                    let mut dx = softmax.clone();
                    let (n, c) = (dx.dims()[0], dx.dims()[1]);
                    let scale = gout.item() / n as f32;
                    let d = dx.data_mut();
                    for (i2, &lab) in labels.iter().enumerate() {
                        d[i2 * c + lab] -= 1.0;
                    }
                    for v in d.iter_mut() {
                        *v *= scale;
                    }
                    self.accumulate(logits, dx);
                }
                Op::MapeLoss { pred, target } => {
                    let pred = *pred;
                    let target = target.clone();
                    let p = self.value(pred).clone();
                    let n = target.len() as f32;
                    let scale = gout.item() / n;
                    let data: Vec<f32> = p
                        .data()
                        .iter()
                        .zip(&target)
                        .map(|(&pi, &ti)| {
                            let s = if pi > ti {
                                1.0
                            } else if pi < ti {
                                -1.0
                            } else {
                                0.0
                            };
                            scale * s / ti.abs().max(EPS)
                        })
                        .collect();
                    self.accumulate(pred, Tensor::from_vec(data, p.dims()));
                }
                Op::MseLoss { pred, target } => {
                    let pred = *pred;
                    let target = target.clone();
                    let p = self.value(pred).clone();
                    let n = target.len() as f32;
                    let scale = 2.0 * gout.item() / n;
                    let data: Vec<f32> = p
                        .data()
                        .iter()
                        .zip(&target)
                        .map(|(&pi, &ti)| scale * (pi - ti))
                        .collect();
                    self.accumulate(pred, Tensor::from_vec(data, p.dims()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_chain_grads() {
        // loss = sum(A @ B); dA = 1 @ B^T, dB = A^T @ 1.
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.param(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(tape.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]));
        let y = tape.relu(x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(
            vec![2.0, -1.0, 0.5, 0.0, 0.0, 0.0],
            &[2, 3],
        ));
        let loss = tape.softmax_cross_entropy(x, &[0, 2]);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        let row0: f32 = g.data()[0..3].iter().sum();
        let row1: f32 = g.data()[3..6].iter().sum();
        assert!(row0.abs() < 1e-6 && row1.abs() < 1e-6);
        // Gradient at the true label is negative.
        assert!(g.data()[0] < 0.0);
        assert!(g.data()[5] < 0.0);
    }

    #[test]
    fn gather_routes_gradient() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let g = tape.gather_rows(x, &[1, 1, 0]);
        let loss = tape.sum_all(g);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn reduce_mid_max_routes_to_winner() {
        let mut tape = Tape::new();
        // n=1, k=2, c=2: rows [1,9] and [5,3]; max = [5,9].
        let x = tape.param(Tensor::from_vec(vec![1.0, 9.0, 5.0, 3.0], &[2, 2]));
        let r = tape.reduce_mid(x, 2, Reduction::Max);
        assert_eq!(tape.value(r).data(), &[5.0, 9.0]);
        let loss = tape.sum_all(r);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn mape_is_scale_invariant_at_value() {
        let mut tape = Tape::new();
        let p = tape.param(Tensor::from_vec(vec![110.0, 90.0], &[2, 1]));
        let loss = tape.mape_loss(p, &[100.0, 100.0]);
        assert!((tape.value(loss).item() - 0.1).abs() < 1e-6);
        tape.backward(loss);
        let g = tape.grad(p).unwrap();
        assert!(g.data()[0] > 0.0 && g.data()[1] < 0.0);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(vec![3.0], &[1, 1]));
        let y = tape.add(x, x); // y = 2x
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_backward_panics() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::zeros(&[2, 2]));
        tape.backward(x);
    }
}
