//! Finite-difference gradient checking.
//!
//! Used by this crate's tests and re-exported so higher layers (`hgnas-nn`,
//! `hgnas-ops`) can gradient-check their composite modules too.

use crate::{Tape, Var};
use hgnas_tensor::Tensor;

/// Estimates `d loss / d input` by central finite differences.
///
/// `build` must construct the loss from scratch on the provided tape given
/// the (perturbed) input tensor, returning the scalar loss var. The same
/// closure is used for the analytic pass by the caller, so any mismatch is a
/// genuine backward-pass bug.
///
/// # Example
///
/// ```
/// use hgnas_autograd::{numerical_gradient, Tape};
/// use hgnas_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]);
/// let num = numerical_gradient(&x, 1e-3, |tape, t| {
///     let v = tape.param(t.clone());
///     let y = tape.relu(v);
///     tape.sum_all(y)
/// });
/// assert!((num.data()[0] - 1.0).abs() < 1e-3);
/// assert!(num.data()[1].abs() < 1e-3);
/// ```
pub fn numerical_gradient<F>(input: &Tensor, eps: f32, build: F) -> Tensor
where
    F: Fn(&mut Tape, &Tensor) -> Var,
{
    let mut grad = Tensor::zeros(input.dims());
    for i in 0..input.numel() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;

        let mut tp = Tape::new();
        let lp = build(&mut tp, &plus);
        let mut tm = Tape::new();
        let lm = build(&mut tm, &minus);

        grad.data_mut()[i] = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
    }
    grad
}

/// Asserts that the analytic gradient produced by `build` matches its
/// finite-difference estimate within `tol` (absolute, elementwise).
///
/// # Panics
///
/// Panics with a description of the first mismatching element.
pub fn assert_grad_close<F>(input: &Tensor, eps: f32, tol: f32, build: F)
where
    F: Fn(&mut Tape, &Tensor) -> Var,
{
    let numeric = numerical_gradient(input, eps, &build);
    let mut tape = Tape::new();
    // Rebuild with the input registered as a param to extract the analytic grad.
    let loss = build(&mut tape, input);
    tape.backward(loss);
    // The first param pushed by `build` is by convention the checked input:
    // find the first leaf with a gradient.
    let analytic = (0..tape.len())
        .map(Var::from_index)
        .find_map(|v| tape.grad(v).cloned())
        .expect("build closure must register the input with tape.param");
    for i in 0..input.numel() {
        let (a, n) = (analytic.data()[i], numeric.data()[i]);
        assert!(
            (a - n).abs() <= tol,
            "gradient mismatch at flat index {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgnas_tensor::reduce::Reduction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_layer_grad_checks() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&mut rng, &[4, 3], 1.0);
        assert_grad_close(&x, 1e-2, 1e-2, |tape, t| {
            let v = tape.param(t.clone());
            let w = tape.input(Tensor::from_vec(
                (0..12).map(|i| 0.1 * i as f32).collect(),
                &[3, 4],
            ));
            let y = tape.matmul(v, w);
            let a = tape.tanh(y);
            tape.mean_all(a)
        });
    }

    #[test]
    fn message_passing_pipeline_grad_checks() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(&mut rng, &[4, 2], 1.0);
        let idx = vec![1usize, 2, 0, 3, 2, 1, 0, 0]; // 4 nodes * k=2 neighbours
        assert_grad_close(&x, 1e-2, 2e-2, move |tape, t| {
            let v = tape.param(t.clone());
            let nbr = tape.gather_rows(v, &idx);
            let ctr = tape.repeat_rows(v, 2);
            let rel = tape.sub(nbr, ctr);
            let msg = tape.concat_cols(&[ctr, rel]);
            let agg = tape.reduce_mid(msg, 2, Reduction::Max);
            let pooled = tape.segment_pool(agg, &[4], Reduction::Mean);
            tape.sum_all(pooled)
        });
    }

    #[test]
    fn mse_grad_checks() {
        let x = Tensor::from_vec(vec![0.5, 2.0, -1.0], &[3, 1]);
        assert_grad_close(&x, 1e-3, 1e-2, |tape, t| {
            let v = tape.param(t.clone());
            tape.mse_loss(v, &[1.0, 1.0, 1.0])
        });
    }
}
