//! Tape-based reverse-mode automatic differentiation for HGNAS.
//!
//! The HGNAS stack trains three kinds of models — the SPOS supernet, the
//! stand-alone searched architectures, and the GCN latency predictor — all of
//! which have *dynamic* structure (the supernet samples a random path every
//! step). A define-by-run tape is the natural fit: each training step builds
//! a fresh [`Tape`], runs the forward ops, calls [`Tape::backward`], and
//! reads gradients back out.
//!
//! The op set is exactly what graph message passing needs: dense matmul,
//! bias/elementwise arithmetic, activations, row gather/repeat/concat for
//! edge-feature construction, arg-tracked reductions for neighbour
//! aggregation and global pooling, and the two losses the paper uses
//! (softmax cross-entropy for classification, MAPE for the latency
//! predictor).
//!
//! # Example
//!
//! ```
//! use hgnas_autograd::Tape;
//! use hgnas_tensor::Tensor;
//!
//! let mut tape = Tape::new();
//! let x = tape.param(Tensor::from_vec(vec![2.0], &[1, 1]));
//! let y = tape.scale(x, 3.0);
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(x).unwrap().data(), &[3.0]);
//! ```

mod grad_check;
mod tape;

pub use grad_check::{assert_grad_close, numerical_gradient};
pub use hgnas_tensor::reduce::Reduction;
pub use tape::{Tape, Var};
