//! Inverted dropout as a tape op composition.
//!
//! The tape has no train/eval mode; dropout is applied explicitly by
//! training loops and simply omitted at evaluation time, which keeps the
//! inference graph identical to what the device lowering prices.

use hgnas_autograd::{Tape, Var};
use hgnas_tensor::Tensor;
use rand::Rng;

/// Applies inverted dropout with keep-scale `1/(1-p)` so the expected
/// activation is unchanged.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1)`.
pub fn dropout<R: Rng>(tape: &mut Tape, x: Var, p: f32, rng: &mut R) -> Var {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0, 1)"
    );
    if p == 0.0 {
        return x;
    }
    let dims = tape.value(x).dims().to_vec();
    let scale = 1.0 / (1.0 - p);
    let mask_data: Vec<f32> = (0..tape.value(x).numel())
        .map(|_| {
            if rng.gen_range(0.0f32..1.0) < p {
                0.0
            } else {
                scale
            }
        })
        .collect();
    let mask = tape.input(Tensor::from_vec(mask_data, &dims));
    tape.mul(x, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_is_identity() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[4, 4]));
        let mut rng = StdRng::seed_from_u64(1);
        let y = dropout(&mut tape, x, 0.0, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[100, 100]));
        let y = dropout(&mut tape, x, 0.3, &mut rng);
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gradient_flows_through_kept_units_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let x = tape.param(Tensor::ones(&[1, 64]));
        let y = dropout(&mut tape, x, 0.5, &mut rng);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        let zeros = g.data().iter().filter(|&&v| v == 0.0).count();
        let scaled = g.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + scaled, 64);
        assert!(zeros > 10 && scaled > 10, "zeros {zeros} scaled {scaled}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn p_one_rejected() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[2]));
        let mut rng = StdRng::seed_from_u64(4);
        dropout(&mut tape, x, 1.0, &mut rng);
    }
}
