//! Neural-network building blocks for HGNAS.
//!
//! Provides the layers the paper's models are assembled from — [`Linear`],
//! [`Mlp`] and [`GcnLayer`] — plus [`Param`]/[`Optimizer`] plumbing for the
//! tape-based autograd in `hgnas-autograd`, and the evaluation [`metrics`]
//! the paper reports (overall accuracy, balanced accuracy, MAPE,
//! error-bound accuracy).
//!
//! # Training-loop pattern
//!
//! Each step builds a fresh [`hgnas_autograd::Tape`]; layers *bind* their
//! parameters onto it during `forward`, and after `backward` the recorded
//! bindings route gradients back into the optimizer:
//!
//! ```
//! use hgnas_autograd::Tape;
//! use hgnas_nn::{Activation, Linear, Module, Optimizer};
//! use hgnas_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut layer = Linear::new(&mut rng, 4, 2);
//! let mut opt = Optimizer::adam(1e-2);
//! for _ in 0..10 {
//!     let mut tape = Tape::new();
//!     let x = tape.input(Tensor::ones(&[3, 4]));
//!     let y = layer.forward(&mut tape, x);
//!     let loss = tape.mse_loss(y, &[1.0; 6]);
//!     tape.backward(loss);
//!     layer.apply_updates(&tape, &mut opt);
//! }
//! ```

mod dropout;
mod layers;
pub mod metrics;
mod param;
mod schedule;

pub use dropout::dropout;
pub use layers::{Activation, GcnLayer, Linear, Mlp};
pub use param::{Module, Optimizer, Param};
pub use schedule::LrSchedule;
