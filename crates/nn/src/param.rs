//! Trainable parameters, optimizers and the module trait.

use hgnas_autograd::{Tape, Var};
use hgnas_tensor::{simd, Tensor};
use std::sync::Mutex;

/// A trainable tensor with per-parameter optimizer state.
///
/// `Param` remembers the [`Var`] it was last bound to on a tape, so a module
/// can apply gradient updates with no extra bookkeeping at the call site.
/// The binding lives behind a `Mutex` (bound once per forward pass, so the
/// cost is negligible) which keeps `Param` — and therefore whole models —
/// `Sync`, letting the parallel candidate evaluator share `&Supernet`
/// across scoring threads.
#[derive(Debug)]
pub struct Param {
    value: Tensor,
    /// First-moment estimate (Adam) or velocity (SGD momentum).
    m: Tensor,
    /// Second-moment estimate (Adam only).
    v: Tensor,
    /// Adam timestep.
    t: u32,
    bound: Mutex<Option<Var>>,
}

impl Param {
    /// Wraps an initial value as a trainable parameter.
    pub fn new(value: Tensor) -> Self {
        let m = Tensor::zeros(value.dims());
        let v = Tensor::zeros(value.dims());
        Param {
            value,
            m,
            v,
            t: 0,
            bound: Mutex::new(None),
        }
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Overwrites the value (used for re-initialisation), resetting
    /// optimizer state.
    pub fn set_value(&mut self, value: Tensor) {
        assert_eq!(value.dims(), self.value.dims(), "param shape is fixed");
        self.m = Tensor::zeros(value.dims());
        self.v = Tensor::zeros(value.dims());
        self.t = 0;
        self.value = value;
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Registers this parameter on `tape` and remembers the binding.
    pub fn bind(&self, tape: &mut Tape) -> Var {
        let var = tape.param(self.value.clone());
        *self.bound.lock().unwrap() = Some(var);
        var
    }

    /// Registers this parameter on `tape` as a plain input: no gradient is
    /// tracked and no binding is remembered. This is the inference path —
    /// it leaves the parameter untouched, so frozen forward passes are safe
    /// from many threads at once.
    pub fn bind_frozen(&self, tape: &mut Tape) -> Var {
        tape.input(self.value.clone())
    }

    /// Applies one optimizer step using the gradient recorded on `tape` for
    /// the last binding, if any. Clears the binding either way.
    pub fn apply_update(&mut self, tape: &Tape, opt: &mut Optimizer) {
        let Some(var) = self.bound.lock().unwrap().take() else {
            return;
        };
        let Some(grad) = tape.grad(var) else {
            return;
        };
        opt.step(self, grad);
    }

    /// Takes the gradient recorded on `tape` for the last binding without
    /// applying it, clearing the binding. This is the accumulation path:
    /// callers gather per-sample gradients (possibly from clones of the
    /// model on worker threads), reduce them in a deterministic order, and
    /// apply the result once via [`Param::apply_grad`].
    pub fn take_grad(&self, tape: &Tape) -> Option<Tensor> {
        let var = self.bound.lock().unwrap().take()?;
        tape.grad(var).cloned()
    }

    /// Applies one optimizer step with an explicitly supplied gradient
    /// (e.g. a mini-batch accumulated one). Bindings are untouched.
    pub fn apply_grad(&mut self, grad: &Tensor, opt: &mut Optimizer) {
        opt.step(self, grad);
    }
}

/// Cloning a parameter copies its value and optimizer state but not its
/// tape binding: the clone starts unbound. This is what lets training
/// workers take a private copy of a model, run forward/backward on their
/// own tapes, and hand gradients back without racing on the original's
/// binding slot.
impl Clone for Param {
    fn clone(&self) -> Self {
        Param {
            value: self.value.clone(),
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
            bound: Mutex::new(None),
        }
    }
}

/// Gradient-descent optimizers.
///
/// Per-parameter state (moments, timestep) lives in [`Param`]; the optimizer
/// only holds hyperparameters, so one instance serves a whole model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables).
        momentum: f32,
    },
    /// Adam (Kingma & Ba).
    Adam {
        /// Learning rate.
        lr: f32,
        /// Exponential decay for the first moment.
        beta1: f32,
        /// Exponential decay for the second moment.
        beta2: f32,
        /// Division-guard epsilon.
        eps: f32,
    },
}

impl Optimizer {
    /// SGD with the given learning rate and no momentum.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr, momentum: 0.0 }
    }

    /// Adam with standard betas (0.9 / 0.999).
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Returns the learning rate.
    pub fn learning_rate(&self) -> f32 {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr,
        }
    }

    /// Sets the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, new_lr: f32) {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr = new_lr,
        }
    }

    fn step(&self, p: &mut Param, grad: &Tensor) {
        match *self {
            Optimizer::Sgd { lr, momentum } => {
                if momentum > 0.0 {
                    p.m = p.m.scale(momentum).zip_map(grad, |m, g| m + g);
                    p.value = p.value.zip_map(&p.m, |w, m| w - lr * m);
                } else {
                    p.value = p.value.zip_map(grad, |w, g| w - lr * g);
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                p.t += 1;
                let bc1 = 1.0 - beta1.powi(p.t as i32);
                let bc2 = 1.0 - beta2.powi(p.t as i32);
                // Fused lane kernel; per element it performs the exact
                // IEEE-754 sequence of the old tensor-at-a-time code
                // (m/v decay, reciprocal bias correction, `w - lr·u`),
                // so trajectories stay bit-identical to pre-lane runs.
                simd::adam_step(
                    p.value.data_mut(),
                    p.m.data_mut(),
                    p.v.data_mut(),
                    grad.data(),
                    simd::AdamParams {
                        lr,
                        beta1,
                        beta2,
                        eps,
                        inv_bc1: 1.0 / bc1,
                        inv_bc2: 1.0 / bc2,
                    },
                );
            }
        }
    }
}

/// Anything with trainable parameters.
pub trait Module {
    /// All parameters, in a stable order.
    fn params(&self) -> Vec<&Param>;

    /// All parameters, mutably, in the same order as [`Module::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Total trainable element count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Model size in megabytes at 4 bytes per parameter — the paper's
    /// "Size \[MB\]" column.
    fn size_mb(&self) -> f64 {
        self.param_count() as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Applies one optimizer step to every parameter bound on `tape`.
    fn apply_updates(&mut self, tape: &Tape, opt: &mut Optimizer) {
        for p in self.params_mut() {
            p.apply_update(tape, opt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(p: &mut Param, opt: &mut Optimizer) -> f32 {
        // loss = sum(w^2); grad = 2w
        let mut tape = Tape::new();
        let w = p.bind(&mut tape);
        let sq = tape.mul(w, w);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        let l = tape.value(loss).item();
        p.apply_update(&tape, opt);
        l
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Param::new(Tensor::from_vec(vec![2.0, -3.0], &[1, 2]));
        let mut opt = Optimizer::sgd(0.1);
        let first = quadratic_step(&mut p, &mut opt);
        let mut last = first;
        for _ in 0..50 {
            last = quadratic_step(&mut p, &mut opt);
        }
        assert!(last < first * 1e-3, "loss {first} -> {last}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Param::new(Tensor::from_vec(vec![5.0], &[1, 1]));
        let mut opt = Optimizer::adam(0.3);
        let first = quadratic_step(&mut p, &mut opt);
        let mut last = first;
        for _ in 0..200 {
            last = quadratic_step(&mut p, &mut opt);
        }
        assert!(last < 1e-2, "loss {first} -> {last}");
    }

    #[test]
    fn unbound_update_is_noop() {
        let mut p = Param::new(Tensor::ones(&[2, 2]));
        let before = p.value().clone();
        let tape = Tape::new();
        p.apply_update(&tape, &mut Optimizer::sgd(1.0));
        assert!(p.value().allclose(&before, 0.0));
    }

    #[test]
    fn take_grad_then_apply_grad_matches_apply_update() {
        // Two identical params; one updated via the bound-binding path, the
        // other via explicit take/apply. Trajectories must be bit-identical.
        let init = Tensor::from_vec(vec![1.5, -2.0, 0.25], &[1, 3]);
        let mut direct = Param::new(init.clone());
        let mut explicit = Param::new(init);
        let mut opt_a = Optimizer::adam(0.05);
        let mut opt_b = Optimizer::adam(0.05);
        for _ in 0..10 {
            let mut tape = Tape::new();
            let w = direct.bind(&mut tape);
            let sq = tape.mul(w, w);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            direct.apply_update(&tape, &mut opt_a);

            let mut tape = Tape::new();
            let w = explicit.bind(&mut tape);
            let sq = tape.mul(w, w);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            let grad = explicit.take_grad(&tape).unwrap();
            explicit.apply_grad(&grad, &mut opt_b);
        }
        assert_eq!(direct.value(), explicit.value());
    }

    #[test]
    fn clone_copies_state_but_not_binding() {
        let mut p = Param::new(Tensor::ones(&[2]));
        let mut tape = Tape::new();
        let w = p.bind(&mut tape);
        let loss = tape.sum_all(w);
        tape.backward(loss);
        p.apply_update(&tape, &mut Optimizer::adam(0.1));

        let mut tape2 = Tape::new();
        p.bind(&mut tape2); // leave a live binding on the original
        let c = p.clone();
        assert_eq!(c.value(), p.value());
        assert_eq!(c.t, p.t);
        // The clone is unbound; the original's binding survived the clone.
        assert!(c.bound.lock().unwrap().is_none());
        assert!(p.bound.lock().unwrap().is_some());
    }

    #[test]
    fn set_value_resets_state() {
        let mut p = Param::new(Tensor::ones(&[2]));
        let mut opt = Optimizer::adam(0.1);
        let mut tape = Tape::new();
        let w = p.bind(&mut tape);
        let loss = tape.sum_all(w);
        tape.backward(loss);
        p.apply_update(&tape, &mut opt);
        assert!(p.t > 0);
        p.set_value(Tensor::zeros(&[2]));
        assert_eq!(p.t, 0);
        assert_eq!(p.m.sum(), 0.0);
    }
}
