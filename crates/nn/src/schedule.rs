//! Learning-rate schedules.
//!
//! The supernet's long Stage-2 pre-training (500 epochs at paper scale)
//! benefits from decay; these schedules plug into any loop that owns an
//! [`crate::Optimizer`] by calling `set_learning_rate(lr_at(epoch))`.

/// A learning-rate schedule over epochs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Decay factor per step (0 < gamma ≤ 1).
        gamma: f32,
        /// Epochs between decays.
        every: usize,
    },
    /// Cosine annealing from the base rate down to `min_lr` over
    /// `total_epochs`.
    Cosine {
        /// Floor learning rate.
        min_lr: f32,
        /// Annealing horizon.
        total_epochs: usize,
    },
}

impl LrSchedule {
    /// The learning rate at `epoch` (0-based) given the base rate.
    ///
    /// # Panics
    ///
    /// Panics if a schedule parameter is invalid (`gamma` outside `(0, 1]`,
    /// `every == 0`, or `total_epochs == 0`).
    pub fn lr_at(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::Step { gamma, every } => {
                assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
                assert!(every > 0, "step interval must be positive");
                base_lr * gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine {
                min_lr,
                total_epochs,
            } => {
                assert!(total_epochs > 0, "total_epochs must be positive");
                let t = (epoch.min(total_epochs) as f32) / total_epochs as f32;
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0.1, 0), 0.1);
        assert_eq!(s.lr_at(0.1, 1000), 0.1);
    }

    #[test]
    fn step_halves_on_schedule() {
        let s = LrSchedule::Step {
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.lr_at(1.0, 0), 1.0);
        assert_eq!(s.lr_at(1.0, 9), 1.0);
        assert_eq!(s.lr_at(1.0, 10), 0.5);
        assert_eq!(s.lr_at(1.0, 25), 0.25);
    }

    #[test]
    fn cosine_starts_at_base_ends_at_min() {
        let s = LrSchedule::Cosine {
            min_lr: 0.01,
            total_epochs: 100,
        };
        assert!((s.lr_at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(1.0, 100) - 0.01).abs() < 1e-6);
        // Past the horizon it stays at the floor.
        assert!((s.lr_at(1.0, 500) - 0.01).abs() < 1e-6);
        // Monotone decreasing over the horizon.
        let mut prev = f32::MAX;
        for e in 0..=100 {
            let lr = s.lr_at(1.0, e);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
    }
}
