//! Evaluation metrics reported in the paper.
//!
//! Table II reports **OA** (overall accuracy) and **mAcc** (balanced
//! accuracy, the mean of per-class recalls); Fig. 8 reports **MAPE** and the
//! fraction of predictions within a 10 % relative-error bound.

/// Index of the maximum element of a row (ties resolve to the first).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Converts `[n, classes]` logits to predicted class indices.
///
/// # Panics
///
/// Panics if `logits.len()` is not a multiple of `classes` or `classes == 0`.
pub fn predictions(logits: &[f32], classes: usize) -> Vec<usize> {
    assert!(
        classes > 0 && logits.len().is_multiple_of(classes),
        "bad logits layout"
    );
    logits.chunks(classes).map(argmax).collect()
}

/// Overall accuracy: fraction of exact label matches.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn overall_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty evaluation set");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Balanced accuracy (the paper's *mAcc*): the unweighted mean of per-class
/// recalls, over the classes that appear in `truth`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn balanced_accuracy(pred: &[usize], truth: &[usize], classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty evaluation set");
    let mut per_class_total = vec![0usize; classes];
    let mut per_class_hit = vec![0usize; classes];
    for (&p, &t) in pred.iter().zip(truth) {
        per_class_total[t] += 1;
        if p == t {
            per_class_hit[t] += 1;
        }
    }
    let mut sum = 0.0;
    let mut seen = 0usize;
    for c in 0..classes {
        if per_class_total[c] > 0 {
            sum += per_class_hit[c] as f64 / per_class_total[c] as f64;
            seen += 1;
        }
    }
    if seen == 0 {
        0.0
    } else {
        sum / seen as f64
    }
}

/// Confusion matrix `[truth][pred]` with `classes`² entries.
///
/// # Panics
///
/// Panics if the slices have different lengths or any label is out of range.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &t) in pred.iter().zip(truth) {
        assert!(p < classes && t < classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

/// Mean absolute percentage error between predictions and targets, as a
/// fraction (0.06 = 6 %).
///
/// # Panics
///
/// Panics if lengths differ or the set is empty.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/target length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty evaluation set");
    let s: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| ((p - t) / t.abs().max(1e-12)).abs())
        .sum();
    s / pred.len() as f64
}

/// Fraction of predictions whose relative error is within `bound`
/// (Fig. 8's ">80 % within a 10 % error bound" uses `bound = 0.10`).
///
/// # Panics
///
/// Panics if lengths differ or the set is empty.
pub fn error_bound_accuracy(pred: &[f64], truth: &[f64], bound: f64) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/target length mismatch");
    assert!(!pred.is_empty(), "cannot score an empty evaluation set");
    let hits = pred
        .iter()
        .zip(truth)
        .filter(|(&p, &t)| ((p - t) / t.abs().max(1e-12)).abs() <= bound)
        .count();
    hits as f64 / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn oa_and_macc_disagree_under_imbalance() {
        // 9 of class 0 (all right), 1 of class 1 (wrong):
        // OA = 0.9, mAcc = (1.0 + 0.0)/2 = 0.5.
        let truth: Vec<usize> = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = vec![0usize; 10];
        assert!((overall_accuracy(&pred, &truth) - 0.9).abs() < 1e-12);
        assert!((balanced_accuracy(&pred, &truth, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions() {
        let truth = vec![0, 1, 2, 1];
        assert_eq!(overall_accuracy(&truth, &truth), 1.0);
        assert_eq!(balanced_accuracy(&truth, &truth, 3), 1.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let truth = vec![0, 0, 1];
        let pred = vec![0, 1, 1];
        let m = confusion_matrix(&pred, &truth, 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn mape_and_bound() {
        let truth = vec![100.0, 200.0];
        let pred = vec![110.0, 190.0];
        assert!((mape(&pred, &truth) - 0.075).abs() < 1e-12);
        assert_eq!(error_bound_accuracy(&pred, &truth, 0.10), 1.0);
        assert_eq!(error_bound_accuracy(&pred, &truth, 0.04), 0.0);
    }

    #[test]
    fn predictions_from_logits() {
        let logits = vec![0.1, 0.9, 0.8, 0.2];
        assert_eq!(predictions(&logits, 2), vec![1, 0]);
    }
}
