//! Layers: linear, MLP, and the GCN propagation layer the predictor uses.

use crate::param::{Module, Param};
use hgnas_autograd::{Tape, Var};
use hgnas_tensor::Tensor;
use rand::Rng;

/// Nonlinearity applied between layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `x if x > 0 else slope·x` — the paper's predictor head uses this.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// No-op.
    Identity,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(&self, tape: &mut Tape, x: Var) -> Var {
        match *self {
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu(slope) => tape.leaky_relu(x, slope),
            Activation::Tanh => tape.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// Fully connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Kaiming-uniform initialised linear layer.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let limit = (6.0 / in_dim as f32).sqrt();
        Linear {
            w: Param::new(Tensor::rand_uniform(rng, &[in_dim, out_dim], -limit, limit)),
            b: Param::new(Tensor::zeros(&[out_dim])),
            in_dim,
            out_dim,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Binds the weights and computes `x·W + b`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = self.w.bind(tape);
        let b = self.b.bind(tape);
        let xw = tape.matmul(x, w);
        tape.add_bias(xw, b)
    }

    /// Inference-only `x·W + b`: weights enter the tape as plain inputs, so
    /// nothing is tracked for gradients and `self` is untouched (safe to
    /// call from many threads sharing `&self`).
    pub fn forward_frozen(&self, tape: &mut Tape, x: Var) -> Var {
        let w = self.w.bind_frozen(tape);
        let b = self.b.bind_frozen(tape);
        let xw = tape.matmul(x, w);
        tape.add_bias(xw, b)
    }

    /// Re-initialises the weights in place (used when the supernet is
    /// re-initialised between search stages).
    pub fn reinit<R: Rng>(&mut self, rng: &mut R) {
        let limit = (6.0 / self.in_dim as f32).sqrt();
        self.w.set_value(Tensor::rand_uniform(
            rng,
            &[self.in_dim, self.out_dim],
            -limit,
            limit,
        ));
        self.b.set_value(Tensor::zeros(&[self.out_dim]));
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// A stack of [`Linear`] layers with an activation between them (none after
/// the last).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    act: Activation,
}

impl Mlp {
    /// Builds an MLP from a dimension chain, e.g. `[256, 128, 1]` for the
    /// paper's predictor head.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng>(rng: &mut R, dims: &[usize], act: Activation) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(rng, w[0], w[1]))
            .collect();
        Mlp { layers, act }
    }

    /// Forward pass; activation between layers, none after the last.
    pub fn forward(&self, tape: &mut Tape, mut x: Var) -> Var {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, x);
            if i + 1 < n {
                x = self.act.apply(tape, x);
            }
        }
        x
    }

    /// Inference-only forward pass (see [`Linear::forward_frozen`]).
    pub fn forward_frozen(&self, tape: &mut Tape, mut x: Var) -> Var {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward_frozen(tape, x);
            if i + 1 < n {
                x = self.act.apply(tape, x);
            }
        }
        x
    }

    /// The per-layer widths, input first.
    pub fn dims(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.layers.iter().map(Linear::in_dim).collect();
        d.push(self.layers.last().unwrap().out_dim());
        d
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(Module::params).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(Module::params_mut)
            .collect()
    }
}

/// One graph-convolution layer: `H' = σ(Â · H · W + b)` where `Â` is a
/// (pre-normalised) dense adjacency supplied by the caller.
///
/// The paper's predictor stacks three of these with a *sum* aggregator; the
/// normalisation choice therefore lives with the caller (identity-plus-
/// adjacency, row-normalised, or symmetric — see `hgnas-predictor`).
#[derive(Debug, Clone)]
pub struct GcnLayer {
    lin: Linear,
    act: Activation,
}

impl GcnLayer {
    /// New GCN layer with the given feature widths.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize, act: Activation) -> Self {
        GcnLayer {
            lin: Linear::new(rng, in_dim, out_dim),
            act,
        }
    }

    /// Propagates: `act(adj · (x·W + b))`.
    pub fn forward(&self, tape: &mut Tape, adj: Var, x: Var) -> Var {
        let h = self.lin.forward(tape, x);
        let prop = tape.matmul(adj, h);
        self.act.apply(tape, prop)
    }

    /// Inference-only propagation (see [`Linear::forward_frozen`]).
    pub fn forward_frozen(&self, tape: &mut Tape, adj: Var, x: Var) -> Var {
        let h = self.lin.forward_frozen(tape, x);
        let prop = tape.matmul(adj, h);
        self.act.apply(tape, prop)
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.lin.out_dim()
    }
}

impl Module for GcnLayer {
    fn params(&self) -> Vec<&Param> {
        self.lin.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.lin.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Optimizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(&mut rng, 3, 5);
        assert_eq!(l.param_count(), 3 * 5 + 5);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[2, 3]));
        let y = l.forward(&mut tape, x);
        assert_eq!(tape.value(y).dims(), &[2, 5]);
    }

    #[test]
    fn mlp_learns_xor_ish_regression() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&mut rng, &[2, 16, 1], Activation::Tanh);
        let mut opt = Optimizer::adam(0.05);
        // XOR targets
        let xs = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.input(xs.clone());
            let out = mlp.forward(&mut tape, x);
            let loss = tape.mse_loss(out, &ys);
            last = tape.value(loss).item();
            tape.backward(loss);
            mlp.apply_updates(&tape, &mut opt);
        }
        assert!(last < 0.03, "XOR mse stuck at {last}");
    }

    #[test]
    fn gcn_layer_propagates_neighbours() {
        let mut rng = StdRng::seed_from_u64(3);
        let gcn = GcnLayer::new(&mut rng, 2, 2, Activation::Identity);
        // Two nodes, adjacency swaps them.
        let adj = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let mut tape = Tape::new();
        let a = tape.input(adj);
        let xv = tape.input(x);
        let y = gcn.forward(&mut tape, a, xv);
        // Row 0 of output == transformed row 1 of input and vice versa.
        let out = tape.value(y).clone();
        let mut tape2 = Tape::new();
        let xv2 = tape2.input(Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]));
        let a2 = tape2.input(Tensor::eye(2));
        let y2 = gcn.forward(&mut tape2, a2, xv2);
        assert!(out.allclose(tape2.value(y2), 1e-6));
    }

    #[test]
    fn mlp_dims_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&mut rng, &[256, 128, 1], Activation::LeakyRelu(0.01));
        assert_eq!(mlp.dims(), vec![256, 128, 1]);
    }

    #[test]
    fn size_mb_matches_hand_math() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = Linear::new(&mut rng, 1024, 1024);
        let expected = (1024.0 * 1024.0 + 1024.0) * 4.0 / (1024.0 * 1024.0);
        assert!((l.size_mb() - expected).abs() < 1e-9);
    }
}
