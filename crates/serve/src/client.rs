//! Blocking client for the serve wire protocol.
//!
//! [`SearchClient`] wraps any [`Transport`] (in-process duplex from
//! [`crate::Server::connect`], or TCP via [`SearchClient::connect_tcp`])
//! and speaks the frame protocol: hello handshake, submit, event
//! streaming, re-attach after a disconnect. Frames that arrive out of
//! band while waiting for something specific — events for another
//! request, prune broadcasts, drain notices — are parked internally and
//! replayed to the call that wants them, so interleaved multi-request
//! traffic on one connection never loses frames.

use crate::transport::{TcpTransport, Transport, TransportError};
use hgnas_core::{SearchConfig, TaskConfig};
use hgnas_device::DeviceKind;
use hgnas_fleet::wire::{self, ClientFrame, ServerFrame, WireReport};
use hgnas_fleet::{CodecError, FleetEvent, PruneReport, ScenarioSpec};
use std::collections::VecDeque;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or timed out.
    Transport(TransportError),
    /// A frame failed to decode.
    Codec(CodecError),
    /// The server refused the request (`request_id` 0 = the connection).
    Rejected {
        /// Which request, 0 for connection-level refusals.
        request_id: u64,
        /// The server's reason.
        reason: String,
    },
    /// The daemon drained before the awaited request finished; the listed
    /// requests parked with checkpoints persisted and can be resubmitted.
    Drained(Vec<u64>),
    /// A frame that makes no sense at this point of the protocol.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Codec(e) => write!(f, "codec: {e}"),
            ClientError::Rejected { request_id, reason } => {
                write!(f, "rejected (request {request_id}): {reason}")
            }
            ClientError::Drained(parked) => {
                write!(f, "server drained with {} request(s) parked", parked.len())
            }
            ClientError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// A connected protocol client. See the module docs; construct with
/// [`crate::Server::connect`] (in-process) or [`SearchClient::connect_tcp`].
pub struct SearchClient {
    transport: Box<dyn Transport>,
    /// Frames read while waiting for something else, oldest first.
    parked: VecDeque<ServerFrame>,
    /// Prune broadcasts observed on this connection.
    prunes: Vec<PruneReport>,
}

impl SearchClient {
    /// Wraps an already-connected transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        SearchClient {
            transport,
            parked: VecDeque::new(),
            prunes: Vec::new(),
        }
    }

    /// Connects over TCP to a daemon's [`crate::Server::listen`] address.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] if the connection cannot be established.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> Result<Self, ClientError> {
        Ok(SearchClient::new(Box::new(TcpTransport::connect(addr)?)))
    }

    /// Prune broadcasts seen so far on this connection.
    pub fn prune_reports(&self) -> &[PruneReport] {
        &self.prunes
    }

    /// Reads the next frame off the wire (not the parked queue).
    fn read_frame(&mut self, timeout: Duration) -> Result<ServerFrame, ClientError> {
        let bytes = self.transport.recv_timeout(timeout)?;
        Ok(wire::decode_server(&bytes)?)
    }

    /// Parks a frame for a later call, tallying prune broadcasts.
    fn park(&mut self, frame: ServerFrame) {
        if let ServerFrame::Pruned { report } = &frame {
            self.prunes.push(*report);
        }
        self.parked.push_back(frame);
    }

    /// Sends `Hello` and waits for the ack; returns the server's protocol
    /// version.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`].
    pub fn hello(
        &mut self,
        tenant: &str,
        priority: u8,
        timeout: Duration,
    ) -> Result<u8, ClientError> {
        self.transport
            .send(&wire::encode_client(&ClientFrame::Hello {
                tenant: tenant.to_string(),
                priority,
            }))?;
        loop {
            match self.read_frame(timeout)? {
                ServerFrame::HelloAck { protocol } => return Ok(protocol),
                ServerFrame::Rejected { request_id, reason } => {
                    return Err(ClientError::Rejected { request_id, reason })
                }
                other => self.park(other),
            }
        }
    }

    /// Submits a search over `devices` and waits for the `Accepted` ack;
    /// returns `(request_id, shard_count)`.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, or [`ClientError::Rejected`] (e.g.
    /// submit before hello).
    pub fn submit(
        &mut self,
        task: &TaskConfig,
        config: &SearchConfig,
        devices: &[DeviceKind],
        timeout: Duration,
    ) -> Result<(u64, usize), ClientError> {
        self.submit_frame(
            ClientFrame::Submit {
                task: task.clone(),
                config: config.clone(),
                devices: devices.to_vec(),
                scenarios: Vec::new(),
            },
            timeout,
        )
    }

    /// Submits a search over explicit {task × objective × persona}
    /// scenarios (one scheduler shard each, see
    /// `hgnas_fleet::cross_scenarios`) and waits for the `Accepted` ack;
    /// returns `(request_id, shard_count)`.
    ///
    /// # Errors
    ///
    /// As [`SearchClient::submit`].
    pub fn submit_scenarios(
        &mut self,
        base_task: &TaskConfig,
        base_config: &SearchConfig,
        scenarios: &[ScenarioSpec],
        timeout: Duration,
    ) -> Result<(u64, usize), ClientError> {
        self.submit_frame(
            ClientFrame::Submit {
                task: base_task.clone(),
                config: base_config.clone(),
                devices: Vec::new(),
                scenarios: scenarios.to_vec(),
            },
            timeout,
        )
    }

    fn submit_frame(
        &mut self,
        frame: ClientFrame,
        timeout: Duration,
    ) -> Result<(u64, usize), ClientError> {
        self.transport.send(&wire::encode_client(&frame))?;
        loop {
            match self.read_frame(timeout)? {
                ServerFrame::Accepted { request_id, shards } => return Ok((request_id, shards)),
                ServerFrame::Rejected { request_id, reason } => {
                    return Err(ClientError::Rejected { request_id, reason })
                }
                other => self.park(other),
            }
        }
    }

    /// Asks the server to re-stream `request_id`'s events from `from_seq`
    /// onward (and the report, if already finished). Fire-and-forget: the
    /// replay arrives through [`SearchClient::next_event`] /
    /// [`SearchClient::wait_report`].
    ///
    /// # Errors
    ///
    /// Transport failures sending the frame.
    pub fn attach(
        &mut self,
        request_id: u64,
        tenant: &str,
        from_seq: u64,
    ) -> Result<(), ClientError> {
        self.transport
            .send(&wire::encode_client(&ClientFrame::Attach {
                request_id,
                tenant: tenant.to_string(),
                from_seq,
            }))?;
        Ok(())
    }

    /// Pops the first parked frame belonging to `request_id`.
    fn take_parked(&mut self, request_id: u64) -> Option<ServerFrame> {
        let pos = self.parked.iter().position(|f| match f {
            ServerFrame::Event { request_id: id, .. }
            | ServerFrame::Report { request_id: id, .. }
            | ServerFrame::Rejected { request_id: id, .. } => *id == request_id,
            ServerFrame::Drain { .. } => true,
            _ => false,
        })?;
        self.parked.remove(pos)
    }

    /// The next frame for `request_id`: `Ok(Ok((seq, event)))` for an
    /// event, `Ok(Err(report))` when the final report arrives.
    ///
    /// # Errors
    ///
    /// Transport/codec failures, [`ClientError::Rejected`] if the request
    /// failed server-side, [`ClientError::Drained`] if the daemon shut
    /// down first.
    #[allow(clippy::type_complexity)]
    pub fn next_event(
        &mut self,
        request_id: u64,
        timeout: Duration,
    ) -> Result<Result<(u64, FleetEvent), WireReport>, ClientError> {
        loop {
            let frame = match self.take_parked(request_id) {
                Some(f) => f,
                None => self.read_frame(timeout)?,
            };
            match frame {
                ServerFrame::Event {
                    request_id: id,
                    seq,
                    event,
                } if id == request_id => return Ok(Ok((seq, event))),
                ServerFrame::Report {
                    request_id: id,
                    report,
                } if id == request_id => return Ok(Err(report)),
                ServerFrame::Rejected {
                    request_id: id,
                    reason,
                } if id == request_id => {
                    return Err(ClientError::Rejected {
                        request_id: id,
                        reason,
                    })
                }
                ServerFrame::Drain { parked } => return Err(ClientError::Drained(parked)),
                other => self.park(other),
            }
        }
    }

    /// Streams `request_id`'s events through `on_event(seq, &event)` until
    /// the final report arrives, then returns it. `timeout` bounds the
    /// wait *per frame*, not end to end.
    ///
    /// # Errors
    ///
    /// As [`SearchClient::next_event`].
    pub fn wait_report(
        &mut self,
        request_id: u64,
        timeout: Duration,
        mut on_event: impl FnMut(u64, &FleetEvent),
    ) -> Result<WireReport, ClientError> {
        loop {
            match self.next_event(request_id, timeout)? {
                Ok((seq, event)) => on_event(seq, &event),
                Err(report) => return Ok(report),
            }
        }
    }

    /// Waits for a [`ServerFrame::Pruned`] broadcast (parked ones count)
    /// and returns its report.
    ///
    /// # Errors
    ///
    /// Transport/codec failures while waiting.
    pub fn wait_pruned(&mut self, timeout: Duration) -> Result<PruneReport, ClientError> {
        if let Some(pos) = self
            .parked
            .iter()
            .position(|f| matches!(f, ServerFrame::Pruned { .. }))
        {
            if let Some(ServerFrame::Pruned { report }) = self.parked.remove(pos) {
                return Ok(report);
            }
        }
        loop {
            match self.read_frame(timeout)? {
                ServerFrame::Pruned { report } => {
                    self.prunes.push(report);
                    return Ok(report);
                }
                other => self.park(other),
            }
        }
    }

    /// Says goodbye; the server closes the connection.
    ///
    /// # Errors
    ///
    /// Transport failures sending the frame.
    pub fn bye(&mut self) -> Result<(), ClientError> {
        self.transport
            .send(&wire::encode_client(&ClientFrame::Bye))?;
        Ok(())
    }
}

impl Drop for SearchClient {
    fn drop(&mut self) {
        // Dropping the client is a disconnect: the server detaches the
        // connection and keeps buffering for a later re-attach.
        self.transport.close();
    }
}
