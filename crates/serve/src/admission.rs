//! Deterministic fair-share admission: which request runs the next
//! scheduling round.
//!
//! Each request is charged the scheduler slices its rounds consume. The
//! controller always picks the admitted, unfinished request with the
//! lowest *weighted* charge — `slices / priority` — so a priority-3
//! tenant accrues charge a third as fast and receives three times the
//! slice share of a priority-1 tenant under contention. Ties break by
//! arrival order, then request id: the decision is a pure function of
//! (charges, priorities, arrival), never of wall clock or thread timing,
//! which is what keeps daemon runs bit-identical to `run_fleet`.
//!
//! # Examples
//!
//! ```
//! use hgnas_serve::AdmissionController;
//!
//! let mut adm = AdmissionController::new();
//! adm.admit(1, "alice", 3);
//! adm.admit(2, "bob", 1);
//! // Both uncharged: arrival order wins the first round.
//! assert_eq!(adm.next(), Some(1));
//! adm.charge(1, 3);
//! // alice at 3/3 = 1.0 weighted, bob at 0: bob runs.
//! assert_eq!(adm.next(), Some(2));
//! ```

use std::collections::HashMap;

/// One admitted request's accounting entry.
#[derive(Debug, Clone)]
struct Entry {
    tenant: String,
    priority: u64,
    arrival: u64,
    slices: u64,
    done: bool,
}

/// Slice usage of one tenant, summed over its requests (finished ones
/// included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantUsage {
    /// The tenant.
    pub tenant: String,
    /// Its fair-share weight as admitted.
    pub priority: u8,
    /// Requests admitted for this tenant.
    pub requests: u64,
    /// Scheduler slices charged across those requests.
    pub slices: u64,
}

/// Weighted fair-share queue over admitted requests. See the module docs
/// for the selection rule.
#[derive(Debug, Default)]
pub struct AdmissionController {
    entries: HashMap<u64, Entry>,
    arrivals: u64,
}

impl AdmissionController {
    /// An empty controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a request for `tenant` with fair-share weight `priority`
    /// (clamped to ≥ 1). Re-admitting an id is a no-op.
    pub fn admit(&mut self, request_id: u64, tenant: &str, priority: u8) {
        let arrival = self.arrivals;
        self.entries.entry(request_id).or_insert_with(|| Entry {
            tenant: tenant.to_string(),
            priority: u64::from(priority.max(1)),
            arrival,
            slices: 0,
            done: false,
        });
        self.arrivals += 1;
    }

    /// Charges `slices` consumed by one scheduling round to the request.
    pub fn charge(&mut self, request_id: u64, slices: u64) {
        if let Some(e) = self.entries.get_mut(&request_id) {
            e.slices += slices;
        }
    }

    /// Marks a request finished; it no longer competes for rounds.
    pub fn complete(&mut self, request_id: u64) {
        if let Some(e) = self.entries.get_mut(&request_id) {
            e.done = true;
        }
    }

    /// The request the next scheduling round belongs to: minimal
    /// `slices / priority`, ties by arrival order then id. `None` when
    /// nothing runnable remains.
    pub fn next(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| !e.done)
            .min_by(|(id_a, a), (id_b, b)| {
                // slices_a / prio_a  vs  slices_b / prio_b, cross-
                // multiplied to stay in exact integer arithmetic.
                let wa = u128::from(a.slices) * u128::from(b.priority);
                let wb = u128::from(b.slices) * u128::from(a.priority);
                wa.cmp(&wb)
                    .then(a.arrival.cmp(&b.arrival))
                    .then(id_a.cmp(id_b))
            })
            .map(|(id, _)| *id)
    }

    /// Whether any admitted request is still unfinished.
    pub fn has_pending(&self) -> bool {
        self.entries.values().any(|e| !e.done)
    }

    /// Ids of unfinished requests, ascending (the drain manifest).
    pub fn pending(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.done)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Slices charged to one request so far.
    pub fn charged(&self, request_id: u64) -> u64 {
        self.entries.get(&request_id).map_or(0, |e| e.slices)
    }

    /// Per-tenant usage summary, sorted by tenant name.
    pub fn tenant_usage(&self) -> Vec<TenantUsage> {
        let mut by_tenant: HashMap<&str, TenantUsage> = HashMap::new();
        for e in self.entries.values() {
            let u = by_tenant.entry(&e.tenant).or_insert_with(|| TenantUsage {
                tenant: e.tenant.clone(),
                priority: u8::try_from(e.priority).unwrap_or(u8::MAX),
                requests: 0,
                slices: 0,
            });
            u.requests += 1;
            u.slices += e.slices;
        }
        let mut out: Vec<TenantUsage> = by_tenant.into_values().collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_follow_priorities_under_contention() {
        let mut adm = AdmissionController::new();
        adm.admit(1, "alice", 3);
        adm.admit(2, "bob", 1);
        // Fixed-size rounds: every round charges 4 slices to whoever ran.
        let mut runs = HashMap::new();
        for _ in 0..40 {
            let id = adm.next().unwrap();
            adm.charge(id, 4);
            *runs.entry(id).or_insert(0u32) += 1;
        }
        // 3:1 priorities → 30 rounds for alice, 10 for bob.
        assert_eq!(runs[&1], 30);
        assert_eq!(runs[&2], 10);
    }

    #[test]
    fn arrival_order_breaks_ties_deterministically() {
        let mut adm = AdmissionController::new();
        adm.admit(7, "a", 2);
        adm.admit(3, "b", 2);
        // Same weighted charge (0): the earlier arrival wins, regardless
        // of id order.
        assert_eq!(adm.next(), Some(7));
        adm.charge(7, 1);
        assert_eq!(adm.next(), Some(3));
        adm.charge(3, 1);
        // Equal again: back to arrival order.
        assert_eq!(adm.next(), Some(7));
    }

    #[test]
    fn completion_removes_from_rotation_but_keeps_accounting() {
        let mut adm = AdmissionController::new();
        adm.admit(1, "alice", 1);
        adm.admit(2, "alice", 1);
        adm.charge(1, 6);
        adm.complete(1);
        assert_eq!(adm.next(), Some(2));
        assert_eq!(adm.pending(), vec![2]);
        assert!(adm.has_pending());
        adm.complete(2);
        assert_eq!(adm.next(), None);
        assert!(!adm.has_pending());
        let usage = adm.tenant_usage();
        assert_eq!(usage.len(), 1);
        assert_eq!(usage[0].requests, 2);
        assert_eq!(usage[0].slices, 6);
    }

    #[test]
    fn priority_zero_is_clamped_to_one() {
        let mut adm = AdmissionController::new();
        adm.admit(1, "z", 0);
        adm.charge(1, 5);
        // A true zero priority would never run again (infinite weighted
        // charge); clamping keeps the tenant schedulable.
        assert_eq!(adm.next(), Some(1));
    }
}
