//! Frame transports: how sealed wire frames move between a client and the
//! daemon.
//!
//! Two backends share one [`Transport`] trait:
//!
//! - [`duplex`]: an in-process pair over the crossbeam shim's channels —
//!   zero-copy `Vec<u8>` handoff, used by tests, benches and co-located
//!   clients.
//! - [`TcpTransport`]: a `std::net::TcpStream` carrying each frame behind
//!   a little-endian `u32` length prefix, for clients on other processes
//!   or hosts.
//!
//! Both deliver whole frames or nothing: a TCP read timeout mid-frame
//! keeps the partial bytes buffered, so the next receive resumes where
//! the wire left off.

use crossbeam::channel::{self, RecvTimeoutError};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest frame either side will accept, bytes. Generous for reports
/// (genomes and fronts are small) while bounding a corrupted length
/// prefix.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No frame arrived within the timeout; the connection is still up.
    Timeout,
    /// The peer is gone (or `close` was called locally).
    Closed,
    /// An I/O-level failure (TCP only), stringified.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "transport receive timed out"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One end of a frame pipe. Implementations are `Send + Sync`; the daemon
/// sends events from its engine thread while the connection thread blocks
/// in [`Transport::recv_timeout`].
pub trait Transport: Send + Sync {
    /// Ships one sealed frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the peer (or this end) is gone,
    /// [`TransportError::Io`] on socket failures.
    fn send(&self, frame: &[u8]) -> Result<(), TransportError>;

    /// Waits up to `timeout` for the next whole frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when nothing whole arrived in time
    /// (partial bytes stay buffered), [`TransportError::Closed`] when the
    /// peer hung up, [`TransportError::Io`] on socket failures.
    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError>;

    /// Closes both directions; blocked receivers on either end wake with
    /// [`TransportError::Closed`]. Idempotent.
    fn close(&self);
}

/// The in-process duplex backend: each end owns a sender into the peer's
/// inbox and a receiver over its own. A zero-length message is the close
/// sentinel (real frames are never empty — the header alone is 11 bytes).
pub struct DuplexTransport {
    /// Frames to the peer.
    out: channel::Sender<Vec<u8>>,
    /// Frames from the peer.
    inbox: channel::Receiver<Vec<u8>>,
    /// Self-wake handle into our own inbox, so `close` can unblock a
    /// receiver parked on this very end.
    self_wake: channel::Sender<Vec<u8>>,
    /// Shared by both ends: either side closing closes the pair.
    closed: Arc<AtomicBool>,
}

/// Creates a connected in-process transport pair (client end, server end).
pub fn duplex() -> (DuplexTransport, DuplexTransport) {
    let (a_tx, a_rx) = channel::unbounded();
    let (b_tx, b_rx) = channel::unbounded();
    let closed = Arc::new(AtomicBool::new(false));
    let client = DuplexTransport {
        out: a_tx.clone(),
        inbox: b_rx,
        self_wake: b_tx.clone(),
        closed: Arc::clone(&closed),
    };
    let server = DuplexTransport {
        out: b_tx,
        inbox: a_rx,
        self_wake: a_tx,
        closed,
    };
    (client, server)
}

impl Transport for DuplexTransport {
    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        self.out
            .send(frame.to_vec())
            .map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        // A closed pair still drains frames queued before the close (e.g.
        // the daemon's Drain notice) — the sentinel sits behind them in
        // FIFO order, so this only stops *blocking*, never drops data.
        let timeout = if self.closed.load(Ordering::SeqCst) {
            Duration::ZERO
        } else {
            timeout
        };
        match self.inbox.recv_timeout(timeout) {
            Ok(frame) if frame.is_empty() => {
                // Close sentinel: re-arm it so sibling receivers (if the
                // transport is shared) wake too, then report closed.
                let _ = self.self_wake.send(Vec::new());
                Err(TransportError::Closed)
            }
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) if self.closed.load(Ordering::SeqCst) => {
                Err(TransportError::Closed)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake the peer's receiver and our own; ignore errors from ends
        // already torn down.
        let _ = self.out.send(Vec::new());
        let _ = self.self_wake.send(Vec::new());
    }
}

/// Reader-side state of a [`TcpTransport`]: the stream handle plus the
/// partial-frame buffer that survives timeouts.
struct TcpReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A length-prefixed frame pipe over `std::net::TcpStream`: each frame is
/// `len: u32 LE · frame bytes`. Reads run under `set_read_timeout`; a
/// timeout mid-frame loses nothing because partial bytes persist in the
/// reader buffer.
pub struct TcpTransport {
    reader: Mutex<TcpReader>,
    writer: Mutex<TcpStream>,
}

impl TcpTransport {
    /// Wraps a connected stream.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the stream cannot be cloned into
    /// independent read/write halves.
    pub fn new(stream: TcpStream) -> Result<Self, TransportError> {
        let writer = stream
            .try_clone()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(TcpTransport {
            reader: Mutex::new(TcpReader {
                stream,
                buf: Vec::new(),
            }),
            writer: Mutex::new(writer),
        })
    }

    /// Connects to a listening daemon.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on connect/clone failure.
    pub fn connect(addr: std::net::SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        Self::new(stream)
    }

    /// Pops one whole length-prefixed frame off `buf`, if present.
    fn extract(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, TransportError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(TransportError::Io(format!("frame length {len} too large")));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = buf[4..4 + len].to_vec();
        buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        let len = u32::try_from(frame.len())
            .map_err(|_| TransportError::Io("frame too large for length prefix".into()))?;
        let mut w = self.writer.lock().unwrap();
        let write = w
            .write_all(&len.to_le_bytes())
            .and_then(|()| w.write_all(frame))
            .and_then(|()| w.flush());
        write.map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::NotConnected => TransportError::Closed,
            _ => TransportError::Io(e.to_string()),
        })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let mut r = self.reader.lock().unwrap();
        if let Some(frame) = Self::extract(&mut r.buf)? {
            return Ok(frame);
        }
        // set_read_timeout(Some(0)) is an error; clamp to 1 ms.
        let timeout = timeout.max(Duration::from_millis(1));
        r.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut chunk = [0u8; 8192];
        loop {
            match r.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => {
                    r.buf.extend_from_slice(&chunk[..n]);
                    if let Some(frame) = Self::extract(&mut r.buf)? {
                        return Ok(frame);
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::ConnectionAborted =>
                {
                    return Err(TransportError::Closed);
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    fn close(&self) {
        // Both halves clone one socket; one shutdown covers them. Blocked
        // reads on either end return 0 → Closed.
        let _ = self.writer.lock().unwrap().shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn duplex_round_trips_frames_both_ways() {
        let (client, server) = duplex();
        client.send(b"ping").unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(5)).unwrap(),
            b"ping"
        );
        server.send(b"pong").unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)).unwrap(),
            b"pong"
        );
    }

    #[test]
    fn duplex_close_unblocks_both_ends() {
        let (client, server) = duplex();
        client.close();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(5)),
            Err(TransportError::Closed)
        );
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)),
            Err(TransportError::Closed)
        );
        assert_eq!(client.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn duplex_close_delivers_frames_queued_before_it() {
        let (client, server) = duplex();
        server.send(b"drain-notice").unwrap();
        server.close();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)).unwrap(),
            b"drain-notice"
        );
        assert_eq!(
            client.recv_timeout(Duration::from_secs(5)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn duplex_times_out_without_traffic() {
        let (client, _server) = duplex();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(20)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn tcp_round_trips_and_reassembles_split_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpTransport::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(stream).unwrap();

        let big = vec![0xabu8; 100_000];
        client.send(&big).unwrap();
        client.send(b"tail").unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(10)).unwrap(), big);
        assert_eq!(
            server.recv_timeout(Duration::from_secs(10)).unwrap(),
            b"tail"
        );

        server.send(b"reply").unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(10)).unwrap(),
            b"reply"
        );
    }

    #[test]
    fn tcp_timeout_preserves_partial_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(stream).unwrap();

        // Send only the prefix + half the frame, let the server time out,
        // then finish; the frame must arrive intact.
        let frame = b"split-frame-payload".to_vec();
        let mut raw = raw;
        raw.write_all(&u32::try_from(frame.len()).unwrap().to_le_bytes())
            .unwrap();
        raw.write_all(&frame[..8]).unwrap();
        raw.flush().unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Timeout)
        );
        raw.write_all(&frame[8..]).unwrap();
        raw.flush().unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(10)).unwrap(), frame);
    }

    #[test]
    fn tcp_close_surfaces_as_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpTransport::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(stream).unwrap();
        client.close();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(10)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn tcp_rejects_oversized_length_prefix() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let server = TcpTransport::new(stream).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        match server.recv_timeout(Duration::from_secs(10)) {
            Err(TransportError::Io(msg)) => assert!(msg.contains("too large"), "{msg}"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
