//! The daemon: connection lifecycle, the admission-driven engine loop,
//! idle-loop store GC, and graceful drain.
//!
//! # Architecture
//!
//! One **engine thread** owns all scheduling state. Each connection gets a
//! **reader thread** that decodes client frames and forwards commands to
//! the engine over a channel; an optional **accept thread** feeds TCP
//! connections into the same path, so in-process and remote clients are
//! indistinguishable past the transport.
//!
//! The engine runs one admission *round* at a time: the fair-share
//! controller picks a request, a fresh [`Scheduler`] runs its shards
//! under a `max_slices` grant against the shared artifact store, and
//! unfinished shards park with checkpoints persisted. Every
//! [`FleetEvent`](hgnas_fleet::FleetEvent) is encoded once, buffered (for re-attach after a
//! disconnect) and streamed to the attached connection. Because parked
//! shards resume bit-identically through the store, the report a request
//! eventually gets is bit-identical to `run_fleet` of the same configs —
//! however many rounds contention sliced it into.

use crate::admission::{AdmissionController, TenantUsage};
use crate::client::SearchClient;
use crate::transport::{duplex, TcpTransport, Transport, TransportError};
use crossbeam::channel::{self, RecvTimeoutError};
use hgnas_core::{SearchConfig, TaskConfig};
use hgnas_device::DeviceKind;
use hgnas_fleet::wire::{self, ClientFrame, ServerFrame, WireReport, WireShardReport};
use hgnas_fleet::{
    event_channel, persona_predictor_fingerprint, prefix_fingerprint, search_fingerprint,
    ArtifactKey, ArtifactStore, OracleConfig, PrefixKey, PruneReport, ScenarioSpec, Scheduler,
    SchedulerConfig, ShardResult, ShardSpec, PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Kernel-thread budget per scheduling round (the scheduler's
    /// `threads`; `0` runs one worker per shard).
    pub threads: usize,
    /// Generations per preemption slice (`0` disables preemption, which
    /// also makes every request run to completion in its first round —
    /// no fair-share interleaving).
    pub preemption_stride: usize,
    /// Checkpoint cadence within a slice.
    pub checkpoint_every: usize,
    /// Measurement-oracle tuning.
    pub oracle: OracleConfig,
    /// Scheduler slices granted per admission round when preemption is
    /// on. Smaller grants interleave tenants more finely; the grant is
    /// charged to the owning tenant's fair-share account.
    pub slices_per_round: u64,
    /// Session-cache byte budget per round (see
    /// [`SchedulerConfig::session_memory_budget`]).
    pub session_memory_budget: Option<u64>,
    /// Artifact-store byte budget for the idle-loop GC. When the daemon
    /// goes idle (no unfinished request) after completing work, it sweeps
    /// fingerprints no admitted request owns, prunes the store down to
    /// this budget, and broadcasts the [`PruneReport`] as a
    /// [`ServerFrame::Pruned`]. `None` disables the GC.
    pub store_budget_bytes: Option<u64>,
    /// Connection idle timeout: connections that never said hello, or
    /// have no submitted/attached request, are closed after this long
    /// without traffic.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 2,
            preemption_stride: 1,
            checkpoint_every: 1,
            oracle: OracleConfig::default(),
            slices_per_round: 4,
            session_memory_budget: None,
            store_budget_bytes: None,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// What a drained daemon left behind.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Requests parked mid-search (checkpoints persisted; resubmitting
    /// the same configs over the same store resumes bit-identically).
    pub parked: Vec<u64>,
    /// Per-tenant slice accounting at shutdown.
    pub tenants: Vec<TenantUsage>,
}

/// Commands the connection threads forward to the engine.
// Submit carries whole task/search configs; commands are one-shot.
#[allow(clippy::large_enum_variant)]
enum Command {
    Submit {
        request_id: u64,
        conn: u64,
        tenant: String,
        priority: u8,
        task: TaskConfig,
        config: SearchConfig,
        devices: Vec<DeviceKind>,
        scenarios: Vec<ScenarioSpec>,
    },
    Attach {
        request_id: u64,
        conn: u64,
        tenant: String,
        from_seq: u64,
    },
    Disconnect {
        conn: u64,
    },
    Shutdown,
}

/// State shared between the server handle, connection threads and the
/// engine.
struct Shared {
    cfg: ServeConfig,
    store: ArtifactStore,
    /// Drain flag: wired into every round's [`SchedulerConfig::stop`] and
    /// polled by the accept loop.
    stop: Arc<AtomicBool>,
    next_request: AtomicU64,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, Arc<dyn Transport>>>,
}

/// Engine-side per-request state.
struct RequestState {
    tenant: String,
    specs: Vec<ShardSpec>,
    k: usize,
    classes: usize,
    /// Per-shard `(scenario label, k, out_classes)` — what the report
    /// encoder needs to rebuild each shard's architectures at decode time
    /// (scenario shards may differ from the request-level task).
    shard_meta: Vec<(String, usize, usize)>,
    /// The connection currently streaming this request's events, if any.
    conn: Option<u64>,
    /// Next event sequence number (== `events.len()`).
    seq: u64,
    /// Every event frame emitted so far, encoded once; index == seq.
    events: Vec<Vec<u8>>,
    /// The final Report (or terminal Rejected) frame once produced.
    report_frame: Option<Vec<u8>>,
    rounds: u64,
    shard_slices: Vec<u64>,
    shard_prefix_builds: Vec<u64>,
    /// Shards that already ran to completion in an earlier round, by
    /// request-local index. Later rounds schedule only the `None` slots,
    /// so a request with more shards than `slices_per_round` still
    /// converges: finished shards are never re-run (or re-charged) just
    /// to re-announce their outcome.
    finished: Vec<Option<ShardResult>>,
}

/// A running search daemon. Start one over an [`ArtifactStore`], connect
/// in-process clients with [`Server::connect`] (or remote ones via
/// [`Server::listen`]), and stop it with [`Server::shutdown`] — in-flight
/// requests park at the next slice boundary with checkpoints persisted.
///
/// # Examples
///
/// ```no_run
/// use hgnas_core::{SearchConfig, TaskConfig};
/// use hgnas_device::DeviceKind;
/// use hgnas_fleet::ArtifactStore;
/// use hgnas_serve::{ServeConfig, Server};
/// use std::time::Duration;
///
/// let store = ArtifactStore::open("serve-artifacts").unwrap();
/// let server = Server::start(store, ServeConfig::default());
/// let mut client = server.connect();
/// client.hello("alice", 2, Duration::from_secs(5)).unwrap();
/// let (request, _shards) = client
///     .submit(
///         &TaskConfig::tiny(1),
///         &SearchConfig::fast(DeviceKind::Rtx3080),
///         &[DeviceKind::Rtx3080],
///         Duration::from_secs(5),
///     )
///     .unwrap();
/// let report = client
///     .wait_report(request, Duration::from_secs(600), |_seq, _event| {})
///     .unwrap();
/// println!("{} shard(s) done", report.shards.len());
/// drop(client);
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    cmd_tx: channel::Sender<Command>,
    engine: Option<JoinHandle<DrainReport>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    listeners: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the engine thread over `store`.
    pub fn start(store: ArtifactStore, cfg: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            cfg,
            store,
            stop: Arc::new(AtomicBool::new(false)),
            // 0 is reserved for connection-level Rejected frames.
            next_request: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            conns: Mutex::new(HashMap::new()),
        });
        let (cmd_tx, cmd_rx) = channel::unbounded();
        let engine = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || engine_loop(&shared, &cmd_rx))
        };
        Server {
            shared,
            cmd_tx,
            engine: Some(engine),
            conn_threads: Arc::new(Mutex::new(Vec::new())),
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// Registers a transport as a served connection and spawns its reader
    /// thread.
    fn serve_transport(&self, transport: Arc<dyn Transport>) {
        let conn_id = self.shared.next_conn.fetch_add(1, Ordering::SeqCst);
        self.shared
            .conns
            .lock()
            .unwrap()
            .insert(conn_id, Arc::clone(&transport));
        let shared = Arc::clone(&self.shared);
        let cmd_tx = self.cmd_tx.clone();
        let handle = std::thread::spawn(move || conn_loop(&shared, &cmd_tx, conn_id, &transport));
        self.conn_threads.lock().unwrap().push(handle);
    }

    /// Connects an in-process client over a duplex transport pair.
    pub fn connect(&self) -> SearchClient {
        let (client_end, server_end) = duplex();
        self.serve_transport(Arc::new(server_end));
        SearchClient::new(Box::new(client_end))
    }

    /// Binds a TCP listener and serves every accepted connection. Returns
    /// the bound address (use port 0 to let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn listen(&self, addr: SocketAddr) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::clone(&self.shared);
        let cmd_tx = self.cmd_tx.clone();
        let conn_threads = Arc::clone(&self.conn_threads);
        let handle = std::thread::spawn(move || loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let Ok(transport) = TcpTransport::new(stream) else {
                        continue;
                    };
                    let transport: Arc<dyn Transport> = Arc::new(transport);
                    let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                    shared
                        .conns
                        .lock()
                        .unwrap()
                        .insert(conn_id, Arc::clone(&transport));
                    let shared = Arc::clone(&shared);
                    let cmd_tx = cmd_tx.clone();
                    let h = std::thread::spawn(move || {
                        conn_loop(&shared, &cmd_tx, conn_id, &transport);
                    });
                    conn_threads.lock().unwrap().push(h);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        });
        self.listeners.lock().unwrap().push(handle);
        Ok(local)
    }

    /// Gracefully drains the daemon: the in-flight round parks at its
    /// next slice boundary (checkpoints persisted), every connection
    /// receives a [`ServerFrame::Drain`] listing parked requests, and all
    /// daemon threads are joined.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.cmd_tx.send(Command::Shutdown);
        let report = self
            .engine
            .take()
            .map(|h| h.join().expect("engine thread panicked"))
            .unwrap_or_else(|| DrainReport {
                parked: Vec::new(),
                tenants: Vec::new(),
            });
        // Unblock and join every connection reader, then the accept loops
        // (their nonblocking polls notice `stop` within one tick).
        for (_, t) in self.shared.conns.lock().unwrap().drain() {
            t.close();
        }
        for h in self.conn_threads.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        for h in self.listeners.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Not a graceful drain (no Drain frames are guaranteed): wake
        // everything so threads can exit; `shutdown` is the real path.
        if self.engine.is_some() {
            self.shared.stop.store(true, Ordering::SeqCst);
            let _ = self.cmd_tx.send(Command::Shutdown);
            for (_, t) in self.shared.conns.lock().unwrap().drain() {
                t.close();
            }
        }
    }
}

/// Per-connection reader: decodes frames, answers handshakes inline, and
/// forwards scheduling work to the engine.
fn conn_loop(
    shared: &Arc<Shared>,
    cmd_tx: &channel::Sender<Command>,
    conn_id: u64,
    transport: &Arc<dyn Transport>,
) {
    let mut tenant: Option<(String, u8)> = None;
    let mut interests = 0usize;
    let reject = |request_id: u64, reason: &str| {
        let _ = transport.send(&wire::encode_server(&ServerFrame::Rejected {
            request_id,
            reason: reason.to_string(),
        }));
    };
    loop {
        match transport.recv_timeout(shared.cfg.idle_timeout) {
            Ok(frame) => match wire::decode_client(&frame) {
                Ok(ClientFrame::Hello {
                    tenant: name,
                    priority,
                }) => {
                    tenant = Some((name, priority));
                    let _ = transport.send(&wire::encode_server(&ServerFrame::HelloAck {
                        protocol: PROTOCOL_VERSION,
                    }));
                }
                Ok(ClientFrame::Submit {
                    task,
                    config,
                    devices,
                    scenarios,
                }) => {
                    let Some((name, priority)) = tenant.clone() else {
                        reject(0, "hello required before submit");
                        continue;
                    };
                    if devices.is_empty() && scenarios.is_empty() {
                        reject(0, "submit names no devices or scenarios");
                        continue;
                    }
                    let shards = if scenarios.is_empty() {
                        devices.len()
                    } else {
                        scenarios.len()
                    };
                    let request_id = shared.next_request.fetch_add(1, Ordering::SeqCst);
                    let _ = transport.send(&wire::encode_server(&ServerFrame::Accepted {
                        request_id,
                        shards,
                    }));
                    interests += 1;
                    if cmd_tx
                        .send(Command::Submit {
                            request_id,
                            conn: conn_id,
                            tenant: name,
                            priority,
                            task,
                            config,
                            devices,
                            scenarios,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Ok(ClientFrame::Attach {
                    request_id,
                    tenant: name,
                    from_seq,
                }) => {
                    if tenant.is_none() {
                        reject(request_id, "hello required before attach");
                        continue;
                    }
                    interests += 1;
                    if cmd_tx
                        .send(Command::Attach {
                            request_id,
                            conn: conn_id,
                            tenant: name,
                            from_seq,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Ok(ClientFrame::Bye) => break,
                Err(e) => {
                    // Version skew, corruption, or a server frame echoed
                    // back: refuse and drop the connection — resynchronising
                    // an untrusted stream is not worth the ambiguity.
                    reject(0, &e.to_string());
                    break;
                }
            },
            Err(TransportError::Timeout) => {
                // Reap only connections with nothing at stake: half-open
                // sockets that never authenticated or never submitted.
                if tenant.is_none() || interests == 0 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    shared.conns.lock().unwrap().remove(&conn_id);
    let _ = cmd_tx.send(Command::Disconnect { conn: conn_id });
    transport.close();
}

/// The engine: admission rounds, event fan-out, idle GC, drain.
fn engine_loop(shared: &Arc<Shared>, cmd_rx: &channel::Receiver<Command>) -> DrainReport {
    let mut requests: HashMap<u64, RequestState> = HashMap::new();
    let mut admission = AdmissionController::new();
    let mut gc_pending = false;
    let mut draining = false;
    loop {
        // Absorb every queued command between rounds so attach/disconnect
        // land before the next round picks its streaming target.
        while let Ok(cmd) = cmd_rx.try_recv() {
            if handle_command(shared, &mut requests, &mut admission, cmd) {
                draining = true;
            }
        }
        if draining || shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(id) = admission.next() {
            run_round(shared, &mut requests, &mut admission, id);
            if !admission.has_pending() {
                gc_pending = true;
            }
            continue;
        }
        if gc_pending {
            run_gc(shared, &requests);
            gc_pending = false;
        }
        match cmd_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(cmd) => {
                if handle_command(shared, &mut requests, &mut admission, cmd) {
                    draining = true;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Drain: tell every connection which requests parked.
    let parked = admission.pending();
    let frame = wire::encode_server(&ServerFrame::Drain {
        parked: parked.clone(),
    });
    for t in shared.conns.lock().unwrap().values() {
        let _ = t.send(&frame);
    }
    DrainReport {
        parked,
        tenants: admission.tenant_usage(),
    }
}

/// Applies one command; returns `true` when the engine should drain.
fn handle_command(
    shared: &Arc<Shared>,
    requests: &mut HashMap<u64, RequestState>,
    admission: &mut AdmissionController,
    cmd: Command,
) -> bool {
    match cmd {
        Command::Submit {
            request_id,
            conn,
            tenant,
            priority,
            task,
            config,
            devices,
            scenarios,
        } => {
            // Scenario shards win over the legacy one-per-device shape,
            // mirroring `run_fleet`'s dispatch.
            let specs: Vec<ShardSpec> = if scenarios.is_empty() {
                devices
                    .iter()
                    .map(|&d| {
                        let mut cfg = config.clone();
                        cfg.device = d;
                        ShardSpec::new(task.clone(), cfg)
                    })
                    .collect()
            } else {
                scenarios
                    .into_iter()
                    .map(|s| ShardSpec::new(s.task, s.config).with_scenario(s.label))
                    .collect()
            };
            let shard_meta = specs
                .iter()
                .map(|s| (s.scenario.clone(), s.task.k, s.task.out_classes()))
                .collect();
            admission.admit(request_id, &tenant, priority);
            let shards = specs.len();
            requests.insert(
                request_id,
                RequestState {
                    tenant,
                    specs,
                    k: task.k,
                    classes: task.classes(),
                    shard_meta,
                    conn: Some(conn),
                    seq: 0,
                    events: Vec::new(),
                    report_frame: None,
                    rounds: 0,
                    shard_slices: vec![0; shards],
                    shard_prefix_builds: vec![0; shards],
                    finished: (0..shards).map(|_| None).collect(),
                },
            );
        }
        Command::Attach {
            request_id,
            conn,
            tenant,
            from_seq,
        } => {
            let transport = shared.conns.lock().unwrap().get(&conn).cloned();
            let Some(transport) = transport else {
                return false;
            };
            let reject = |reason: &str| {
                let _ = transport.send(&wire::encode_server(&ServerFrame::Rejected {
                    request_id,
                    reason: reason.to_string(),
                }));
            };
            match requests.get_mut(&request_id) {
                None => reject("unknown request"),
                Some(req) if req.tenant != tenant => reject("tenant mismatch"),
                Some(req) => {
                    req.conn = Some(conn);
                    let start = usize::try_from(from_seq).unwrap_or(usize::MAX);
                    for frame in req.events.iter().skip(start.min(req.events.len())) {
                        let _ = transport.send(frame);
                    }
                    if let Some(report) = &req.report_frame {
                        let _ = transport.send(report);
                    }
                }
            }
        }
        Command::Disconnect { conn } => {
            for req in requests.values_mut() {
                if req.conn == Some(conn) {
                    req.conn = None;
                }
            }
        }
        Command::Shutdown => return true,
    }
    false
}

/// Runs one admission round for `request_id`: a budgeted scheduler pass
/// over the request's shards, streaming + buffering every event.
fn run_round(
    shared: &Arc<Shared>,
    requests: &mut HashMap<u64, RequestState>,
    admission: &mut AdmissionController,
    request_id: u64,
) {
    let Some(req) = requests.get_mut(&request_id) else {
        admission.complete(request_id);
        return;
    };
    if req.report_frame.is_some() {
        admission.complete(request_id);
        return;
    }
    // Only shards without a finished result get scheduled: a finished
    // shard's outcome is carried in `req.finished`, so re-running it from
    // its final checkpoint would burn round budget without progress —
    // with more shards than `slices_per_round` that burn is unbounded
    // (no round could ever re-finish them all at once).
    let pending: Vec<usize> = req
        .finished
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.is_none().then_some(i))
        .collect();
    if pending.is_empty() {
        admission.complete(request_id);
        return;
    }
    let grant = (shared.cfg.preemption_stride > 0).then(|| shared.cfg.slices_per_round.max(1));
    // The round's stop flag is the daemon's: a shutdown mid-round parks
    // the shards at the next slice boundary.
    let scheduler = Scheduler::new(
        pending.iter().map(|&i| req.specs[i].clone()).collect(),
        SchedulerConfig {
            threads: shared.cfg.threads,
            preemption_stride: shared.cfg.preemption_stride,
            checkpoint_every: shared.cfg.checkpoint_every,
            oracle: shared.cfg.oracle.clone(),
            max_slices: grant,
            session_memory_budget: shared.cfg.session_memory_budget,
            stop: Some(Arc::clone(&shared.stop)),
        },
    );
    let transport = req
        .conn
        .and_then(|c| shared.conns.lock().unwrap().get(&c).cloned());
    let (tx, rx) = event_channel();
    let result = {
        let sref = &scheduler;
        let store = &shared.store;
        std::thread::scope(|s| {
            let handle = s.spawn(move || sref.run(Some(store), Some(tx)));
            for mut event in rx.iter() {
                // Scheduler indices are round-local (pending shards only);
                // stream them in the request's own numbering.
                event.set_shard(pending[event.shard()]);
                let frame = wire::encode_server(&ServerFrame::Event {
                    request_id,
                    seq: req.seq,
                    event,
                });
                req.seq += 1;
                if let Some(t) = &transport {
                    // A dead connection is just a detached client; the
                    // buffer keeps its place for re-attach.
                    let _ = t.send(&frame);
                }
                req.events.push(frame);
            }
            handle.join().expect("scheduler thread panicked")
        })
    };
    req.rounds += 1;
    match result {
        Err(e) => {
            // Store failure: terminal for the request, reported like a
            // rejection and replayed to late attachers.
            let frame = wire::encode_server(&ServerFrame::Rejected {
                request_id,
                reason: format!("artifact store error: {e}"),
            });
            if let Some(t) = &transport {
                let _ = t.send(&frame);
            }
            req.report_frame = Some(frame);
            admission.complete(request_id);
        }
        Ok(report) => {
            let round_slices: u64 = report.shards.iter().map(|s| s.slices).sum();
            admission.charge(request_id, round_slices);
            for (j, s) in report.shards.into_iter().enumerate() {
                let i = pending[j];
                req.shard_slices[i] += s.slices;
                req.shard_prefix_builds[i] += s.prefix_builds;
                if s.outcome.is_some() {
                    req.finished[i] = Some(s);
                }
            }
            if req.finished.iter().all(Option::is_some) {
                let mut shards = Vec::with_capacity(req.finished.len());
                for i in 0..req.finished.len() {
                    let s = req.finished[i].take().expect("checked finished");
                    shards.push(WireShardReport {
                        scenario: req.shard_meta[i].0.clone(),
                        k: req.shard_meta[i].1,
                        out_classes: req.shard_meta[i].2,
                        device: s.device,
                        outcome: s.outcome.expect("checked finished"),
                        pareto: s.pareto,
                        warm_predictor: s.warm_predictor,
                        resumed_from_generation: s.resumed_from_generation,
                        slices: req.shard_slices[i],
                        prefix_builds: req.shard_prefix_builds[i],
                    });
                }
                let frame = wire::encode_server(&ServerFrame::Report {
                    request_id,
                    report: WireReport {
                        k: req.k,
                        classes: req.classes,
                        shards,
                        rounds: req.rounds,
                        slices: admission.charged(request_id),
                    },
                });
                if let Some(t) = &transport {
                    let _ = t.send(&frame);
                }
                req.report_frame = Some(frame);
                admission.complete(request_id);
            }
        }
    }
}

/// Idle-loop GC: sweep fingerprints no request owns, prune to the byte
/// budget, broadcast the combined report.
fn run_gc(shared: &Arc<Shared>, requests: &HashMap<u64, RequestState>) {
    let Some(budget) = shared.cfg.store_budget_bytes else {
        return;
    };
    let mut live = Vec::new();
    let mut live_sessions = Vec::new();
    for req in requests.values() {
        for spec in &req.specs {
            live.push(ArtifactKey {
                device: spec.config.device,
                fingerprint: search_fingerprint(&spec.task, &spec.config),
            });
            live.push(ArtifactKey {
                device: spec.config.device,
                fingerprint: persona_predictor_fingerprint(
                    &spec.task.predictor_context(),
                    &spec.config.predictor,
                    spec.config.persona.as_ref(),
                ),
            });
            live_sessions.push(PrefixKey {
                fingerprint: prefix_fingerprint(&spec.task, &spec.config),
            });
        }
    }
    let mut total = PruneReport::default();
    if let Ok(r) = shared.store.sweep_stale(&live, &live_sessions) {
        total.removed_files += r.removed_files;
        total.removed_bytes += r.removed_bytes;
        total.retained_bytes = r.retained_bytes;
    }
    if let Ok(r) = shared.store.prune(budget) {
        total.removed_files += r.removed_files;
        total.removed_bytes += r.removed_bytes;
        total.retained_bytes = r.retained_bytes;
    }
    let frame = wire::encode_server(&ServerFrame::Pruned { report: total });
    for t in shared.conns.lock().unwrap().values() {
        let _ = t.send(&frame);
    }
}
