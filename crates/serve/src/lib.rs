//! Search-as-a-service: a long-lived daemon that accepts HGNAS search
//! requests over a framed wire protocol and streams results back.
//!
//! The crate layers four pieces over `hgnas-fleet`:
//!
//! - [`transport`] — length-prefix-free framed byte transports: an
//!   in-process duplex pair and a `std::net` TCP backend behind one
//!   [`Transport`] trait (frames carry their own CRC; TCP adds a u32
//!   length prefix for stream reassembly).
//! - [`admission`] — the [`AdmissionController`]: deterministic weighted
//!   fair-share queueing of admitted requests by tenant priority and
//!   slice charge.
//! - [`server`] — the [`Server`] daemon: per-connection reader threads, a
//!   single engine thread running budgeted scheduler rounds, event
//!   buffering for disconnect/re-attach, idle-loop artifact-store GC, and
//!   graceful drain.
//! - [`client`] — the blocking [`SearchClient`].
//!
//! The core contract: a search served by the daemon — through admission,
//! parking, resumption, even across client disconnects — produces a
//! report **bit-identical** to `hgnas_fleet::run_fleet` of the same
//! configuration. The daemon adds multi-tenancy, never noise.

pub mod admission;
pub mod client;
pub mod server;
pub mod transport;

pub use admission::{AdmissionController, TenantUsage};
pub use client::{ClientError, SearchClient};
pub use server::{DrainReport, ServeConfig, Server};
pub use transport::{
    duplex, DuplexTransport, TcpTransport, Transport, TransportError, MAX_FRAME_BYTES,
};
