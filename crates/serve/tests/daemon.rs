//! Daemon behavior tests: protocol policing, idle reaping, TCP serving,
//! idle-loop store GC, and graceful drain with bit-identical resume.
//!
//! The full (threads × stride × tenants) bit-identity matrix against
//! `run_fleet` lives in the workspace-level `daemon_equivalence` test;
//! here each test exercises one daemon-specific behavior with the
//! cheapest search that triggers it.

use hgnas_core::{SearchConfig, TaskConfig};
use hgnas_device::DeviceKind;
use hgnas_fleet::wire::{self, ServerFrame};
use hgnas_fleet::{run_fleet, ArtifactStore, FleetConfig};
use hgnas_predictor::PredictorConfig;
use hgnas_serve::{
    ClientError, SearchClient, ServeConfig, Server, TcpTransport, Transport, TransportError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const TICK: Duration = Duration::from_secs(10);
/// Per-frame wait while a search is running: rounds for another tenant
/// can sit between two of ours.
const SEARCH: Duration = Duration::from_secs(600);

fn tiny_config(device: DeviceKind) -> SearchConfig {
    let mut cfg = SearchConfig::fast(device);
    cfg.ea_stage1.iterations = 1;
    cfg.ea_stage1.population = 3;
    cfg.ea_stage2.iterations = 3;
    cfg.ea_stage2.population = 6;
    cfg.epochs_stage1 = 1;
    cfg.epochs_stage2 = 2;
    cfg.predictor = PredictorConfig {
        train_samples: 60,
        val_samples: 20,
        epochs: 6,
        lr: 3e-3,
        gcn_dims: vec![16, 16],
        mlp_hidden: vec![12],
        seed: 1,
        global_node: true,
        batch: 2,
    };
    cfg.eval_clouds = 20;
    cfg
}

/// A unique, self-cleaning store directory per test.
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let path =
            std::env::temp_dir().join(format!("hgnas-serve-test-{tag}-{}-{n}", std::process::id()));
        TempStore { path }
    }

    fn open(&self) -> ArtifactStore {
        ArtifactStore::open(&self.path).expect("store dir")
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        threads: 1,
        preemption_stride: 1,
        slices_per_round: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn submit_before_hello_is_rejected() {
    let temp = TempStore::new("nohello");
    let server = Server::start(temp.open(), serve_config());
    let mut client = server.connect();
    let err = client
        .submit(
            &TaskConfig::tiny(1),
            &tiny_config(DeviceKind::Rtx3080),
            &[DeviceKind::Rtx3080],
            TICK,
        )
        .unwrap_err();
    match err {
        ClientError::Rejected { request_id, reason } => {
            assert_eq!(request_id, 0, "connection-level rejection");
            assert!(reason.contains("hello"), "{reason}");
        }
        other => panic!("expected rejection, got {other}"),
    }
    drop(client);
    server.shutdown();
}

#[test]
fn undecodable_frame_is_rejected_and_connection_dropped() {
    let temp = TempStore::new("garbage");
    let server = Server::start(temp.open(), serve_config());
    let addr = server.listen("127.0.0.1:0".parse().unwrap()).unwrap();
    let raw = TcpTransport::connect(addr).unwrap();
    raw.send(b"not a wire frame at all").unwrap();
    let reply = raw.recv_timeout(TICK).unwrap();
    match wire::decode_server(&reply).unwrap() {
        ServerFrame::Rejected { request_id, .. } => assert_eq!(request_id, 0),
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(
        raw.recv_timeout(TICK),
        Err(TransportError::Closed),
        "the daemon drops an undecodable connection"
    );
    server.shutdown();
}

#[test]
fn idle_unauthenticated_connection_is_reaped() {
    let temp = TempStore::new("idle");
    let mut cfg = serve_config();
    cfg.idle_timeout = Duration::from_millis(50);
    let server = Server::start(temp.open(), cfg);
    let addr = server.listen("127.0.0.1:0".parse().unwrap()).unwrap();
    let raw = TcpTransport::connect(addr).unwrap();
    // Never say hello: the daemon closes us after its idle timeout.
    assert_eq!(raw.recv_timeout(TICK), Err(TransportError::Closed));
    server.shutdown();
}

#[test]
fn tcp_client_runs_a_search_end_to_end() {
    let temp = TempStore::new("tcp");
    let server = Server::start(temp.open(), serve_config());
    let addr = server.listen("127.0.0.1:0".parse().unwrap()).unwrap();
    let mut client = SearchClient::connect_tcp(addr).unwrap();
    let protocol = client.hello("carol", 1, TICK).unwrap();
    assert_eq!(protocol, hgnas_fleet::PROTOCOL_VERSION);
    let task = TaskConfig::tiny(61);
    let cfg = tiny_config(DeviceKind::JetsonTx2);
    let (request, shards) = client
        .submit(&task, &cfg, &[DeviceKind::JetsonTx2], TICK)
        .unwrap();
    assert_eq!(shards, 1);
    let mut events = 0u64;
    let report = client
        .wait_report(request, SEARCH, |_seq, _event| events += 1)
        .unwrap();
    assert!(events > 0, "events streamed before the report");
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.shards[0].device, DeviceKind::JetsonTx2);
    assert!(!report.shards[0].outcome.best.genome.is_empty());
    assert!(!report.shards[0].pareto.is_empty());
    assert!(report.rounds >= 1 && report.slices >= 1);
    client.bye().unwrap();
    drop(client);
    server.shutdown();
}

/// Satellite: between requests, an over-budget store shrinks — the idle
/// loop sweeps + prunes and broadcasts the combined report.
#[test]
fn over_budget_store_shrinks_between_requests() {
    let temp = TempStore::new("gc");
    let mut cfg = serve_config();
    // A 1-byte budget: after each idle GC, essentially nothing survives.
    cfg.store_budget_bytes = Some(1);
    let server = Server::start(temp.open(), cfg);
    let mut client = server.connect();
    client.hello("dora", 1, TICK).unwrap();
    let task = TaskConfig::tiny(67);
    let search = tiny_config(DeviceKind::Rtx3080);

    let (first, _) = client
        .submit(&task, &search, &[DeviceKind::Rtx3080], TICK)
        .unwrap();
    let first_report = client.wait_report(first, SEARCH, |_, _| {}).unwrap();

    // The search persisted artifacts (checkpoints, predictor, score
    // cache); the idle GC must now shrink the store under the budget and
    // tell us about it.
    let pruned = client.wait_pruned(TICK).unwrap();
    assert!(
        pruned.removed_bytes > 0 && pruned.removed_files > 0,
        "the over-budget store shrank: {pruned:?}"
    );
    assert!(
        pruned.retained_bytes <= 1,
        "retained fits the budget: {pruned:?}"
    );

    // A fresh request on the emptied store cold-starts to the identical
    // result.
    let (second, _) = client
        .submit(&task, &search, &[DeviceKind::Rtx3080], TICK)
        .unwrap();
    let second_report = client.wait_report(second, SEARCH, |_, _| {}).unwrap();
    let (a, b) = (
        &first_report.shards[0].outcome,
        &second_report.shards[0].outcome,
    );
    assert_eq!(a.best.genome, b.best.genome);
    assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
    assert_eq!(a.search_hours.to_bits(), b.search_hours.to_bits());
    drop(client);
    server.shutdown();
}

/// Graceful drain parks the in-flight request at a slice boundary with
/// checkpoints persisted; a new daemon over the same store resumes it and
/// finishes bit-identical to a direct `run_fleet`.
#[test]
fn drain_parks_and_a_new_daemon_resumes_bit_identically() {
    let temp = TempStore::new("drain");
    let task = TaskConfig::tiny(71);
    let search = tiny_config(DeviceKind::RaspberryPi3B);
    let devices = [DeviceKind::RaspberryPi3B];

    // Direct reference: same configs, no daemon, no store.
    let mut fleet = FleetConfig::new(devices.to_vec());
    fleet.threads = 1;
    fleet.preemption_stride = 1;
    let reference = run_fleet(&task, &search, &fleet, None).unwrap();

    let mut cfg = serve_config();
    cfg.slices_per_round = 1; // park as early as possible
    let server = Server::start(temp.open(), cfg.clone());
    let mut client = server.connect();
    client.hello("erin", 2, TICK).unwrap();
    let (request, _) = client.submit(&task, &search, &devices, TICK).unwrap();
    // Wait for the round to genuinely start before pulling the plug.
    let first = client.next_event(request, SEARCH).unwrap();
    assert!(first.is_ok(), "an event precedes any report");
    let drain = server.shutdown();
    assert_eq!(drain.parked, vec![request], "the request parked mid-search");
    assert_eq!(drain.tenants.len(), 1);
    assert_eq!(drain.tenants[0].tenant, "erin");

    // The client hears about the drain (after any already-queued events).
    let drained = loop {
        match client.next_event(request, TICK) {
            Ok(Ok(_event)) => continue,
            Err(ClientError::Drained(parked)) => break parked,
            other => panic!("expected drain notice, got {other:?}"),
        }
    };
    assert_eq!(drained, vec![request]);
    drop(client);

    // A fresh daemon over the same store: resubmitting the same configs
    // resumes the parked shards and finishes bit-identically.
    let server = Server::start(temp.open(), cfg);
    let mut client = server.connect();
    client.hello("erin", 2, TICK).unwrap();
    let (resumed, _) = client.submit(&task, &search, &devices, TICK).unwrap();
    let report = client.wait_report(resumed, SEARCH, |_, _| {}).unwrap();
    assert!(
        report.shards[0].resumed_from_generation.is_some(),
        "round 2 resumed a parked checkpoint"
    );
    let (got, want) = (&report.shards[0].outcome, &reference.reports[0].outcome);
    assert_eq!(got.best.genome, want.best.genome);
    assert_eq!(got.best.score.to_bits(), want.best.score.to_bits());
    assert_eq!(
        got.best.latency_ms.to_bits(),
        want.best.latency_ms.to_bits()
    );
    assert_eq!(got.search_hours.to_bits(), want.search_hours.to_bits());
    assert_eq!(got.eval_stats, want.eval_stats);
    drop(client);
    server.shutdown();
}
