//! Pluggable tasks over the synthetic shape families.
//!
//! A [`Task`] owns the data side of a search scenario: how the dataset is
//! generated, how clouds are stacked into batches, and what the model
//! predicts (per cloud or per point). Three tasks ship built-in:
//!
//! - [`TaskKind::Classification`] — the original SynthNet40 shape
//!   classification. Its `generate`/`batches` are *the same code paths* as
//!   [`SynthNet40::generate`]/[`SynthNet40::batches`], so everything
//!   downstream stays bit-identical to the pre-task-trait pipeline.
//! - [`TaskKind::Segmentation`] — per-point part labelling over the same
//!   shapes: every point is labelled with its octant (8 parts), a proxy for
//!   part segmentation that is derivable from geometry alone and therefore
//!   fully deterministic. Points near the octant planes are genuinely
//!   ambiguous under jitter, which gives the accuracy axis a smooth
//!   capacity gradient just like the classification task has.
//! - [`TaskKind::Robustness`] — classification with a *corrupted* test
//!   split: a deterministic fraction of each test cloud's points is
//!   replaced by uniform outliers in the unit sphere and the rest jittered,
//!   while training stays clean. Scoring against this split selects for
//!   architectures whose accuracy survives sensor noise.

use crate::dataset::{Batch, DatasetConfig, PointCloud, SynthNet40};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Number of part labels the segmentation task assigns (the eight octants).
pub const SEGMENTATION_PARTS: usize = 8;

/// Fraction of test-split points the robustness task replaces with uniform
/// outliers.
pub const ROBUSTNESS_OUTLIER_FRACTION: f32 = 0.08;

/// Jitter σ the robustness task adds to the surviving test-split points.
pub const ROBUSTNESS_JITTER_SIGMA: f32 = 0.03;

/// The built-in task families. The discriminant is the wire/fingerprint
/// code — append-only, never reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskKind {
    /// Per-cloud shape classification (the paper's task).
    #[default]
    Classification,
    /// Per-point part segmentation over the same shapes.
    Segmentation,
    /// Classification evaluated on a corrupted/noisy test split.
    Robustness,
}

impl TaskKind {
    /// Every task kind, in stable code order.
    pub const ALL: [TaskKind; 3] = [
        TaskKind::Classification,
        TaskKind::Segmentation,
        TaskKind::Robustness,
    ];

    /// Stable code for codecs and fingerprints.
    pub fn code(self) -> u8 {
        match self {
            TaskKind::Classification => 0,
            TaskKind::Segmentation => 1,
            TaskKind::Robustness => 2,
        }
    }

    /// Inverse of [`TaskKind::code`].
    pub fn from_code(code: u8) -> Option<TaskKind> {
        TaskKind::ALL.iter().copied().find(|k| k.code() == code)
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Classification => "classification",
            TaskKind::Segmentation => "segmentation",
            TaskKind::Robustness => "robustness",
        }
    }

    /// The task implementation behind this kind.
    pub fn task(self) -> &'static dyn Task {
        match self {
            TaskKind::Classification => &Classification,
            TaskKind::Segmentation => &Segmentation,
            TaskKind::Robustness => &Robustness,
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The data side of a search scenario: dataset generation, batching, and
/// the prediction target. Model construction and metric dispatch key off
/// [`Task::per_point`] and [`Task::out_classes`]; everything else about
/// training is task-agnostic.
pub trait Task: Send + Sync + fmt::Debug {
    /// Which built-in family this is.
    fn kind(&self) -> TaskKind;

    /// Generates the dataset for `cfg`. Deterministic in `cfg.seed`.
    fn generate(&self, cfg: &DatasetConfig) -> SynthNet40;

    /// Stacks clouds into batches, filling whatever label layout the task
    /// predicts against (per-cloud `labels`, and `point_labels` for
    /// per-point tasks).
    fn batches(&self, clouds: &[PointCloud], batch_size: usize) -> Vec<Batch>;

    /// Width of the model's output layer for this dataset config.
    fn out_classes(&self, cfg: &DatasetConfig) -> usize;

    /// Whether predictions (and labels) are per point rather than per
    /// cloud.
    fn per_point(&self) -> bool;
}

/// The original SynthNet40 classification task. Pure delegation to
/// [`SynthNet40`] — the bit-identity anchor for the task-generic pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Classification;

impl Task for Classification {
    fn kind(&self) -> TaskKind {
        TaskKind::Classification
    }

    fn generate(&self, cfg: &DatasetConfig) -> SynthNet40 {
        SynthNet40::generate(cfg)
    }

    fn batches(&self, clouds: &[PointCloud], batch_size: usize) -> Vec<Batch> {
        SynthNet40::batches(clouds, batch_size)
    }

    fn out_classes(&self, cfg: &DatasetConfig) -> usize {
        cfg.classes
    }

    fn per_point(&self) -> bool {
        false
    }
}

/// Octant label of one xyz point: bit 0 = x ≥ 0, bit 1 = y ≥ 0,
/// bit 2 = z ≥ 0.
fn octant(p: &[f32]) -> usize {
    usize::from(p[0] >= 0.0) | (usize::from(p[1] >= 0.0) << 1) | (usize::from(p[2] >= 0.0) << 2)
}

/// Per-point part labels for a cloud: its points' octants.
pub fn segment_labels(points: &[f32]) -> Vec<usize> {
    points.chunks(3).map(octant).collect()
}

/// Per-point octant segmentation over the classification shapes.
#[derive(Debug, Clone, Copy)]
pub struct Segmentation;

impl Task for Segmentation {
    fn kind(&self) -> TaskKind {
        TaskKind::Segmentation
    }

    fn generate(&self, cfg: &DatasetConfig) -> SynthNet40 {
        SynthNet40::generate(cfg)
    }

    fn batches(&self, clouds: &[PointCloud], batch_size: usize) -> Vec<Batch> {
        SynthNet40::batches(clouds, batch_size)
            .into_iter()
            .map(|b| {
                let labels = segment_labels(b.points.data());
                b.with_point_labels(labels)
            })
            .collect()
    }

    fn out_classes(&self, _cfg: &DatasetConfig) -> usize {
        SEGMENTATION_PARTS
    }

    fn per_point(&self) -> bool {
        true
    }
}

/// Classification with a deterministically corrupted test split.
#[derive(Debug, Clone, Copy)]
pub struct Robustness;

/// Corrupts one cloud in place: replaces a fraction of points with uniform
/// outliers in the unit sphere and jitters the rest. `stream` keys the
/// cloud's private RNG so corruption is independent of evaluation order.
fn corrupt_cloud(cloud: &mut PointCloud, stream: u64) {
    let mut rng = StdRng::seed_from_u64(stream);
    let n = cloud.num_points();
    let outliers = ((n as f32) * ROBUSTNESS_OUTLIER_FRACTION) as usize;
    for _ in 0..outliers {
        let i = rng.gen_range(0..n);
        for d in 0..3 {
            cloud.points[i * 3 + d] = rng.gen_range(-1.0f32..1.0);
        }
    }
    for v in cloud.points.iter_mut() {
        *v += rng.gen_range(-ROBUSTNESS_JITTER_SIGMA..ROBUSTNESS_JITTER_SIGMA);
    }
}

impl Task for Robustness {
    fn kind(&self) -> TaskKind {
        TaskKind::Robustness
    }

    fn generate(&self, cfg: &DatasetConfig) -> SynthNet40 {
        let mut ds = SynthNet40::generate(cfg);
        // Train stays clean; the test split is corrupted under per-cloud
        // streams derived from the dataset seed (never from shared RNG
        // state, so generation order can never leak into the corruption).
        const ROBU: u64 = 0x524f_4255;
        for (i, cloud) in ds.test.iter_mut().enumerate() {
            corrupt_cloud(
                cloud,
                cfg.seed ^ ROBU.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
            );
        }
        ds
    }

    fn batches(&self, clouds: &[PointCloud], batch_size: usize) -> Vec<Batch> {
        SynthNet40::batches(clouds, batch_size)
    }

    fn out_classes(&self, cfg: &DatasetConfig) -> usize {
        cfg.classes
    }

    fn per_point(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_stay_stable() {
        for kind in TaskKind::ALL {
            assert_eq!(TaskKind::from_code(kind.code()), Some(kind));
            assert_eq!(kind.task().kind(), kind);
        }
        assert_eq!(TaskKind::Classification.code(), 0);
        assert_eq!(TaskKind::Segmentation.code(), 1);
        assert_eq!(TaskKind::Robustness.code(), 2);
        assert_eq!(TaskKind::from_code(99), None);
    }

    #[test]
    fn classification_task_is_the_legacy_path() {
        let cfg = DatasetConfig::tiny(11);
        let task = TaskKind::Classification.task();
        let via_task = task.generate(&cfg);
        let direct = SynthNet40::generate(&cfg);
        assert_eq!(via_task.train, direct.train);
        assert_eq!(via_task.test, direct.test);
        let tb = task.batches(&direct.train, 4);
        let db = SynthNet40::batches(&direct.train, 4);
        assert_eq!(tb.len(), db.len());
        for (a, b) in tb.iter().zip(&db) {
            assert_eq!(a.points.data(), b.points.data());
            assert_eq!(a.labels, b.labels);
            assert!(a.point_labels.is_empty());
        }
        assert_eq!(task.out_classes(&cfg), cfg.classes);
        assert!(!task.per_point());
    }

    #[test]
    fn segmentation_labels_every_point_with_its_octant() {
        let cfg = DatasetConfig::tiny(12);
        let task = TaskKind::Segmentation.task();
        let ds = task.generate(&cfg);
        let batches = task.batches(&ds.train, 4);
        for b in &batches {
            assert_eq!(b.point_labels.len(), b.points.dims()[0]);
            for (p, &lab) in b.points.data().chunks(3).zip(&b.point_labels) {
                assert_eq!(lab, octant(p));
                assert!(lab < SEGMENTATION_PARTS);
            }
        }
        assert_eq!(task.out_classes(&cfg), SEGMENTATION_PARTS);
        assert!(task.per_point());
        // All octants actually occur (clouds are centred in the unit
        // sphere, so no octant is empty across a whole split).
        let mut seen = [false; SEGMENTATION_PARTS];
        for b in &batches {
            for &l in &b.point_labels {
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "octant coverage {seen:?}");
    }

    #[test]
    fn robustness_corrupts_test_only_and_deterministically() {
        let cfg = DatasetConfig::tiny(13);
        let task = TaskKind::Robustness.task();
        let a = task.generate(&cfg);
        let b = task.generate(&cfg);
        let clean = SynthNet40::generate(&cfg);
        for (x, y) in a.train.iter().zip(&clean.train) {
            assert_eq!(x, y, "train split must stay clean");
        }
        assert_eq!(a.test.len(), clean.test.len());
        let mut changed = 0;
        for (x, y) in a.test.iter().zip(&clean.test) {
            assert_eq!(x.label, y.label);
            if x.points != y.points {
                changed += 1;
            }
        }
        assert_eq!(changed, a.test.len(), "every test cloud is corrupted");
        for (x, y) in a.test.iter().zip(&b.test) {
            assert_eq!(x, y, "corruption is deterministic");
        }
    }
}
