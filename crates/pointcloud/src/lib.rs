//! SynthNet40 — a procedurally generated point-cloud classification dataset.
//!
//! The paper evaluates on ModelNet40 (12k CAD meshes, 40 classes), which is
//! not redistributable here; SynthNet40 stands in for it (substitution S2 in
//! `DESIGN.md`). Forty parametric 3-D shape families — quadrics, polyhedra,
//! surfaces of revolution, and multi-part composites — are sampled on their
//! surfaces, normalised to the unit sphere, and augmented exactly the way
//! point-cloud pipelines augment ModelNet40 (gravity-axis rotation, jitter,
//! anisotropic scale).
//!
//! Two properties of ModelNet40 that the paper's numbers depend on are
//! engineered in:
//!
//! - **class imbalance** (test-set sizes vary per class) together with
//!   **graded per-class difficulty** (noise multipliers), so overall accuracy
//!   exceeds balanced accuracy (OA 92.9 vs mAcc 88.9 for DGCNN in Tab. II);
//! - **architecture sensitivity**: accuracy responds smoothly to model
//!   capacity, so the NAS loop has a real signal to optimise.
//!
//! # Example
//!
//! ```
//! use hgnas_pointcloud::{DatasetConfig, SynthNet40};
//!
//! let ds = SynthNet40::generate(&DatasetConfig::tiny(7));
//! assert!(ds.train.len() > 0 && ds.test.len() > 0);
//! let cloud = &ds.train[0];
//! assert_eq!(cloud.points.len(), cloud.num_points() * 3);
//! ```

mod dataset;
mod shapes;
mod task;

pub use dataset::{fresh_cache_source, Batch, DatasetConfig, PointCloud, SynthNet40};
pub use shapes::{class_name, class_spec, sample_class, NUM_CLASSES};
pub use task::{
    segment_labels, Classification, Robustness, Segmentation, Task, TaskKind,
    ROBUSTNESS_JITTER_SIGMA, ROBUSTNESS_OUTLIER_FRACTION, SEGMENTATION_PARTS,
};
