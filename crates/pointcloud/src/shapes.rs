//! Parametric shape generators: the 40 SynthNet40 classes.

use rand::Rng;
use std::f32::consts::PI;

/// Number of SynthNet40 classes (matching ModelNet40).
pub const NUM_CLASSES: usize = 40;

/// A surface-sampleable primitive. All primitives are centred at the origin
/// in their canonical pose; composites place scaled/offset copies.
#[derive(Debug, Clone, PartialEq)]
pub enum Primitive {
    /// Unit sphere scaled to radii `(a, b, c)` (an ellipsoid).
    Ellipsoid(f32, f32, f32),
    /// Axis-aligned box with half-extents `(hx, hy, hz)`, surface sampled
    /// area-weighted.
    Box3(f32, f32, f32),
    /// Cylinder of radius `r`, half-height `h`, aligned with z, with caps.
    Cylinder(f32, f32),
    /// Cone of base radius `r`, height `h` (apex up), with base disk.
    Cone(f32, f32),
    /// Torus of major radius `major` and tube radius `minor`, in the xy plane.
    Torus(f32, f32),
    /// Rectangular plate (half-extents `hx, hy`) in the xy plane.
    Plane(f32, f32),
    /// Saddle patch `z = s·(x² − y²)` over `[-1,1]²`.
    Saddle(f32),
    /// Paraboloid patch `z = s·(x² + y²)` over the unit disk.
    Paraboloid(f32),
    /// Sine sheet `z = a·sin(f·x)` over `[-1,1]²`.
    Wave(f32, f32),
    /// Helical tube: `turns` turns of radius `major`, pitch `pitch`, tube
    /// radius `minor`.
    Helix {
        /// Helix radius.
        major: f32,
        /// Tube radius.
        minor: f32,
        /// Vertical rise per turn.
        pitch: f32,
        /// Number of turns.
        turns: f32,
    },
    /// Regular tetrahedron with circumradius `r`.
    Tetrahedron(f32),
    /// Regular octahedron with circumradius `r`.
    Octahedron(f32),
}

fn unit_sphere<R: Rng>(rng: &mut R) -> [f32; 3] {
    loop {
        let x = rng.gen_range(-1.0f32..1.0);
        let y = rng.gen_range(-1.0f32..1.0);
        let z = rng.gen_range(-1.0f32..1.0);
        let n2 = x * x + y * y + z * z;
        if n2 > 1e-6 && n2 <= 1.0 {
            let n = n2.sqrt();
            return [x / n, y / n, z / n];
        }
    }
}

fn triangle_point<R: Rng>(rng: &mut R, a: [f32; 3], b: [f32; 3], c: [f32; 3]) -> [f32; 3] {
    let (mut u, mut v) = (rng.gen_range(0.0f32..1.0), rng.gen_range(0.0f32..1.0));
    if u + v > 1.0 {
        u = 1.0 - u;
        v = 1.0 - v;
    }
    [
        a[0] + u * (b[0] - a[0]) + v * (c[0] - a[0]),
        a[1] + u * (b[1] - a[1]) + v * (c[1] - a[1]),
        a[2] + u * (b[2] - a[2]) + v * (c[2] - a[2]),
    ]
}

fn polyhedron_surface<R: Rng>(rng: &mut R, verts: &[[f32; 3]], faces: &[[usize; 3]]) -> [f32; 3] {
    // Area-weighted face choice.
    let area = |f: &[usize; 3]| -> f32 {
        let (a, b, c) = (verts[f[0]], verts[f[1]], verts[f[2]]);
        let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
        let cx = u[1] * v[2] - u[2] * v[1];
        let cy = u[2] * v[0] - u[0] * v[2];
        let cz = u[0] * v[1] - u[1] * v[0];
        0.5 * (cx * cx + cy * cy + cz * cz).sqrt()
    };
    let total: f32 = faces.iter().map(area).sum();
    let mut pick = rng.gen_range(0.0..total);
    for f in faces {
        let a = area(f);
        if pick <= a {
            return triangle_point(rng, verts[f[0]], verts[f[1]], verts[f[2]]);
        }
        pick -= a;
    }
    let f = faces[faces.len() - 1];
    triangle_point(rng, verts[f[0]], verts[f[1]], verts[f[2]])
}

impl Primitive {
    /// Samples one point on the primitive's surface.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> [f32; 3] {
        match *self {
            Primitive::Ellipsoid(a, b, c) => {
                let p = unit_sphere(rng);
                [p[0] * a, p[1] * b, p[2] * c]
            }
            Primitive::Box3(hx, hy, hz) => {
                let areas = [hy * hz, hy * hz, hx * hz, hx * hz, hx * hy, hx * hy];
                let total: f32 = areas.iter().sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut face = 5;
                for (i, &a) in areas.iter().enumerate() {
                    if pick <= a {
                        face = i;
                        break;
                    }
                    pick -= a;
                }
                let u = rng.gen_range(-1.0f32..1.0);
                let v = rng.gen_range(-1.0f32..1.0);
                match face {
                    0 => [hx, u * hy, v * hz],
                    1 => [-hx, u * hy, v * hz],
                    2 => [u * hx, hy, v * hz],
                    3 => [u * hx, -hy, v * hz],
                    4 => [u * hx, v * hy, hz],
                    _ => [u * hx, v * hy, -hz],
                }
            }
            Primitive::Cylinder(r, h) => {
                let lateral = 2.0 * PI * r * (2.0 * h);
                let caps = 2.0 * PI * r * r;
                if rng.gen_range(0.0..lateral + caps) < lateral {
                    let t = rng.gen_range(0.0..2.0 * PI);
                    [r * t.cos(), r * t.sin(), rng.gen_range(-h..h)]
                } else {
                    let t = rng.gen_range(0.0..2.0 * PI);
                    let rr = r * rng.gen_range(0.0f32..1.0).sqrt();
                    let z = if rng.gen_bool(0.5) { h } else { -h };
                    [rr * t.cos(), rr * t.sin(), z]
                }
            }
            Primitive::Cone(r, h) => {
                let slant = (r * r + h * h).sqrt();
                let lateral = PI * r * slant;
                let base = PI * r * r;
                if rng.gen_range(0.0..lateral + base) < lateral {
                    let t = rng.gen_range(0.0..2.0 * PI);
                    // Area-uniform along the slant: radius ∝ sqrt(u).
                    let u = rng.gen_range(0.0f32..1.0).sqrt();
                    [r * u * t.cos(), r * u * t.sin(), h * (1.0 - u) - h / 2.0]
                } else {
                    let t = rng.gen_range(0.0..2.0 * PI);
                    let rr = r * rng.gen_range(0.0f32..1.0).sqrt();
                    [rr * t.cos(), rr * t.sin(), -h / 2.0]
                }
            }
            Primitive::Torus(major, minor) => {
                let u = rng.gen_range(0.0..2.0 * PI);
                let v = rng.gen_range(0.0..2.0 * PI);
                [
                    (major + minor * v.cos()) * u.cos(),
                    (major + minor * v.cos()) * u.sin(),
                    minor * v.sin(),
                ]
            }
            Primitive::Plane(hx, hy) => [rng.gen_range(-hx..hx), rng.gen_range(-hy..hy), 0.0],
            Primitive::Saddle(s) => {
                let x = rng.gen_range(-1.0f32..1.0);
                let y = rng.gen_range(-1.0f32..1.0);
                [x, y, s * (x * x - y * y)]
            }
            Primitive::Paraboloid(s) => {
                let t = rng.gen_range(0.0..2.0 * PI);
                let r = rng.gen_range(0.0f32..1.0).sqrt();
                let (x, y) = (r * t.cos(), r * t.sin());
                [x, y, s * (x * x + y * y)]
            }
            Primitive::Wave(a, f) => {
                let x = rng.gen_range(-1.0f32..1.0);
                let y = rng.gen_range(-1.0f32..1.0);
                [x, y, a * (f * x).sin()]
            }
            Primitive::Helix {
                major,
                minor,
                pitch,
                turns,
            } => {
                let t = rng.gen_range(0.0..turns * 2.0 * PI);
                let v = rng.gen_range(0.0..2.0 * PI);
                let cx = major * t.cos();
                let cy = major * t.sin();
                let cz = pitch * t / (2.0 * PI) - pitch * turns / 2.0;
                // Tube cross-section in the (radial, z) plane, approximately.
                [
                    cx + minor * v.cos() * t.cos(),
                    cy + minor * v.cos() * t.sin(),
                    cz + minor * v.sin(),
                ]
            }
            Primitive::Tetrahedron(r) => {
                let verts = [
                    [1.0, 1.0, 1.0],
                    [1.0, -1.0, -1.0],
                    [-1.0, 1.0, -1.0],
                    [-1.0, -1.0, 1.0],
                ]
                .map(|v: [f32; 3]| {
                    let n = (3.0f32).sqrt();
                    [v[0] * r / n, v[1] * r / n, v[2] * r / n]
                });
                let faces = [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]];
                polyhedron_surface(rng, &verts, &faces)
            }
            Primitive::Octahedron(r) => {
                let verts = [
                    [r, 0.0, 0.0],
                    [-r, 0.0, 0.0],
                    [0.0, r, 0.0],
                    [0.0, -r, 0.0],
                    [0.0, 0.0, r],
                    [0.0, 0.0, -r],
                ];
                let faces = [
                    [0, 2, 4],
                    [2, 1, 4],
                    [1, 3, 4],
                    [3, 0, 4],
                    [2, 0, 5],
                    [1, 2, 5],
                    [3, 1, 5],
                    [0, 3, 5],
                ];
                polyhedron_surface(rng, &verts, &faces)
            }
        }
    }
}

/// One placed part of a composite shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    /// The primitive to sample.
    pub prim: Primitive,
    /// Translation applied after scaling.
    pub offset: [f32; 3],
    /// Relative sampling weight (≈ surface area share).
    pub weight: f32,
}

/// A class blueprint: a weighted union of placed primitives plus a
/// difficulty multiplier applied to jitter noise.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeSpec {
    /// Placed parts.
    pub parts: Vec<Part>,
    /// Per-class noise multiplier (harder classes get more jitter).
    pub difficulty: f32,
}

fn single(prim: Primitive) -> Vec<Part> {
    vec![Part {
        prim,
        offset: [0.0; 3],
        weight: 1.0,
    }]
}

fn part(prim: Primitive, offset: [f32; 3], weight: f32) -> Part {
    Part {
        prim,
        offset,
        weight,
    }
}

/// Human-readable class name.
///
/// # Panics
///
/// Panics if `class >= NUM_CLASSES`.
pub fn class_name(class: usize) -> &'static str {
    const NAMES: [&str; NUM_CLASSES] = [
        "sphere",
        "ellipsoid_flat",
        "ellipsoid_long",
        "cube",
        "slab",
        "rod_box",
        "cylinder",
        "cylinder_tall",
        "disk",
        "cone",
        "cone_flat",
        "torus",
        "torus_thin",
        "plane",
        "saddle",
        "paraboloid",
        "bowl",
        "wave",
        "wave_dense",
        "helix",
        "spring",
        "tetrahedron",
        "octahedron",
        "capsule",
        "dumbbell",
        "mushroom",
        "table",
        "stool",
        "lamp",
        "bottle",
        "cup",
        "l_bracket",
        "stairs",
        "cross",
        "ring_stack",
        "snowman",
        "arrow",
        "goblet",
        "barbell_plates",
        "tee",
    ];
    NAMES[class]
}

/// Builds the blueprint for a class, with per-sample parameter jitter drawn
/// from `rng` so no two clouds of a class are identical.
///
/// # Panics
///
/// Panics if `class >= NUM_CLASSES`.
pub fn class_spec<R: Rng>(class: usize, rng: &mut R) -> ShapeSpec {
    assert!(class < NUM_CLASSES, "class {class} out of range");
    // Per-sample parameter jitter: ±15 % on the leading dimension.
    let j = |rng: &mut R, v: f32| v * rng.gen_range(0.85f32..1.15);
    let (parts, difficulty): (Vec<Part>, f32) = match class {
        0 => (single(Primitive::Ellipsoid(1.0, 1.0, 1.0)), 1.0),
        1 => (single(Primitive::Ellipsoid(1.0, 1.0, j(rng, 0.45))), 1.2),
        2 => (
            single(Primitive::Ellipsoid(1.0, j(rng, 0.4), j(rng, 0.4))),
            1.2,
        ),
        3 => (single(Primitive::Box3(1.0, 1.0, 1.0)), 1.0),
        4 => (single(Primitive::Box3(1.0, 1.0, j(rng, 0.25))), 1.1),
        5 => (
            single(Primitive::Box3(1.0, j(rng, 0.28), j(rng, 0.28))),
            1.1,
        ),
        6 => (single(Primitive::Cylinder(j(rng, 0.6), 1.0)), 1.0),
        7 => (single(Primitive::Cylinder(j(rng, 0.3), 1.3)), 1.1),
        8 => (single(Primitive::Cylinder(1.0, j(rng, 0.12))), 1.1),
        9 => (single(Primitive::Cone(j(rng, 0.8), 1.6)), 1.0),
        10 => (single(Primitive::Cone(1.1, j(rng, 0.7))), 1.3),
        11 => (single(Primitive::Torus(1.0, j(rng, 0.38))), 1.0),
        12 => (single(Primitive::Torus(1.0, j(rng, 0.14))), 1.2),
        13 => (single(Primitive::Plane(1.0, j(rng, 0.8))), 1.0),
        14 => (single(Primitive::Saddle(j(rng, 0.8))), 1.3),
        15 => (single(Primitive::Paraboloid(j(rng, 0.9))), 1.2),
        16 => (single(Primitive::Paraboloid(j(rng, 1.7))), 1.4),
        17 => (single(Primitive::Wave(j(rng, 0.35), 3.0)), 1.3),
        18 => (single(Primitive::Wave(j(rng, 0.3), 6.5)), 1.5),
        19 => (
            single(Primitive::Helix {
                major: 1.0,
                minor: j(rng, 0.16),
                pitch: 0.8,
                turns: 2.0,
            }),
            1.2,
        ),
        20 => (
            single(Primitive::Helix {
                major: 0.8,
                minor: j(rng, 0.12),
                pitch: 0.45,
                turns: 4.0,
            }),
            1.4,
        ),
        21 => (single(Primitive::Tetrahedron(1.2)), 1.1),
        22 => (single(Primitive::Octahedron(1.2)), 1.1),
        23 => (
            // Capsule: cylinder + two sphere caps.
            vec![
                part(Primitive::Cylinder(j(rng, 0.42), 0.8), [0.0, 0.0, 0.0], 0.6),
                part(Primitive::Ellipsoid(0.42, 0.42, 0.42), [0.0, 0.0, 0.8], 0.2),
                part(
                    Primitive::Ellipsoid(0.42, 0.42, 0.42),
                    [0.0, 0.0, -0.8],
                    0.2,
                ),
            ],
            1.2,
        ),
        24 => (
            // Dumbbell: two spheres + thin bar.
            vec![
                part(Primitive::Ellipsoid(0.5, 0.5, 0.5), [0.0, 0.0, 0.9], 0.4),
                part(Primitive::Ellipsoid(0.5, 0.5, 0.5), [0.0, 0.0, -0.9], 0.4),
                part(Primitive::Cylinder(j(rng, 0.15), 0.9), [0.0, 0.0, 0.0], 0.2),
            ],
            1.1,
        ),
        25 => (
            // Mushroom: cone cap + cylinder stem.
            vec![
                part(Primitive::Cone(1.0, j(rng, 0.7)), [0.0, 0.0, 0.6], 0.55),
                part(Primitive::Cylinder(0.25, 0.7), [0.0, 0.0, -0.4], 0.45),
            ],
            1.2,
        ),
        26 => (
            // Table: top slab + 4 legs.
            vec![
                part(Primitive::Box3(1.0, 0.7, 0.08), [0.0, 0.0, 0.7], 0.45),
                part(Primitive::Cylinder(0.09, 0.65), [0.8, 0.55, 0.0], 0.14),
                part(Primitive::Cylinder(0.09, 0.65), [-0.8, 0.55, 0.0], 0.14),
                part(Primitive::Cylinder(0.09, 0.65), [0.8, -0.55, 0.0], 0.14),
                part(Primitive::Cylinder(0.09, 0.65), [-0.8, -0.55, 0.0], 0.13),
            ],
            1.4,
        ),
        27 => (
            // Stool: round top + 3 legs.
            vec![
                part(Primitive::Cylinder(0.75, 0.07), [0.0, 0.0, 0.6], 0.5),
                part(Primitive::Cylinder(0.08, 0.6), [0.5, 0.0, -0.1], 0.17),
                part(Primitive::Cylinder(0.08, 0.6), [-0.25, 0.43, -0.1], 0.17),
                part(Primitive::Cylinder(0.08, 0.6), [-0.25, -0.43, -0.1], 0.16),
            ],
            1.4,
        ),
        28 => (
            // Lamp: base disk + pole + shade cone.
            vec![
                part(Primitive::Cylinder(0.6, 0.06), [0.0, 0.0, -1.0], 0.3),
                part(Primitive::Cylinder(0.07, 0.85), [0.0, 0.0, -0.1], 0.25),
                part(Primitive::Cone(0.65, j(rng, 0.6)), [0.0, 0.0, 1.0], 0.45),
            ],
            1.4,
        ),
        29 => (
            // Bottle: body + neck.
            vec![
                part(
                    Primitive::Cylinder(j(rng, 0.5), 0.85),
                    [0.0, 0.0, -0.3],
                    0.7,
                ),
                part(Primitive::Cylinder(0.18, 0.45), [0.0, 0.0, 1.0], 0.3),
            ],
            1.2,
        ),
        30 => (
            // Cup: open cylinder + handle torus.
            vec![
                part(Primitive::Cylinder(0.62, 0.75), [0.0, 0.0, 0.0], 0.7),
                part(Primitive::Torus(0.4, 0.09), [0.85, 0.0, 0.0], 0.3),
            ],
            1.3,
        ),
        31 => (
            // L-bracket.
            vec![
                part(Primitive::Box3(1.0, 0.3, 0.18), [0.0, 0.0, -0.8], 0.5),
                part(Primitive::Box3(0.18, 0.3, 1.0), [-0.8, 0.0, 0.2], 0.5),
            ],
            1.2,
        ),
        32 => (
            // Stairs: three offset slabs.
            vec![
                part(Primitive::Box3(0.9, 0.55, 0.16), [0.0, 0.0, -0.66], 0.34),
                part(Primitive::Box3(0.62, 0.55, 0.16), [0.27, 0.0, -0.22], 0.33),
                part(Primitive::Box3(0.33, 0.55, 0.16), [0.56, 0.0, 0.22], 0.33),
            ],
            1.4,
        ),
        33 => (
            // Cross of two rods.
            vec![
                part(Primitive::Box3(1.0, 0.2, 0.2), [0.0, 0.0, 0.0], 0.5),
                part(Primitive::Box3(0.2, 1.0, 0.2), [0.0, 0.0, 0.0], 0.5),
            ],
            1.1,
        ),
        34 => (
            // Stack of two tori.
            vec![
                part(Primitive::Torus(0.95, 0.2), [0.0, 0.0, 0.42], 0.5),
                part(Primitive::Torus(0.95, 0.2), [0.0, 0.0, -0.42], 0.5),
            ],
            1.3,
        ),
        35 => (
            // Snowman: three stacked spheres.
            vec![
                part(
                    Primitive::Ellipsoid(0.62, 0.62, 0.62),
                    [0.0, 0.0, -0.75],
                    0.45,
                ),
                part(
                    Primitive::Ellipsoid(0.45, 0.45, 0.45),
                    [0.0, 0.0, 0.18],
                    0.33,
                ),
                part(Primitive::Ellipsoid(0.3, 0.3, 0.3), [0.0, 0.0, 0.85], 0.22),
            ],
            1.2,
        ),
        36 => (
            // Arrow: rod + cone head.
            vec![
                part(Primitive::Cylinder(0.14, 0.95), [0.0, 0.0, -0.35], 0.55),
                part(Primitive::Cone(0.42, j(rng, 0.75)), [0.0, 0.0, 0.85], 0.45),
            ],
            1.2,
        ),
        37 => (
            // Goblet: bowl + stem + base.
            vec![
                part(Primitive::Paraboloid(1.4), [0.0, 0.0, 0.45], 0.45),
                part(Primitive::Cylinder(0.08, 0.5), [0.0, 0.0, -0.25], 0.2),
                part(Primitive::Cylinder(0.5, 0.05), [0.0, 0.0, -0.85], 0.35),
            ],
            1.5,
        ),
        38 => (
            // Barbell with plate disks.
            vec![
                part(Primitive::Cylinder(0.1, 1.1), [0.0, 0.0, 0.0], 0.3),
                part(Primitive::Cylinder(0.55, 0.1), [0.0, 0.0, 0.85], 0.35),
                part(Primitive::Cylinder(0.55, 0.1), [0.0, 0.0, -0.85], 0.35),
            ],
            1.3,
        ),
        _ => (
            // Tee: vertical rod + horizontal top bar.
            vec![
                part(Primitive::Cylinder(0.16, 0.95), [0.0, 0.0, -0.25], 0.5),
                part(Primitive::Box3(0.95, 0.2, 0.16), [0.0, 0.0, 0.8], 0.5),
            ],
            1.2,
        ),
    };
    ShapeSpec { parts, difficulty }
}

/// Samples `n` surface points for `class` in canonical pose (no
/// augmentation, no normalisation).
pub fn sample_class<R: Rng>(class: usize, n: usize, rng: &mut R) -> (Vec<f32>, f32) {
    let spec = class_spec(class, rng);
    let total_w: f32 = spec.parts.iter().map(|p| p.weight).sum();
    let mut pts = Vec::with_capacity(n * 3);
    for _ in 0..n {
        let mut pick = rng.gen_range(0.0..total_w);
        let mut chosen = &spec.parts[spec.parts.len() - 1];
        for p in &spec.parts {
            if pick <= p.weight {
                chosen = p;
                break;
            }
            pick -= p.weight;
        }
        let s = chosen.prim.sample(rng);
        pts.push(s[0] + chosen.offset[0]);
        pts.push(s[1] + chosen.offset[1]);
        pts.push(s[2] + chosen.offset[2]);
    }
    (pts, spec.difficulty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_class_generates_finite_points() {
        let mut rng = StdRng::seed_from_u64(1);
        for c in 0..NUM_CLASSES {
            let (pts, diff) = sample_class(c, 64, &mut rng);
            assert_eq!(pts.len(), 64 * 3, "class {c}");
            assert!(pts.iter().all(|v| v.is_finite()), "class {c} non-finite");
            assert!(diff >= 1.0, "class {c} difficulty");
        }
    }

    #[test]
    fn sphere_points_on_unit_sphere() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pts, _) = sample_class(0, 128, &mut rng);
        for p in pts.chunks(3) {
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            // Per-sample parameter jitter does not apply to class 0's radii.
            assert!((r - 1.0).abs() < 1e-3, "radius {r}");
        }
    }

    #[test]
    fn class_names_unique() {
        let mut names: Vec<&str> = (0..NUM_CLASSES).map(class_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CLASSES);
    }

    #[test]
    fn torus_respects_radii() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Primitive::Torus(1.0, 0.2);
        for _ in 0..100 {
            let p = t.sample(&mut rng);
            let ring = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((0.79..=1.21).contains(&ring), "ring distance {ring}");
            assert!(p[2].abs() <= 0.201);
        }
    }

    #[test]
    fn box_points_on_surface() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = Primitive::Box3(1.0, 0.5, 0.25);
        for _ in 0..200 {
            let p = b.sample(&mut rng);
            let on_face = (p[0].abs() - 1.0).abs() < 1e-6
                || (p[1].abs() - 0.5).abs() < 1e-6
                || (p[2].abs() - 0.25).abs() < 1e-6;
            assert!(on_face, "point {p:?} not on any face");
        }
    }
}
