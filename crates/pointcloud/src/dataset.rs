//! Dataset assembly: splits, augmentation, normalisation and batching.

use crate::shapes::{sample_class, NUM_CLASSES};
use hgnas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One labelled point cloud, normalised to the unit sphere.
#[derive(Debug, Clone, PartialEq)]
pub struct PointCloud {
    /// Flat `n*3` xyz coordinates.
    pub points: Vec<f32>,
    /// Class index in `0..classes`.
    pub label: usize,
}

impl PointCloud {
    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.points.len() / 3
    }
}

/// Generation parameters for [`SynthNet40`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes used (≤ 40; smaller is faster).
    pub classes: usize,
    /// Points per cloud (the paper's default task uses 1024).
    pub points: usize,
    /// Training clouds per class.
    pub train_per_class: usize,
    /// *Base* test clouds per class; actual counts are imbalanced around
    /// this (ModelNet40's test split is imbalanced, which is what makes
    /// OA ≠ mAcc).
    pub test_per_class: usize,
    /// Base jitter noise σ, scaled by per-class difficulty.
    pub noise: f32,
    /// RNG seed; the dataset is fully deterministic given the config.
    pub seed: u64,
}

impl DatasetConfig {
    /// Paper-scale setting: 40 classes, 1024 points.
    pub fn paper(seed: u64) -> Self {
        DatasetConfig {
            classes: NUM_CLASSES,
            points: 1024,
            train_per_class: 80,
            test_per_class: 25,
            noise: 0.02,
            seed,
        }
    }

    /// Reduced setting used by the default harnesses: 10 classes, 128
    /// points. Trains in seconds on a CPU while preserving the
    /// accuracy-vs-capacity gradient the search needs.
    pub fn small(seed: u64) -> Self {
        DatasetConfig {
            classes: 10,
            points: 128,
            train_per_class: 30,
            test_per_class: 12,
            noise: 0.02,
            seed,
        }
    }

    /// Minimal setting for unit tests.
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig {
            classes: 4,
            points: 48,
            train_per_class: 8,
            test_per_class: 5,
            noise: 0.02,
            seed,
        }
    }
}

/// The SynthNet40 dataset: deterministic, procedurally generated point-cloud
/// classification.
#[derive(Debug, Clone)]
pub struct SynthNet40 {
    /// Training split (shuffled).
    pub train: Vec<PointCloud>,
    /// Test split (imbalanced per class).
    pub test: Vec<PointCloud>,
    /// Number of classes.
    pub classes: usize,
    /// Points per cloud.
    pub points: usize,
}

fn rotate_z(pts: &mut [f32], angle: f32) {
    let (s, c) = angle.sin_cos();
    for p in pts.chunks_mut(3) {
        let (x, y) = (p[0], p[1]);
        p[0] = c * x - s * y;
        p[1] = s * x + c * y;
    }
}

fn normalize_unit_sphere(pts: &mut [f32]) {
    let n = pts.len() / 3;
    let mut centroid = [0.0f32; 3];
    for p in pts.chunks(3) {
        for d in 0..3 {
            centroid[d] += p[d];
        }
    }
    for c in &mut centroid {
        *c /= n as f32;
    }
    let mut max_r = 1e-6f32;
    for p in pts.chunks_mut(3) {
        for d in 0..3 {
            p[d] -= centroid[d];
        }
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        max_r = max_r.max(r);
    }
    for v in pts.iter_mut() {
        *v /= max_r;
    }
}

fn make_cloud(cfg: &DatasetConfig, class: usize, rng: &mut StdRng) -> PointCloud {
    let (mut pts, difficulty) = sample_class(class, cfg.points, rng);
    // Augmentation: gravity-axis rotation, jitter, anisotropic scale.
    rotate_z(&mut pts, rng.gen_range(0.0..std::f32::consts::TAU));
    let sigma = cfg.noise * difficulty;
    for v in pts.iter_mut() {
        *v += rng.gen_range(-2.0 * sigma..2.0 * sigma);
    }
    let scale = [
        rng.gen_range(0.9f32..1.1),
        rng.gen_range(0.9f32..1.1),
        rng.gen_range(0.9f32..1.1),
    ];
    for p in pts.chunks_mut(3) {
        for d in 0..3 {
            p[d] *= scale[d];
        }
    }
    normalize_unit_sphere(&mut pts);
    PointCloud {
        points: pts,
        label: class,
    }
}

impl SynthNet40 {
    /// Generates the dataset described by `cfg`. Deterministic in `cfg.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.classes` is 0 or exceeds [`NUM_CLASSES`].
    pub fn generate(cfg: &DatasetConfig) -> Self {
        assert!(
            cfg.classes > 0 && cfg.classes <= NUM_CLASSES,
            "classes must be in 1..={NUM_CLASSES}"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for class in 0..cfg.classes {
            for _ in 0..cfg.train_per_class {
                train.push(make_cloud(cfg, class, &mut rng));
            }
            // Imbalance: test count varies deterministically by class,
            // between 40 % and 160 % of the base count (min 2).
            let factor = 0.4 + 1.2 * ((class * 7 + 3) % 11) as f32 / 10.0;
            let count = ((cfg.test_per_class as f32 * factor) as usize).max(2);
            for _ in 0..count {
                test.push(make_cloud(cfg, class, &mut rng));
            }
        }
        train.shuffle(&mut rng);
        SynthNet40 {
            train,
            test,
            classes: cfg.classes,
            points: cfg.points,
        }
    }

    /// Groups clouds into training batches of at most `batch_size` clouds.
    /// Each [`Batch`] stacks points row-wise with per-cloud segment lengths.
    pub fn batches(clouds: &[PointCloud], batch_size: usize) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be positive");
        clouds
            .chunks(batch_size)
            .map(|chunk| {
                let mut data = Vec::new();
                let mut segments = Vec::with_capacity(chunk.len());
                let mut labels = Vec::with_capacity(chunk.len());
                for c in chunk {
                    data.extend_from_slice(&c.points);
                    segments.push(c.num_points());
                    labels.push(c.label);
                }
                let rows: usize = segments.iter().sum();
                Batch::new(Tensor::from_vec(data, &[rows, 3]), segments, labels)
            })
            .collect()
    }
}

/// A stacked mini-batch of point clouds.
///
/// Besides its data, a batch carries a shared per-batch neighbor-list cache
/// ([`Batch::cached_neighbors`]): KNN graphs derived from inputs that do not
/// change across epochs — the raw `points`, or frozen-weight stem features —
/// are built once per batch instead of once per forward pass. Clones share
/// the cache (batch identity is the `Arc`), so pre-built eval batches reused
/// across candidates amortise graph construction too.
#[derive(Debug, Clone)]
pub struct Batch {
    /// All points of all clouds, stacked `[sum(n_i), 3]`.
    pub points: Tensor,
    /// Points per cloud, in stacking order.
    pub segments: Vec<usize>,
    /// Label per cloud.
    pub labels: Vec<usize>,
    /// Label per *point* in stacking order — filled by per-point tasks
    /// (e.g. segmentation), empty for per-cloud tasks.
    pub point_labels: Vec<usize>,
    /// Lazily filled neighbor lists keyed by `(source token, k)`.
    neighbor_cache: NeighborCache,
}

/// Shared `(source, k) → flat neighbor indices` map behind a batch.
///
/// The mutex is held across a miss's build closure, which doubles as
/// single-flight: worker threads scoring different candidates against the
/// same eval batch compute each graph exactly once. Builders must be
/// deterministic functions of the batch data and the source token — that is
/// what makes a cache hit bit-identical to a rebuild.
#[derive(Debug, Clone, Default)]
struct NeighborCache(Arc<Mutex<NeighborMap>>);

/// `(source token, k) → flat neighbor indices`.
type NeighborMap = HashMap<(u64, usize), Arc<Vec<usize>>>;

/// Allocates a fresh, process-unique cache-source token (never
/// [`Batch::RAW_POINTS_SOURCE`]). Owners of weight-dependent-but-currently-
/// frozen inputs (e.g. a supernet's stem output) take a token per weight
/// version; bumping to a new token on any weight change retires all cached
/// graphs keyed under the old one.
pub fn fresh_cache_source() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Batch {
    /// Cache-source token for neighbor lists built from the batch's own raw
    /// `points` — immutable for the batch's lifetime, so entries under this
    /// token never expire.
    pub const RAW_POINTS_SOURCE: u64 = 0;

    /// Creates a batch with an empty neighbor cache and no per-point
    /// labels.
    pub fn new(points: Tensor, segments: Vec<usize>, labels: Vec<usize>) -> Self {
        Batch {
            points,
            segments,
            labels,
            point_labels: Vec::new(),
            neighbor_cache: NeighborCache::default(),
        }
    }

    /// Returns the batch carrying per-point labels (one per stacked row).
    ///
    /// # Panics
    ///
    /// Panics if the label count disagrees with the stacked row count.
    pub fn with_point_labels(mut self, point_labels: Vec<usize>) -> Self {
        assert_eq!(
            point_labels.len(),
            self.points.dims()[0],
            "one label per stacked point"
        );
        self.point_labels = point_labels;
        self
    }

    /// Returns the cached flat neighbor list for `(source, k)`, running
    /// `build` on the first request. `build` must be a deterministic function
    /// of the batch plus whatever state `source` stands for; see
    /// [`fresh_cache_source`] for the token discipline.
    pub fn cached_neighbors(
        &self,
        source: u64,
        k: usize,
        build: impl FnOnce() -> Vec<usize>,
    ) -> Arc<Vec<usize>> {
        let mut map = self
            .neighbor_cache
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = map.get(&(source, k)) {
            return Arc::clone(hit);
        }
        let built = Arc::new(build());
        map.insert((source, k), Arc::clone(&built));
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = DatasetConfig::tiny(9);
        let a = SynthNet40::generate(&cfg);
        let b = SynthNet40::generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthNet40::generate(&DatasetConfig::tiny(1));
        let b = SynthNet40::generate(&DatasetConfig::tiny(2));
        assert_ne!(a.train[0].points, b.train[0].points);
    }

    #[test]
    fn clouds_normalised_to_unit_sphere() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(3));
        for c in ds.train.iter().chain(&ds.test) {
            let mut max_r = 0.0f32;
            for p in c.points.chunks(3) {
                max_r = max_r.max((p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt());
            }
            assert!(max_r <= 1.0 + 1e-4, "max radius {max_r}");
            assert!(max_r >= 0.99, "cloud not scaled up, max radius {max_r}");
        }
    }

    #[test]
    fn test_split_is_imbalanced() {
        let ds = SynthNet40::generate(&DatasetConfig::small(4));
        let mut counts = vec![0usize; ds.classes];
        for c in &ds.test {
            counts[c.label] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max > min, "test split should be imbalanced: {counts:?}");
    }

    #[test]
    fn batches_partition_everything() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(5));
        let batches = SynthNet40::batches(&ds.train, 3);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, ds.train.len());
        for b in &batches {
            assert_eq!(b.points.dims()[0], b.segments.iter().sum::<usize>());
            assert_eq!(b.segments.len(), b.labels.len());
        }
    }

    #[test]
    fn all_labels_in_range() {
        let ds = SynthNet40::generate(&DatasetConfig::tiny(6));
        assert!(ds.train.iter().all(|c| c.label < ds.classes));
        assert!(ds.test.iter().all(|c| c.label < ds.classes));
    }
}
