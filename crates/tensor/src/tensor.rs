//! The core dense tensor type.

use crate::shape::Shape;
use crate::simd;
use rand::Rng;
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// `Tensor` owns its storage and exposes the kernel set the HGNAS stack is
/// built on. It deliberately supports only the limited broadcasting the GNN
/// workloads need (matrix ⊕ bias-row); anything fancier belongs in the caller.
///
/// # Example
///
/// ```
/// use hgnas_tensor::Tensor;
///
/// let x = Tensor::zeros(&[2, 3]);
/// let y = x.map(|v| v + 1.0);
/// assert_eq!(y.sum(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![v],
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with approximately standard-normal elements scaled by
    /// `std` (Irwin–Hall approximation: sum of 12 uniforms minus 6, which has
    /// unit variance and needs no transcendental functions).
    pub fn randn<R: Rng>(rng: &mut R, dims: &[usize], std: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let data = (0..n)
            .map(|_| {
                let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum();
                (s - 6.0) * std
            })
            .collect();
        Tensor { shape, data }
    }

    /// Returns the tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns a read-only view of the underlying storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the underlying storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns element `(i, j)` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.rank(), 2, "at2 requires a 2-D tensor");
        let cols = self.shape.dim(1);
        assert!(i < self.shape.dim(0) && j < cols, "index out of bounds");
        self.data[i * cols + j]
    }

    /// Returns the scalar value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    /// Returns a tensor with the same data viewed under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {shape}",
            self.shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise addition, supporting a 1-D bias row broadcast over the last
    /// dimension of `self`. Both the same-shape and bias-broadcast legs run
    /// through the [`crate::simd`] lane layer (per row in the broadcast case,
    /// preserving the per-element order of the old modulo loop).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast compatible.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        if self.shape == other.shape {
            simd::add_assign(&mut out.data, &other.data);
            return out;
        }
        assert!(
            self.shape.broadcastable_from(&other.shape),
            "add: cannot broadcast {} into {}",
            other.shape,
            self.shape
        );
        let cols = other.shape.dim(0);
        for row in out.data.chunks_exact_mut(cols) {
            simd::add_assign(row, &other.data);
        }
        out
    }

    /// Elementwise subtraction (same shapes only), on the lane layer.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "sub shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = self.clone();
        simd::sub_assign(&mut out.data, &other.data);
        out
    }

    /// Elementwise (Hadamard) product (same shapes only), on the lane layer.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "mul shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = self.clone();
        simd::mul_assign(&mut out.data, &other.data);
        out
    }

    /// Multiplies every element by `s`, on the lane layer.
    pub fn scale(&self, s: f32) -> Tensor {
        let mut out = self.clone();
        simd::scale(&mut out.data, s);
        out
    }

    /// Elementwise ReLU (`max`-free: anything not strictly positive becomes
    /// `+0.0`, NaN included — see [`crate::simd::relu`]), on the lane layer.
    pub fn relu(&self) -> Tensor {
        let mut out = self.clone();
        simd::relu(&mut out.data);
        out
    }

    /// Elementwise LeakyReLU with the given negative slope, on the lane layer.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        let mut out = self.clone();
        simd::leaky_relu(&mut out.data, slope);
        out
    }

    /// Sums all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// # Panics
    ///
    /// Never panics: shapes cannot be empty of elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element value. Returns `f32::NEG_INFINITY` only for the
    /// impossible empty case.
    pub fn max_value(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires a 2-D tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Returns `true` if every element of `self` and `other` differs by at
    /// most `atol`.
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= atol)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.numel() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.dims(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_data_len_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn add_broadcast_bias() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let r = m.add(&b);
        assert_eq!(r.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        assert!(t.transpose2().transpose2().allclose(&t, 0.0));
    }

    #[test]
    fn eye_matmul_identity_data() {
        let e = Tensor::eye(3);
        assert_eq!(e.at2(0, 0), 1.0);
        assert_eq!(e.at2(0, 1), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn randn_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|v| v * v).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[4]);
    }
}
