//! Portable `f32` lane kernels with a **bit-identical** scalar fallback.
//!
//! Every kernel in this module has two implementations: an 8-lane AVX2 path
//! (`core::arch::x86_64` intrinsics behind runtime feature detection) and a
//! pure-scalar path that executes the *same lane/remainder schedule*. The
//! load-bearing invariant — the one the fleet layer's whole bit-identity
//! matrix rests on — is that **both paths produce bit-identical results for
//! every input**:
//!
//! - Elementwise kernels ([`axpy`], [`add_assign`], [`scale`], and the
//!   distance kernels) compute each output element with exactly the same
//!   sequence of IEEE-754 operations on either path; vectorising over
//!   independent elements never reorders any element's own computation, and
//!   `_mm256_mul_ps`/`_mm256_add_ps` round identically to scalar `*`/`+`.
//!   No FMA is used anywhere — fused rounding would break the equality.
//! - The reduction kernel ([`dot`]) uses a *fixed multi-accumulator
//!   schedule*: [`LANES`] parallel partial sums filled chunk-by-chunk, the
//!   remainder folded into the leading accumulators, then a fixed binary
//!   tree (`hsum_tree` order) — mirrored literally in the scalar path, so
//!   the floating-point association is the same on both.
//!
//! Path selection: [`detected`] probes AVX2 once (the `HGNAS_SIMD=scalar`
//! environment variable, or building without the `simd` cargo feature,
//! forces the scalar path — the latter keeps the offline-shim builds free
//! of any `core::arch` surface). [`with_path`] is a process-global
//! test/bench hook for comparing the two paths in one process; because
//! results are path-independent, a concurrent override can never change
//! what another thread computes, only how fast.
//!
//! Work-size gates: every kernel falls through to the scalar loop when the
//! contiguous run is shorter than [`LANES`], so tiny inputs never pay lane
//! dispatch overhead. The gate is value-neutral by the invariant above.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Lane width of the portable `f32` vector: 8 lanes (one AVX2 `__m256`).
/// The scalar fallback mirrors this width in its accumulator schedule.
pub const LANES: usize = 8;

/// Which implementation the lane kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePath {
    /// 8-lane `core::arch::x86_64` AVX2 intrinsics.
    Avx2,
    /// Pure-scalar loops executing the same lane/remainder schedule.
    Scalar,
}

impl std::fmt::Display for LanePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LanePath::Avx2 => "avx2",
            LanePath::Scalar => "scalar",
        })
    }
}

fn detect() -> LanePath {
    if std::env::var("HGNAS_SIMD").is_ok_and(|v| v == "scalar" || v == "off") {
        return LanePath::Scalar;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return LanePath::Avx2;
        }
    }
    LanePath::Scalar
}

/// The lane path this host supports (probed once; `HGNAS_SIMD=scalar` or a
/// build without the `simd` feature pins it to [`LanePath::Scalar`]).
pub fn detected() -> LanePath {
    static DETECTED: OnceLock<LanePath> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// 0 = no override, 1 = force scalar, 2 = force lanes (degrades to whatever
/// [`detected`] supports).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The path kernels dispatch to right now: the [`with_path`] override if one
/// is active, [`detected`] otherwise.
pub fn active() -> LanePath {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => LanePath::Scalar,
        _ => detected(),
    }
}

/// Runs `f` with the kernel path forced to `path`, restoring the previous
/// override afterwards (also on unwind). Forcing [`LanePath::Avx2`] on a
/// host without AVX2 degrades to scalar.
///
/// The override is **process-global** (so it reaches kernel worker threads
/// spawned inside `f`, e.g. by `matmul_parallel`); it is a test/bench hook,
/// not a tuning knob. Overlapping overrides from concurrent tests can
/// interleave arbitrarily — harmless, because both paths are bit-identical.
pub fn with_path<R>(path: LanePath, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let code = match path {
        LanePath::Scalar => 1,
        LanePath::Avx2 => 2,
    };
    let prev = OVERRIDE.swap(code, Ordering::Relaxed);
    let _restore = Restore(prev);
    f()
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
macro_rules! lane_dispatch {
    ($len:expr, $avx2:expr, $scalar:expr) => {
        // Gate: below one lane there is nothing to vectorise; skip even the
        // path lookup. Value-neutral either way.
        if $len >= LANES && active() == LanePath::Avx2 {
            // SAFETY: `active()` only returns Avx2 when `detected()` probed
            // AVX2 support at runtime.
            unsafe { $avx2 }
        } else {
            $scalar
        }
    };
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
macro_rules! lane_dispatch {
    ($len:expr, $avx2:expr, $scalar:expr) => {
        $scalar
    };
}

/// `acc[i] += a * x[i]` — the matmul axpy inner loop. Lane-parallel over
/// `i`; per-element operation order is `mul` then `add` on both paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "axpy length mismatch");
    lane_dispatch!(acc.len(), avx2::axpy(acc, a, x), axpy_scalar(acc, a, x))
}

fn axpy_scalar(acc: &mut [f32], a: f32, x: &[f32]) {
    for (c, &v) in acc.iter_mut().zip(x) {
        *c += a * v;
    }
}

/// `acc[i] += x[i]` — the reduction/scatter accumulate loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "add_assign length mismatch");
    lane_dispatch!(
        acc.len(),
        avx2::add_assign(acc, x),
        add_assign_scalar(acc, x)
    )
}

fn add_assign_scalar(acc: &mut [f32], x: &[f32]) {
    for (c, &v) in acc.iter_mut().zip(x) {
        *c += v;
    }
}

/// `acc[i] -= x[i]` — elementwise subtraction (autograd `sub` forward and
/// residual backward).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sub_assign(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "sub_assign length mismatch");
    lane_dispatch!(
        acc.len(),
        avx2::sub_assign(acc, x),
        sub_assign_scalar(acc, x)
    )
}

fn sub_assign_scalar(acc: &mut [f32], x: &[f32]) {
    for (c, &v) in acc.iter_mut().zip(x) {
        *c -= v;
    }
}

/// `acc[i] *= x[i]` — the Hadamard-product loop (autograd `mul` forward and
/// its product-rule backward).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "mul_assign length mismatch");
    lane_dispatch!(
        acc.len(),
        avx2::mul_assign(acc, x),
        mul_assign_scalar(acc, x)
    )
}

fn mul_assign_scalar(acc: &mut [f32], x: &[f32]) {
    for (c, &v) in acc.iter_mut().zip(x) {
        *c *= v;
    }
}

/// `buf[i] *= s` — the mean-normalisation loop.
pub fn scale(buf: &mut [f32], s: f32) {
    lane_dispatch!(buf.len(), avx2::scale(buf, s), scale_scalar(buf, s))
}

fn scale_scalar(buf: &mut [f32], s: f32) {
    for v in buf.iter_mut() {
        *v *= s;
    }
}

/// In-place ReLU: `buf[i] = if buf[i] > 0 { buf[i] } else { +0.0 }`.
///
/// The lane leg is `and_ps(v, cmp_gt(v, 0))` — **not** `max_ps` — because
/// `max_ps` returns the second operand on NaN while the scalar `>` test
/// sends NaN (and `-0.0`) to `+0.0`; the mask-and form matches the scalar
/// branch bit-for-bit on every input, NaN and signed zero included.
pub fn relu(buf: &mut [f32]) {
    lane_dispatch!(buf.len(), avx2::relu(buf), relu_scalar(buf))
}

fn relu_scalar(buf: &mut [f32]) {
    for v in buf.iter_mut() {
        *v = if *v > 0.0 { *v } else { 0.0 };
    }
}

/// In-place LeakyReLU: `buf[i] = if buf[i] > 0 { buf[i] } else { slope * buf[i] }`.
///
/// Lane leg: `blendv(slope·v, v, cmp_gt(v, 0))`. Both paths compute the
/// negative leg as the same single multiply, so NaN payloads, `slope·∞` and
/// `slope·(-0.0)` propagate identically.
pub fn leaky_relu(buf: &mut [f32], slope: f32) {
    lane_dispatch!(
        buf.len(),
        avx2::leaky_relu(buf, slope),
        leaky_relu_scalar(buf, slope)
    )
}

fn leaky_relu_scalar(buf: &mut [f32], slope: f32) {
    for v in buf.iter_mut() {
        *v = if *v > 0.0 { *v } else { slope * *v };
    }
}

/// ReLU backward: `g[i] *= if x[i] > 0 { 1.0 } else { 0.0 }`, where `x` is
/// the forward *input*. The mask value is multiplied (not selected) so the
/// IEEE edge cases the PR 6 contract pinned — `0.0 · NaN = NaN`,
/// `0.0 · ∞ = NaN`, sign of zero — behave exactly like the pre-lane
/// mask-tensor multiply this replaces.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn relu_grad(g: &mut [f32], x: &[f32]) {
    assert_eq!(g.len(), x.len(), "relu_grad length mismatch");
    lane_dispatch!(g.len(), avx2::relu_grad(g, x), relu_grad_scalar(g, x))
}

fn relu_grad_scalar(g: &mut [f32], x: &[f32]) {
    for (gv, &xv) in g.iter_mut().zip(x) {
        *gv *= if xv > 0.0 { 1.0 } else { 0.0 };
    }
}

/// LeakyReLU backward: `g[i] *= if x[i] > 0 { 1.0 } else { slope }` with `x`
/// the forward input. Same literal-multiply contract as [`relu_grad`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn leaky_relu_grad(g: &mut [f32], x: &[f32], slope: f32) {
    assert_eq!(g.len(), x.len(), "leaky_relu_grad length mismatch");
    lane_dispatch!(
        g.len(),
        avx2::leaky_relu_grad(g, x, slope),
        leaky_relu_grad_scalar(g, x, slope)
    )
}

fn leaky_relu_grad_scalar(g: &mut [f32], x: &[f32], slope: f32) {
    for (gv, &xv) in g.iter_mut().zip(x) {
        *gv *= if xv > 0.0 { 1.0 } else { slope };
    }
}

/// Fixed-order horizontal sum of the [`LANES`] partial accumulators:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. Shared verbatim by both paths
/// of [`dot`], so the reduction tree is part of the kernel's contract.
#[inline]
fn hsum_tree(l: &[f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Dot product with the fixed multi-accumulator schedule: [`LANES`] partial
/// sums over full chunks (`lanes[l] += a[c*8+l] * b[c*8+l]` in chunk
/// order), the tail folded into `lanes[0..tail]`, then `hsum_tree`.
///
/// This is **not** the same association as a sequential `fold` — callers
/// switching to `dot` accept a one-time numeric re-baselining in exchange
/// for a schedule both paths can execute bit-identically (and ~`LANES`×
/// more ILP even in scalar form).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut lanes = [0.0f32; LANES];
    lane_dispatch!(
        a.len(),
        avx2::dot_lanes(a, b, &mut lanes),
        dot_lanes_scalar(a, b, &mut lanes)
    );
    hsum_tree(&lanes)
}

fn dot_lanes_scalar(a: &[f32], b: &[f32], lanes: &mut [f32; LANES]) {
    let full = a.len() / LANES * LANES;
    let mut i = 0;
    while i < full {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += a[i + l] * b[i + l];
        }
        i += LANES;
    }
    for (t, i) in (full..a.len()).enumerate() {
        lanes[t] += a[i] * b[i];
    }
}

/// Scalar hyper-parameters of one [`adam_step`] call. Bias correction is
/// pre-inverted by the caller (`inv_bc1 = 1/(1-β₁ᵗ)`) so the kernel scales
/// by a reciprocal exactly like the tensor-level code it replaced did.
#[derive(Debug, Clone, Copy)]
pub struct AdamParams {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator stabiliser ε.
    pub eps: f32,
    /// `1 / (1 - β₁ᵗ)` — first-moment bias correction, inverted.
    pub inv_bc1: f32,
    /// `1 / (1 - β₂ᵗ)` — second-moment bias correction, inverted.
    pub inv_bc2: f32,
}

/// One fused Adam update over a parameter tensor — the supernet/predictor
/// training inner loop. Per element, in this exact IEEE-754 order (the
/// sequence the pre-lane tensor code performed, so switching to the fused
/// kernel re-baselines nothing):
///
/// ```text
/// m  = β₁·m + (1-β₁)·g
/// v  = β₂·v + ((1-β₂)·g)·g        // left-associated, as Rust parses it
/// m̂  = m · inv_bc1
/// v̂  = v · inv_bc2
/// w -= lr · (m̂ / (√v̂ + ε))
/// ```
///
/// Elementwise over `i` with no FMA on either path, hence bit-identical
/// between [`LanePath::Avx2`] and [`LanePath::Scalar`].
///
/// # Panics
///
/// Panics if the four slices differ in length.
pub fn adam_step(w: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], p: AdamParams) {
    assert_eq!(w.len(), g.len(), "adam_step length mismatch");
    assert_eq!(m.len(), g.len(), "adam_step length mismatch");
    assert_eq!(v.len(), g.len(), "adam_step length mismatch");
    lane_dispatch!(
        w.len(),
        avx2::adam_step(w, m, v, g, p),
        adam_step_scalar(w, m, v, g, p)
    )
}

fn adam_step_scalar(w: &mut [f32], m: &mut [f32], v: &mut [f32], g: &[f32], p: AdamParams) {
    let omb1 = 1.0 - p.beta1;
    let omb2 = 1.0 - p.beta2;
    for i in 0..w.len() {
        let gi = g[i];
        let mi = p.beta1 * m[i] + omb1 * gi;
        let vi = p.beta2 * v[i] + omb2 * gi * gi;
        m[i] = mi;
        v[i] = vi;
        let mhat = mi * p.inv_bc1;
        let vhat = vi * p.inv_bc2;
        w[i] -= p.lr * (mhat / (vhat.sqrt() + p.eps));
    }
}

/// Squared Euclidean distances from one 3-D query point to every point in
/// an interleaved `xyz` buffer: `out[j] = |q - points[j]|²`, computed as
/// `(dx·dx + dy·dy) + dz·dz` per point — the exact association a sequential
/// 3-term fold produces, so results match the pre-lane scalar `dist2`
/// bit-for-bit. Elementwise over `j`, hence path-independent.
///
/// # Panics
///
/// Panics if `q` is not 3 floats or `points` is not `3 * out.len()` floats.
pub fn squared_distances_3d(q: &[f32], points: &[f32], out: &mut [f32]) {
    assert_eq!(q.len(), 3, "query must be a 3-D point");
    assert_eq!(
        points.len(),
        out.len() * 3,
        "points must be [n,3] for out [n]"
    );
    lane_dispatch!(
        out.len(),
        avx2::sqdist3(q, points, out, 0),
        sqdist3_scalar(q, points, out)
    )
}

fn sqdist3_scalar(q: &[f32], points: &[f32], out: &mut [f32]) {
    for (o, p) in out.iter_mut().zip(points.chunks_exact(3)) {
        *o = sqdist3_one(q, p);
    }
}

#[inline]
fn sqdist3_one(q: &[f32], p: &[f32]) -> f32 {
    let dx = q[0] - p[0];
    let dy = q[1] - p[1];
    let dz = q[2] - p[2];
    (dx * dx + dy * dy) + dz * dz
}

/// [`squared_distances_3d`] over a gathered candidate set:
/// `out[j] = |q - points[idx[j]]|²`. Same per-element schedule, so it is
/// bit-identical to computing each distance scalar in `idx` order.
///
/// # Panics
///
/// Panics if `q` is not 3 floats, `idx` and `out` differ in length, or any
/// index reaches past `points`.
pub fn squared_distances_3d_indexed(q: &[f32], points: &[f32], idx: &[usize], out: &mut [f32]) {
    assert_eq!(q.len(), 3, "query must be a 3-D point");
    assert_eq!(idx.len(), out.len(), "idx/out length mismatch");
    let n = points.len() / 3;
    assert!(
        idx.iter().all(|&j| j < n),
        "candidate index out of bounds for {n} points"
    );
    lane_dispatch!(
        out.len(),
        avx2::sqdist3_indexed(q, points, idx, out),
        sqdist3_indexed_scalar(q, points, idx, out)
    )
}

fn sqdist3_indexed_scalar(q: &[f32], points: &[f32], idx: &[usize], out: &mut [f32]) {
    for (o, &j) in out.iter_mut().zip(idx) {
        *o = sqdist3_one(q, &points[j * 3..j * 3 + 3]);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! The AVX2 legs. Every function requires the `avx2` target feature
    //! (guaranteed by the runtime dispatch in the parent module) and mirrors
    //! its scalar sibling's schedule exactly: `_mm256_mul_ps`,
    //! `_mm256_add_ps`, `_mm256_div_ps` and `_mm256_sqrt_ps` are all
    //! correctly rounded per lane exactly like scalar `*`/`+`/`/`/`sqrt`,
    //! and no FMA contraction is ever emitted from explicit intrinsics.

    use super::LANES;
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
        let n = acc.len();
        let va = _mm256_set1_ps(a);
        let mut i = 0;
        while i + LANES <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vc = _mm256_loadu_ps(acc.as_ptr().add(i));
            let r = _mm256_add_ps(vc, _mm256_mul_ps(va, vx));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), r);
            i += LANES;
        }
        super::axpy_scalar(&mut acc[i..], a, &x[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign(acc: &mut [f32], x: &[f32]) {
        let n = acc.len();
        let mut i = 0;
        while i + LANES <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vc = _mm256_loadu_ps(acc.as_ptr().add(i));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(vc, vx));
            i += LANES;
        }
        super::add_assign_scalar(&mut acc[i..], &x[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_assign(acc: &mut [f32], x: &[f32]) {
        let n = acc.len();
        let mut i = 0;
        while i + LANES <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vc = _mm256_loadu_ps(acc.as_ptr().add(i));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_sub_ps(vc, vx));
            i += LANES;
        }
        super::sub_assign_scalar(&mut acc[i..], &x[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_assign(acc: &mut [f32], x: &[f32]) {
        let n = acc.len();
        let mut i = 0;
        while i + LANES <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vc = _mm256_loadu_ps(acc.as_ptr().add(i));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_mul_ps(vc, vx));
            i += LANES;
        }
        super::mul_assign_scalar(&mut acc[i..], &x[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu(buf: &mut [f32]) {
        let n = buf.len();
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_loadu_ps(buf.as_ptr().add(i));
            // gt-mask AND value: NaN and -0.0 compare false and land on +0.0,
            // exactly like the scalar `if v > 0.0` branch.
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
            _mm256_storeu_ps(buf.as_mut_ptr().add(i), _mm256_and_ps(v, mask));
            i += LANES;
        }
        super::relu_scalar(&mut buf[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn leaky_relu(buf: &mut [f32], slope: f32) {
        let n = buf.len();
        let zero = _mm256_setzero_ps();
        let vs = _mm256_set1_ps(slope);
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_loadu_ps(buf.as_ptr().add(i));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
            let neg = _mm256_mul_ps(vs, v);
            _mm256_storeu_ps(buf.as_mut_ptr().add(i), _mm256_blendv_ps(neg, v, mask));
            i += LANES;
        }
        super::leaky_relu_scalar(&mut buf[i..], slope);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu_grad(g: &mut [f32], x: &[f32]) {
        let n = g.len();
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let mut i = 0;
        while i + LANES <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vg = _mm256_loadu_ps(g.as_ptr().add(i));
            // Literal multiply by the 1.0/0.0 mask — keeps 0·NaN and 0·∞
            // producing NaN like the scalar sibling.
            let mask = _mm256_and_ps(one, _mm256_cmp_ps::<_CMP_GT_OQ>(vx, zero));
            _mm256_storeu_ps(g.as_mut_ptr().add(i), _mm256_mul_ps(vg, mask));
            i += LANES;
        }
        super::relu_grad_scalar(&mut g[i..], &x[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn leaky_relu_grad(g: &mut [f32], x: &[f32], slope: f32) {
        let n = g.len();
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let vs = _mm256_set1_ps(slope);
        let mut i = 0;
        while i + LANES <= n {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vg = _mm256_loadu_ps(g.as_ptr().add(i));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(vx, zero);
            let factor = _mm256_blendv_ps(vs, one, mask);
            _mm256_storeu_ps(g.as_mut_ptr().add(i), _mm256_mul_ps(vg, factor));
            i += LANES;
        }
        super::leaky_relu_grad_scalar(&mut g[i..], &x[i..], slope);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale(buf: &mut [f32], s: f32) {
        let n = buf.len();
        let vs = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_loadu_ps(buf.as_ptr().add(i));
            _mm256_storeu_ps(buf.as_mut_ptr().add(i), _mm256_mul_ps(v, vs));
            i += LANES;
        }
        super::scale_scalar(&mut buf[i..], s);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn adam_step(
        w: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        p: super::AdamParams,
    ) {
        let n = w.len();
        let vb1 = _mm256_set1_ps(p.beta1);
        let vb2 = _mm256_set1_ps(p.beta2);
        let vomb1 = _mm256_set1_ps(1.0 - p.beta1);
        let vomb2 = _mm256_set1_ps(1.0 - p.beta2);
        let vib1 = _mm256_set1_ps(p.inv_bc1);
        let vib2 = _mm256_set1_ps(p.inv_bc2);
        let vlr = _mm256_set1_ps(p.lr);
        let veps = _mm256_set1_ps(p.eps);
        let mut i = 0;
        while i + LANES <= n {
            let vg = _mm256_loadu_ps(g.as_ptr().add(i));
            let vm = _mm256_add_ps(
                _mm256_mul_ps(vb1, _mm256_loadu_ps(m.as_ptr().add(i))),
                _mm256_mul_ps(vomb1, vg),
            );
            let vv = _mm256_add_ps(
                _mm256_mul_ps(vb2, _mm256_loadu_ps(v.as_ptr().add(i))),
                _mm256_mul_ps(_mm256_mul_ps(vomb2, vg), vg),
            );
            _mm256_storeu_ps(m.as_mut_ptr().add(i), vm);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), vv);
            let mhat = _mm256_mul_ps(vm, vib1);
            let vhat = _mm256_mul_ps(vv, vib2);
            let u = _mm256_div_ps(mhat, _mm256_add_ps(_mm256_sqrt_ps(vhat), veps));
            let vw = _mm256_sub_ps(_mm256_loadu_ps(w.as_ptr().add(i)), _mm256_mul_ps(vlr, u));
            _mm256_storeu_ps(w.as_mut_ptr().add(i), vw);
            i += LANES;
        }
        super::adam_step_scalar(&mut w[i..], &mut m[i..], &mut v[i..], &g[i..], p);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_lanes(a: &[f32], b: &[f32], lanes: &mut [f32; LANES]) {
        let full = a.len() / LANES * LANES;
        let mut acc = _mm256_loadu_ps(lanes.as_ptr());
        let mut i = 0;
        while i < full {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            i += LANES;
        }
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (t, i) in (full..a.len()).enumerate() {
            lanes[t] += a[i] * b[i];
        }
    }

    /// Distances to 8 interleaved-`xyz` points at a time via stride-3
    /// gathers; `base` offsets the candidate range (contiguous case).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sqdist3(q: &[f32], points: &[f32], out: &mut [f32], base: usize) {
        let n = out.len();
        let qx = _mm256_set1_ps(q[0]);
        let qy = _mm256_set1_ps(q[1]);
        let qz = _mm256_set1_ps(q[2]);
        let step = _mm256_setr_epi32(0, 3, 6, 9, 12, 15, 18, 21);
        let mut j = 0;
        while j + LANES <= n {
            let ix = _mm256_add_epi32(_mm256_set1_epi32(((base + j) * 3) as i32), step);
            let d = sqdist3_gather(qx, qy, qz, points.as_ptr(), ix);
            _mm256_storeu_ps(out.as_mut_ptr().add(j), d);
            j += LANES;
        }
        super::sqdist3_scalar(q, &points[(base + j) * 3..(base + n) * 3], &mut out[j..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sqdist3_indexed(
        q: &[f32],
        points: &[f32],
        idx: &[usize],
        out: &mut [f32],
    ) {
        let n = out.len();
        let qx = _mm256_set1_ps(q[0]);
        let qy = _mm256_set1_ps(q[1]);
        let qz = _mm256_set1_ps(q[2]);
        let mut j = 0;
        while j + LANES <= n {
            let ix = _mm256_setr_epi32(
                (idx[j] * 3) as i32,
                (idx[j + 1] * 3) as i32,
                (idx[j + 2] * 3) as i32,
                (idx[j + 3] * 3) as i32,
                (idx[j + 4] * 3) as i32,
                (idx[j + 5] * 3) as i32,
                (idx[j + 6] * 3) as i32,
                (idx[j + 7] * 3) as i32,
            );
            let d = sqdist3_gather(qx, qy, qz, points.as_ptr(), ix);
            _mm256_storeu_ps(out.as_mut_ptr().add(j), d);
            j += LANES;
        }
        super::sqdist3_indexed_scalar(q, points, &idx[j..], &mut out[j..]);
    }

    /// `(dx·dx + dy·dy) + dz·dz` for 8 points whose `x` components sit at
    /// float offsets `ix` (with `y`/`z` at `+1`/`+2`).
    #[target_feature(enable = "avx2")]
    unsafe fn sqdist3_gather(
        qx: __m256,
        qy: __m256,
        qz: __m256,
        points: *const f32,
        ix: __m256i,
    ) -> __m256 {
        let px = _mm256_i32gather_ps::<4>(points, ix);
        let py = _mm256_i32gather_ps::<4>(points.add(1), ix);
        let pz = _mm256_i32gather_ps::<4>(points.add(2), ix);
        let dx = _mm256_sub_ps(qx, px);
        let dy = _mm256_sub_ps(qy, py);
        let dz = _mm256_sub_ps(qz, pz);
        _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ragged lengths exercising the empty, sub-lane, exact-lane, and
    /// lane-plus-tail schedules.
    const RAGGED: [usize; 10] = [0, 1, 3, 7, 8, 9, 16, 17, 31, 100];

    fn seq(len: usize, salt: f32) -> Vec<f32> {
        (0..len)
            .map(|i| (i as f32 * 0.37 + salt).sin() * 2.0)
            .collect()
    }

    #[test]
    fn detected_is_stable() {
        assert_eq!(detected(), detected());
    }

    #[test]
    fn with_path_forces_and_restores() {
        let outer = active();
        with_path(LanePath::Scalar, || {
            assert_eq!(active(), LanePath::Scalar);
        });
        assert_eq!(active(), outer);
    }

    #[test]
    fn axpy_matches_across_paths_and_raw_loop() {
        for len in RAGGED {
            let x = seq(len, 0.1);
            let mut expect = seq(len, 0.7);
            let mut scalar = expect.clone();
            let mut lane = expect.clone();
            for (c, &v) in expect.iter_mut().zip(&x) {
                *c += 1.25 * v;
            }
            with_path(LanePath::Scalar, || axpy(&mut scalar, 1.25, &x));
            with_path(LanePath::Avx2, || axpy(&mut lane, 1.25, &x));
            assert_eq!(scalar, expect, "len {len}");
            assert_eq!(lane, expect, "len {len}");
        }
    }

    #[test]
    fn add_assign_and_scale_match_across_paths() {
        for len in RAGGED {
            let x = seq(len, 0.3);
            let base = seq(len, 0.9);
            let (mut s1, mut l1) = (base.clone(), base.clone());
            with_path(LanePath::Scalar, || add_assign(&mut s1, &x));
            with_path(LanePath::Avx2, || add_assign(&mut l1, &x));
            assert_eq!(s1, l1, "add_assign len {len}");
            with_path(LanePath::Scalar, || scale(&mut s1, 0.77));
            with_path(LanePath::Avx2, || scale(&mut l1, 0.77));
            assert_eq!(s1, l1, "scale len {len}");
        }
    }

    /// Special values the IEEE contract pins: NaN, ±∞, ±0.0 and ordinary
    /// magnitudes, cycled through a buffer of length `len`.
    fn specials(len: usize, salt: usize) -> Vec<f32> {
        const S: [f32; 8] = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            0.0,
            1.5,
            -2.25,
            1e-30,
        ];
        (0..len).map(|i| S[(i + salt) % S.len()]).collect()
    }

    #[test]
    fn sub_and_mul_assign_match_across_paths() {
        for len in RAGGED {
            let x = seq(len, 0.13);
            let base = seq(len, 0.83);
            let (mut s, mut l) = (base.clone(), base.clone());
            with_path(LanePath::Scalar, || sub_assign(&mut s, &x));
            with_path(LanePath::Avx2, || sub_assign(&mut l, &x));
            assert_eq!(s, l, "sub_assign len {len}");
            with_path(LanePath::Scalar, || mul_assign(&mut s, &x));
            with_path(LanePath::Avx2, || mul_assign(&mut l, &x));
            assert_eq!(s, l, "mul_assign len {len}");
        }
    }

    #[test]
    fn relu_family_matches_across_paths_on_specials() {
        for len in RAGGED {
            for salt in 0..8 {
                let x = specials(len, salt);
                let g = seq(len, 0.29);

                let (mut s, mut l) = (x.clone(), x.clone());
                with_path(LanePath::Scalar, || relu(&mut s));
                with_path(LanePath::Avx2, || relu(&mut l));
                assert_eq!(bits(&s), bits(&l), "relu len {len} salt {salt}");

                let (mut s, mut l) = (x.clone(), x.clone());
                with_path(LanePath::Scalar, || leaky_relu(&mut s, 0.2));
                with_path(LanePath::Avx2, || leaky_relu(&mut l, 0.2));
                assert_eq!(bits(&s), bits(&l), "leaky_relu len {len} salt {salt}");

                let (mut s, mut l) = (g.clone(), g.clone());
                with_path(LanePath::Scalar, || relu_grad(&mut s, &x));
                with_path(LanePath::Avx2, || relu_grad(&mut l, &x));
                assert_eq!(bits(&s), bits(&l), "relu_grad len {len} salt {salt}");

                let (mut s, mut l) = (g.clone(), g.clone());
                with_path(LanePath::Scalar, || leaky_relu_grad(&mut s, &x, 0.2));
                with_path(LanePath::Avx2, || leaky_relu_grad(&mut l, &x, 0.2));
                assert_eq!(bits(&s), bits(&l), "leaky_relu_grad len {len} salt {salt}");
            }
        }
    }

    /// Bit views so NaN-carrying buffers can be compared exactly.
    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn relu_sends_nan_and_negative_zero_to_positive_zero() {
        // The documented semantics, checked on the active path: anything not
        // strictly greater than zero becomes +0.0 — including NaN and -0.0.
        let mut buf = vec![
            f32::NAN,
            -0.0,
            -3.0,
            f32::NEG_INFINITY,
            2.0,
            0.0,
            1.0,
            4.0,
            -1.0,
        ];
        relu(&mut buf);
        assert_eq!(bits(&buf[0..4]), vec![0u32; 4]);
        assert_eq!(buf[4], 2.0);
        assert_eq!(buf[5].to_bits(), 0);
    }

    #[test]
    fn grad_kernels_are_literal_multiplies() {
        // g·0 for a NaN/∞ gradient must stay NaN — the mask is multiplied,
        // never used to select zero directly.
        let x = vec![-1.0f32; 9];
        let mut g = vec![f32::NAN, f32::INFINITY, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        relu_grad(&mut g, &x);
        assert!(g[0].is_nan());
        assert!(g[1].is_nan()); // ∞ · 0 = NaN
        assert_eq!(&g[2..], &[0.0; 7]);
    }

    #[test]
    fn dot_matches_across_paths() {
        for len in RAGGED {
            let a = seq(len, 0.2);
            let b = seq(len, 0.5);
            let s = with_path(LanePath::Scalar, || dot(&a, &b));
            let l = with_path(LanePath::Avx2, || dot(&a, &b));
            assert_eq!(s.to_bits(), l.to_bits(), "len {len}");
        }
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_schedule_is_the_documented_one() {
        // One full chunk plus a 3-long tail: lanes fill per the fixed
        // schedule, then the tree sums them in the documented order.
        let a: Vec<f32> = (0..11).map(|i| i as f32 + 0.5).collect();
        let b: Vec<f32> = (0..11).map(|i| (i as f32).cos()).collect();
        let mut lanes = [0.0f32; LANES];
        for l in 0..LANES {
            lanes[l] += a[l] * b[l];
        }
        for t in 0..3 {
            lanes[t] += a[LANES + t] * b[LANES + t];
        }
        assert_eq!(dot(&a, &b).to_bits(), hsum_tree(&lanes).to_bits());
    }

    #[test]
    fn adam_step_matches_across_paths_and_raw_sequence() {
        let p = AdamParams {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            inv_bc1: 1.0 / (1.0 - 0.9f32.powi(3)),
            inv_bc2: 1.0 / (1.0 - 0.999f32.powi(3)),
        };
        for len in RAGGED {
            let g = seq(len, 0.11);
            let w0 = seq(len, 0.23);
            let m0 = seq(len, 0.41);
            // Second moments are non-negative in real runs; keep v ≥ 0 so
            // sqrt stays in-domain.
            let v0: Vec<f32> = seq(len, 0.59).iter().map(|x| x * x).collect();

            // The documented per-element sequence, written straight.
            let mut we = w0.clone();
            let mut me = m0.clone();
            let mut ve = v0.clone();
            for i in 0..len {
                me[i] = p.beta1 * me[i] + (1.0 - p.beta1) * g[i];
                ve[i] = p.beta2 * ve[i] + (1.0 - p.beta2) * g[i] * g[i];
                let mhat = me[i] * p.inv_bc1;
                let vhat = ve[i] * p.inv_bc2;
                we[i] -= p.lr * (mhat / (vhat.sqrt() + p.eps));
            }

            let (mut ws, mut ms, mut vs) = (w0.clone(), m0.clone(), v0.clone());
            with_path(LanePath::Scalar, || {
                adam_step(&mut ws, &mut ms, &mut vs, &g, p)
            });
            let (mut wl, mut ml, mut vl) = (w0.clone(), m0.clone(), v0.clone());
            with_path(LanePath::Avx2, || {
                adam_step(&mut wl, &mut ml, &mut vl, &g, p)
            });
            assert_eq!(ws, we, "scalar w, len {len}");
            assert_eq!(ms, me, "scalar m, len {len}");
            assert_eq!(vs, ve, "scalar v, len {len}");
            assert_eq!(wl, we, "lane w, len {len}");
            assert_eq!(ml, me, "lane m, len {len}");
            assert_eq!(vl, ve, "lane v, len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn adam_step_length_mismatch_panics() {
        let p = AdamParams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            inv_bc1: 1.0,
            inv_bc2: 1.0,
        };
        adam_step(&mut [0.0; 3], &mut [0.0; 3], &mut [0.0; 4], &[0.0; 3], p);
    }

    #[test]
    fn distances_match_across_paths() {
        let pts = seq(64 * 3, 0.4);
        let q = &pts[9..12];
        let mut s = vec![0.0f32; 64];
        let mut l = vec![0.0f32; 64];
        with_path(LanePath::Scalar, || squared_distances_3d(q, &pts, &mut s));
        with_path(LanePath::Avx2, || squared_distances_3d(q, &pts, &mut l));
        assert_eq!(s, l);
        // Indexed variant, deliberately shuffled + duplicated indices.
        let idx: Vec<usize> = (0..64).map(|i| (i * 13 + 5) % 64).collect();
        let mut si = vec![0.0f32; idx.len()];
        let mut li = vec![0.0f32; idx.len()];
        with_path(LanePath::Scalar, || {
            squared_distances_3d_indexed(q, &pts, &idx, &mut si)
        });
        with_path(LanePath::Avx2, || {
            squared_distances_3d_indexed(q, &pts, &idx, &mut li)
        });
        assert_eq!(si, li);
        for (t, &j) in idx.iter().enumerate() {
            assert_eq!(si[t].to_bits(), s[j].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexed_distances_check_bounds() {
        let pts = [0.0f32; 9];
        let mut out = [0.0f32; 1];
        squared_distances_3d_indexed(&pts[0..3], &pts, &[3], &mut out);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        axpy(&mut [0.0; 3], 1.0, &[0.0; 4]);
    }
}
