//! Dense `f32` tensor kernels for the HGNAS reproduction.
//!
//! This crate is the numerical substrate underneath `hgnas-autograd` and the
//! rest of the stack: a row-major, heap-allocated tensor with the kernels the
//! GNN workloads actually need — blocked and multi-threaded matrix multiply,
//! axis reductions with arg tracking (so max/min pooling is differentiable
//! one level up), row gather/scatter for message passing, and broadcast
//! elementwise arithmetic.
//!
//! The design goal is *predictable* performance without external BLAS:
//! everything the paper's models require (EdgeConv-style message passing,
//! GCN propagation, MLP heads) reduces to the kernels here. The hot inner
//! loops run through the [`simd`] lane layer — AVX2 behind runtime feature
//! detection (cargo feature `simd`, on by default), with a scalar fallback
//! executing the same lane/remainder schedule so every path is
//! bit-identical. The only `unsafe` in the crate is the feature-gated
//! intrinsics leg of that module.
//!
//! # Example
//!
//! ```
//! use hgnas_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod kernels;
pub mod matmul;
pub mod reduce;
pub mod shape;
pub mod simd;
mod tensor;
pub mod threads;

pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by [`Tensor::allclose`] and the test-suites of the
/// crates layered on top.
pub const DEFAULT_ATOL: f32 = 1e-5;
