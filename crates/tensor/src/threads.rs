//! Kernel thread-budget handoff.
//!
//! Two levels of parallelism coexist in the search: the candidate evaluator
//! fans a generation out across worker threads (EA-level), and the matmul
//! kernels can split rows across threads (kernel-level). If both claim the
//! whole machine they oversubscribe, so the budget is a thread-local the
//! coordinator sets explicitly: EA workers run with a budget of
//! `total / workers`, while serial sections hand the full budget to the
//! kernels.
//!
//! The budget only selects *how many* threads [`crate::Tensor::matmul`]
//! may use; the threaded kernel is bit-identical to the single-threaded
//! one, so the budget never changes numeric results.

use std::cell::Cell;

thread_local! {
    static KERNEL_BUDGET: Cell<usize> = const { Cell::new(1) };
}

/// The current thread's kernel budget (threads `Tensor::matmul` may use).
/// Defaults to 1: kernel parallelism is opt-in via [`with_kernel_threads`].
pub fn kernel_threads() -> usize {
    KERNEL_BUDGET.with(|b| b.get())
}

/// Runs `f` with the kernel budget set to `max(n, 1)`, restoring the
/// previous budget afterwards (also on unwind).
pub fn with_kernel_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            KERNEL_BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = KERNEL_BUDGET.with(|b| b.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_one() {
        assert_eq!(kernel_threads(), 1);
    }

    #[test]
    fn budget_scopes_and_restores() {
        with_kernel_threads(4, || {
            assert_eq!(kernel_threads(), 4);
            with_kernel_threads(2, || assert_eq!(kernel_threads(), 2));
            assert_eq!(kernel_threads(), 4);
        });
        assert_eq!(kernel_threads(), 1);
    }

    #[test]
    fn zero_clamps_to_one() {
        with_kernel_threads(0, || assert_eq!(kernel_threads(), 1));
    }

    #[test]
    fn budget_is_per_thread() {
        with_kernel_threads(8, || {
            std::thread::scope(|s| {
                s.spawn(|| assert_eq!(kernel_threads(), 1));
            });
            assert_eq!(kernel_threads(), 8);
        });
    }

    #[test]
    fn restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_kernel_threads(6, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(kernel_threads(), 1);
    }
}
