//! Axis reductions with argument tracking.
//!
//! The GNN executor reduces neighbour messages laid out as `[n, k, c]` over
//! the middle axis, and pools per-cloud node features `[n, c]` over the rows.
//! Max/min reductions also return the winning indices so that the autograd
//! layer can route gradients.
//!
//! Sum/mean accumulate through the lane kernels in [`crate::simd`]
//! (elementwise over the feature axis, so per-element accumulation order —
//! and therefore every bit of the result — is independent of the lane
//! path). Max/min stay scalar: the winning-index tracking is inherently
//! branchy, and the comparison loop is cheap next to the matmuls feeding
//! it.

use crate::simd;
use crate::Tensor;

/// Result of an arg-tracked reduction: the reduced values plus, for max/min,
/// the flat index (into the reduced axis) of each winning element.
#[derive(Debug, Clone)]
pub struct ArgReduce {
    /// The reduced tensor.
    pub values: Tensor,
    /// For each output element, the index along the reduced axis that won.
    pub args: Vec<usize>,
}

/// Which reduction to apply over an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Maximum (arg-tracked).
    Max,
    /// Minimum (arg-tracked).
    Min,
}

impl Reduction {
    /// All supported reductions, in a stable order.
    pub const ALL: [Reduction; 4] = [
        Reduction::Sum,
        Reduction::Mean,
        Reduction::Max,
        Reduction::Min,
    ];
}

impl std::fmt::Display for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Reduction::Sum => "sum",
            Reduction::Mean => "mean",
            Reduction::Max => "max",
            Reduction::Min => "min",
        };
        f.write_str(s)
    }
}

/// Reduces a `[n, k, c]` tensor over its middle axis, producing `[n, c]`.
///
/// For `Max`/`Min` the returned [`ArgReduce::args`] holds, for every `(n, c)`
/// output element, the winning `k` index; for `Sum`/`Mean` it is empty.
///
/// # Panics
///
/// Panics if `t` is not 3-D.
pub fn reduce_mid_axis(t: &Tensor, how: Reduction) -> ArgReduce {
    assert_eq!(
        t.shape().rank(),
        3,
        "reduce_mid_axis requires [n,k,c], got {}",
        t.shape()
    );
    let (n, k, c) = (t.dims()[0], t.dims()[1], t.dims()[2]);
    let d = t.data();
    let mut values = vec![0.0f32; n * c];
    let mut args = Vec::new();
    match how {
        Reduction::Sum | Reduction::Mean => {
            for i in 0..n {
                for kk in 0..k {
                    let row = &d[(i * k + kk) * c..(i * k + kk + 1) * c];
                    simd::add_assign(&mut values[i * c..(i + 1) * c], row);
                }
            }
            if how == Reduction::Mean {
                simd::scale(&mut values, 1.0 / k as f32);
            }
        }
        Reduction::Max | Reduction::Min => {
            args = vec![0usize; n * c];
            let better = |a: f32, b: f32| match how {
                Reduction::Max => a > b,
                _ => a < b,
            };
            for i in 0..n {
                let out = &mut values[i * c..(i + 1) * c];
                let arg = &mut args[i * c..(i + 1) * c];
                out.copy_from_slice(&d[i * k * c..(i * k + 1) * c]);
                for kk in 1..k {
                    let row = &d[(i * k + kk) * c..(i * k + kk + 1) * c];
                    for j in 0..c {
                        if better(row[j], out[j]) {
                            out[j] = row[j];
                            arg[j] = kk;
                        }
                    }
                }
            }
        }
    }
    ArgReduce {
        values: Tensor::from_vec(values, &[n, c]),
        args,
    }
}

/// Reduces the rows of a `[n, c]` tensor, producing `[c]`. Used for global
/// pooling over the points of one cloud.
///
/// # Panics
///
/// Panics if `t` is not 2-D.
pub fn reduce_rows(t: &Tensor, how: Reduction) -> ArgReduce {
    assert_eq!(
        t.shape().rank(),
        2,
        "reduce_rows requires [n,c], got {}",
        t.shape()
    );
    let (n, c) = (t.dims()[0], t.dims()[1]);
    let view = t.reshape(&[1, n, c]);
    let r = reduce_mid_axis(&view, how);
    ArgReduce {
        values: r.values.reshape(&[c]),
        args: r.args,
    }
}

/// Segment-reduces the rows of a `[n, c]` tensor according to contiguous
/// segment lengths (e.g. pooling a batched cloud tensor per cloud),
/// producing `[segments.len(), c]`.
///
/// # Panics
///
/// Panics if `t` is not 2-D, any segment is empty, or the lengths do not sum
/// to `n`.
pub fn segment_reduce_rows(t: &Tensor, segments: &[usize], how: Reduction) -> ArgReduce {
    assert_eq!(t.shape().rank(), 2, "segment_reduce_rows requires [n,c]");
    let (n, c) = (t.dims()[0], t.dims()[1]);
    assert_eq!(
        segments.iter().sum::<usize>(),
        n,
        "segment lengths must sum to row count"
    );
    assert!(
        segments.iter().all(|&s| s > 0),
        "segments must be non-empty"
    );
    let d = t.data();
    let s = segments.len();
    let mut values = vec![0.0f32; s * c];
    let mut args = Vec::new();
    let track = matches!(how, Reduction::Max | Reduction::Min);
    if track {
        args = vec![0usize; s * c];
    }
    let mut row0 = 0usize;
    for (si, &len) in segments.iter().enumerate() {
        let out = &mut values[si * c..(si + 1) * c];
        match how {
            Reduction::Sum | Reduction::Mean => {
                for r in row0..row0 + len {
                    simd::add_assign(out, &d[r * c..(r + 1) * c]);
                }
                if how == Reduction::Mean {
                    simd::scale(out, 1.0 / len as f32);
                }
            }
            Reduction::Max | Reduction::Min => {
                let arg = &mut args[si * c..(si + 1) * c];
                out.copy_from_slice(&d[row0 * c..(row0 + 1) * c]);
                for (off, r) in (row0..row0 + len).enumerate().skip(1) {
                    let row = &d[r * c..(r + 1) * c];
                    for j in 0..c {
                        let win = match how {
                            Reduction::Max => row[j] > out[j],
                            _ => row[j] < out[j],
                        };
                        if win {
                            out[j] = row[j];
                            arg[j] = off;
                        }
                    }
                }
            }
        }
        row0 += len;
    }
    ArgReduce {
        values: Tensor::from_vec(values, &[s, c]),
        args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> Tensor {
        // n=2, k=3, c=2
        Tensor::from_vec(
            vec![
                1.0, 9.0, 2.0, 8.0, 3.0, 7.0, // node 0
                -1.0, 0.0, -2.0, 5.0, -3.0, 2.0, // node 1
            ],
            &[2, 3, 2],
        )
    }

    #[test]
    fn mid_axis_sum_mean() {
        let r = reduce_mid_axis(&t3(), Reduction::Sum);
        assert_eq!(r.values.data(), &[6.0, 24.0, -6.0, 7.0]);
        let r = reduce_mid_axis(&t3(), Reduction::Mean);
        assert!(r.values.allclose(
            &Tensor::from_vec(vec![2.0, 8.0, -2.0, 7.0 / 3.0], &[2, 2]),
            1e-6
        ));
        assert!(r.args.is_empty());
    }

    #[test]
    fn mid_axis_max_tracks_args() {
        let r = reduce_mid_axis(&t3(), Reduction::Max);
        assert_eq!(r.values.data(), &[3.0, 9.0, -1.0, 5.0]);
        assert_eq!(r.args, vec![2, 0, 0, 1]);
    }

    #[test]
    fn mid_axis_min_tracks_args() {
        let r = reduce_mid_axis(&t3(), Reduction::Min);
        assert_eq!(r.values.data(), &[1.0, 7.0, -3.0, 0.0]);
        assert_eq!(r.args, vec![0, 2, 2, 0]);
    }

    #[test]
    fn rows_pooling() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[2, 2]);
        let r = reduce_rows(&t, Reduction::Max);
        assert_eq!(r.values.data(), &[3.0, 5.0]);
        assert_eq!(r.args, vec![1, 0]);
    }

    #[test]
    fn segments_match_manual() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0], &[3, 2]);
        let r = segment_reduce_rows(&t, &[2, 1], Reduction::Mean);
        assert_eq!(r.values.data(), &[2.0, 3.0, 10.0, 20.0]);
        let r = segment_reduce_rows(&t, &[2, 1], Reduction::Max);
        assert_eq!(r.values.data(), &[3.0, 4.0, 10.0, 20.0]);
        assert_eq!(r.args, vec![1, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "sum to row count")]
    fn bad_segments_panic() {
        segment_reduce_rows(&Tensor::zeros(&[3, 2]), &[2, 2], Reduction::Sum);
    }
}
