//! Row gather/scatter and layout kernels used by graph message passing.
//!
//! The accumulating kernels ([`scatter_add_rows`], [`fold_rows`]) run their
//! per-row feature loop through [`crate::simd::add_assign`] — elementwise
//! over the feature axis, so the lane path never changes a bit.
//! [`row_norms`] contracts with [`crate::simd::dot`]'s fixed
//! multi-accumulator schedule (same on every path). The pure-copy kernels
//! ([`gather_rows`], [`repeat_rows`], [`concat_cols`], [`split_cols`])
//! append straight into uninitialised capacity (`extend_from_slice`) — a
//! single `memcpy` pass per row instead of a zero-fill followed by a copy;
//! copies move bits, so no lane/scalar distinction exists for them.

use crate::simd;
use crate::Tensor;

/// Gathers rows of a `[n, c]` tensor: `out[i] = t[idx[i]]`, producing
/// `[idx.len(), c]`.
///
/// This is the forward of neighbour-feature lookup; its adjoint is
/// [`scatter_add_rows`].
///
/// # Panics
///
/// Panics if `t` is not 2-D or any index is out of bounds.
pub fn gather_rows(t: &Tensor, idx: &[usize]) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "gather_rows requires [n,c]");
    let (n, c) = (t.dims()[0], t.dims()[1]);
    let d = t.data();
    let mut out = Vec::with_capacity(idx.len() * c);
    for &src in idx {
        assert!(src < n, "gather index {src} out of bounds for {n} rows");
        out.extend_from_slice(&d[src * c..(src + 1) * c]);
    }
    Tensor::from_vec(out, &[idx.len(), c])
}

/// Scatter-adds rows of `src` (`[idx.len(), c]`) into a fresh `[n, c]`
/// accumulator: `out[idx[i]] += src[i]`. Adjoint of [`gather_rows`].
///
/// # Panics
///
/// Panics if `src` is not 2-D, `src` row count differs from `idx.len()`, or
/// any index is out of bounds.
pub fn scatter_add_rows(src: &Tensor, idx: &[usize], n: usize) -> Tensor {
    assert_eq!(src.shape().rank(), 2, "scatter_add_rows requires [m,c]");
    assert_eq!(src.dims()[0], idx.len(), "row count must equal index count");
    let c = src.dims()[1];
    let d = src.data();
    let mut out = vec![0.0f32; n * c];
    for (i, &dst) in idx.iter().enumerate() {
        assert!(dst < n, "scatter index {dst} out of bounds for {n} rows");
        simd::add_assign(&mut out[dst * c..(dst + 1) * c], &d[i * c..(i + 1) * c]);
    }
    Tensor::from_vec(out, &[n, c])
}

/// Repeats each row of a `[n, c]` tensor `k` times consecutively, producing
/// `[n*k, c]`. This is the "target" side of an edge-feature expansion with a
/// fixed neighbourhood size `k`; its adjoint is [`fold_rows`].
///
/// # Panics
///
/// Panics if `t` is not 2-D or `k == 0`.
pub fn repeat_rows(t: &Tensor, k: usize) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "repeat_rows requires [n,c]");
    assert!(k > 0, "k must be positive");
    let (n, c) = (t.dims()[0], t.dims()[1]);
    let d = t.data();
    let mut out = Vec::with_capacity(n * k * c);
    for i in 0..n {
        let row = &d[i * c..(i + 1) * c];
        for _ in 0..k {
            out.extend_from_slice(row);
        }
    }
    Tensor::from_vec(out, &[n * k, c])
}

/// Sums every group of `k` consecutive rows of a `[n*k, c]` tensor, producing
/// `[n, c]`. Adjoint of [`repeat_rows`].
///
/// # Panics
///
/// Panics if `t` is not 2-D or its row count is not a multiple of `k`.
pub fn fold_rows(t: &Tensor, k: usize) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "fold_rows requires [m,c]");
    assert!(
        k > 0 && t.dims()[0].is_multiple_of(k),
        "row count must be a multiple of k"
    );
    let n = t.dims()[0] / k;
    let c = t.dims()[1];
    let d = t.data();
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let acc = &mut out[i * c..(i + 1) * c];
        for kk in 0..k {
            simd::add_assign(acc, &d[(i * k + kk) * c..(i * k + kk + 1) * c]);
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Concatenates 2-D tensors along the feature (column) axis.
///
/// # Panics
///
/// Panics if `parts` is empty, any part is not 2-D, or row counts differ.
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols needs at least one part");
    let n = parts[0].dims()[0];
    for p in parts {
        assert_eq!(p.shape().rank(), 2, "concat_cols requires 2-D parts");
        assert_eq!(p.dims()[0], n, "concat_cols row counts differ");
    }
    let total_c: usize = parts.iter().map(|p| p.dims()[1]).sum();
    let mut out = Vec::with_capacity(n * total_c);
    for i in 0..n {
        for p in parts {
            let c = p.dims()[1];
            out.extend_from_slice(&p.data()[i * c..(i + 1) * c]);
        }
    }
    Tensor::from_vec(out, &[n, total_c])
}

/// Splits a 2-D tensor column-wise into chunks of the given widths. Inverse
/// of [`concat_cols`].
///
/// # Panics
///
/// Panics if `t` is not 2-D or the widths do not sum to the column count.
pub fn split_cols(t: &Tensor, widths: &[usize]) -> Vec<Tensor> {
    assert_eq!(t.shape().rank(), 2, "split_cols requires [n,c]");
    let (n, c) = (t.dims()[0], t.dims()[1]);
    assert_eq!(
        widths.iter().sum::<usize>(),
        c,
        "widths must sum to column count"
    );
    let d = t.data();
    let mut outs = Vec::with_capacity(widths.len());
    let mut off = 0usize;
    for &w in widths {
        let mut data = Vec::with_capacity(n * w);
        for i in 0..n {
            data.extend_from_slice(&d[i * c + off..i * c + off + w]);
        }
        outs.push(Tensor::from_vec(data, &[n, w]));
        off += w;
    }
    outs
}

/// Per-row Euclidean norm of a `[n, c]` tensor, producing `[n, 1]`.
///
/// # Panics
///
/// Panics if `t` is not 2-D.
pub fn row_norms(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 2, "row_norms requires [n,c]");
    let (n, c) = (t.dims()[0], t.dims()[1]);
    let d = t.data();
    let mut out = vec![0.0f32; n];
    for i in 0..n {
        let row = &d[i * c..(i + 1) * c];
        out[i] = simd::dot(row, row).sqrt();
    }
    Tensor::from_vec(out, &[n, 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])
    }

    #[test]
    fn gather_then_scatter_is_count_weighted_identity() {
        let t = m23();
        let idx = [1, 0, 1];
        let g = gather_rows(&t, &idx);
        assert_eq!(g.dims(), &[3, 3]);
        assert_eq!(&g.data()[0..3], &[4.0, 5.0, 6.0]);
        let s = scatter_add_rows(&g, &idx, 2);
        // Row 0 appears once, row 1 twice.
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn repeat_fold_adjoint_pair() {
        let t = m23();
        let r = repeat_rows(&t, 4);
        assert_eq!(r.dims(), &[8, 3]);
        let f = fold_rows(&r, 4);
        assert!(f.allclose(&t.scale(4.0), 1e-6));
    }

    #[test]
    fn concat_split_round_trip() {
        let a = m23();
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let cat = concat_cols(&[&a, &b]);
        assert_eq!(cat.dims(), &[2, 4]);
        assert_eq!(cat.at2(0, 3), 9.0);
        let parts = split_cols(&cat, &[3, 1]);
        assert!(parts[0].allclose(&a, 0.0));
        assert!(parts[1].allclose(&b, 0.0));
    }

    #[test]
    fn norms_match_hand_math() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let n = row_norms(&t);
        assert_eq!(n.data(), &[5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_oob_panics() {
        gather_rows(&m23(), &[5]);
    }
}
