//! Shape bookkeeping for row-major tensors.

use std::fmt;

/// The dimensions of a tensor, stored outermost-first (row-major).
///
/// `Shape` is a thin, validated wrapper around a `Vec<usize>`; it exists so
/// that shape errors are caught at construction time rather than deep inside
/// a kernel.
///
/// # Example
///
/// ```
/// use hgnas_tensor::Shape;
///
/// let s = Shape::new(&[4, 3]);
/// assert_eq!(s.numel(), 12);
/// assert_eq!(s.strides(), vec![3, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; empty (scalar) shapes are allowed.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims.to_vec())
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the total element count. Scalars have one element.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the row-major strides, one per dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Returns dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Returns `true` if the two shapes are elementwise-broadcast compatible
    /// under the limited broadcasting this crate supports: identical shapes,
    /// or `other` being a 1-D row of length `self.dims().last()` (a per-column
    /// bias over a 2-D matrix).
    pub fn broadcastable_from(&self, other: &Shape) -> bool {
        if self == other {
            return true;
        }
        other.rank() == 1 && self.rank() >= 1 && other.dim(0) == *self.0.last().unwrap()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn broadcast_bias_row() {
        let m = Shape::new(&[4, 8]);
        assert!(m.broadcastable_from(&Shape::new(&[8])));
        assert!(!m.broadcastable_from(&Shape::new(&[4])));
        assert!(m.broadcastable_from(&m.clone()));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
